//! Building evaluation pools from dataset profiles.
//!
//! Two construction routes mirror how the paper's pools arise:
//!
//! * [`direct_pool`] — the fast route: draw (score, prediction, truth)
//!   triples from the profile's calibrated score model.  Used for the error
//!   curves of Figure 2/3/4 and the timing study of Table 3, where pools are
//!   large and many repeats are needed.
//! * [`pipeline_pool`] — the full route: generate records, extract similarity
//!   features, train a classifier on a labelled subsample and score every
//!   candidate pair.  Used for Table 2, Figure 1 and the classifier comparison
//!   of Figure 5.

use classifiers::{
    AdaBoostClassifier, Classifier, LinearSvm, LogisticRegression, MlpClassifier, PlattScaler,
    RbfSvm, TrainingSet,
};
use er_core::datasets::{DatasetProfile, DirectPoolModel, SyntheticDataset};
use er_core::pool_builder::{LabelledPool, PoolBuilder};
use oasis::pool::ScoredPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which classifier family scores the pipeline pool (paper Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifierKind {
    /// Linear SVM (the paper's default, "L-SVM").
    LinearSvm,
    /// Logistic regression ("LR").
    LogisticRegression,
    /// One-hidden-layer neural network ("NN").
    Mlp,
    /// AdaBoost over decision stumps ("AB").
    AdaBoost,
    /// RBF-kernel SVM via random Fourier features ("R-SVM").
    RbfSvm,
}

impl ClassifierKind {
    /// All five classifier families of Figure 5.
    pub fn all() -> Vec<ClassifierKind> {
        vec![
            ClassifierKind::Mlp,
            ClassifierKind::AdaBoost,
            ClassifierKind::LogisticRegression,
            ClassifierKind::RbfSvm,
            ClassifierKind::LinearSvm,
        ]
    }

    /// The display label used in the paper.
    pub fn label(&self) -> &'static str {
        match self {
            ClassifierKind::LinearSvm => "L-SVM",
            ClassifierKind::LogisticRegression => "LR",
            ClassifierKind::Mlp => "NN",
            ClassifierKind::AdaBoost => "AB",
            ClassifierKind::RbfSvm => "R-SVM",
        }
    }
}

/// A pool plus the metadata the experiments need to interpret it.
#[derive(Debug, Clone)]
pub struct ExperimentPool {
    /// The scored pool the samplers consume.
    pub pool: ScoredPool,
    /// The hidden ground truth (for the oracle and the target measure).
    pub truth: Vec<bool>,
    /// The true F-measure (α = ½) of the pool — the quantity being estimated.
    pub true_f_measure: f64,
    /// The true precision of the pool.
    pub true_precision: f64,
    /// The true recall of the pool.
    pub true_recall: f64,
    /// The decision threshold to pass to score-squashing samplers.
    pub score_threshold: f64,
    /// The profile name the pool was built from.
    pub profile_name: String,
}

impl ExperimentPool {
    fn from_parts(
        pool: ScoredPool,
        truth: Vec<bool>,
        score_threshold: f64,
        profile_name: &str,
    ) -> Self {
        let measures = oasis::measures::exhaustive_measures(pool.predictions(), &truth, 0.5);
        ExperimentPool {
            pool,
            truth,
            true_f_measure: measures.f_measure,
            true_precision: measures.precision,
            true_recall: measures.recall,
            score_threshold,
            profile_name: profile_name.to_string(),
        }
    }

    /// Number of items in the pool.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the pool is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

/// Build a pool directly from the profile's score model.
///
/// * `scale` scales the pool size (1.0 = the paper's pool).
/// * `calibrated` selects calibrated (posterior probability) vs uncalibrated
///   (raw logit) scores — the two regimes of Figure 3.
pub fn direct_pool(
    profile: &DatasetProfile,
    scale: f64,
    calibrated: bool,
    seed: u64,
) -> ExperimentPool {
    let config = profile
        .direct_pool_config(scale)
        .with_uncalibrated_scores(!calibrated);
    let mut rng = StdRng::seed_from_u64(seed);
    let (pool, truth) = DirectPoolModel::new(config).generate(&mut rng);
    // Uncalibrated scores are logits with decision threshold at 0.
    let threshold = if calibrated { 0.5 } else { 0.0 };
    ExperimentPool::from_parts(pool, truth, threshold, profile.name)
}

/// Pick the decision threshold that maximises the α-weighted F-measure
/// *projected onto the full pool's class balance*.
///
/// Classifiers are trained on a class-balanced subsample (training data need
/// not be representative — paper Section 2.1.1), so their natural decision
/// boundary over-predicts matches by orders of magnitude once applied to the
/// imbalanced pool.  This helper re-weights the training examples by the ratio
/// of pool to subsample class counts and sweeps candidate thresholds, which is
/// how a practitioner would tune the operating point before deployment.
pub fn tune_threshold(
    positive_scores: &[f64],
    negative_scores: &[f64],
    pool_positives: f64,
    pool_negatives: f64,
    alpha: f64,
) -> f64 {
    assert!(
        !positive_scores.is_empty() && !negative_scores.is_empty(),
        "need scores from both classes to tune a threshold"
    );
    let weight_positive = pool_positives / positive_scores.len() as f64;
    let weight_negative = pool_negatives / negative_scores.len() as f64;
    // Candidate thresholds: midpoints between consecutive distinct scores.
    let mut all: Vec<f64> = positive_scores
        .iter()
        .chain(negative_scores.iter())
        .copied()
        .collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let mut best_threshold = all[0] - 1.0;
    let mut best_f = f64::NEG_INFINITY;
    let mut candidates = vec![all[0] - 1.0];
    candidates.extend(all.windows(2).map(|w| (w[0] + w[1]) / 2.0));
    candidates.push(all[all.len() - 1] + 1.0);
    for &threshold in &candidates {
        let tp =
            positive_scores.iter().filter(|&&s| s > threshold).count() as f64 * weight_positive;
        let fp =
            negative_scores.iter().filter(|&&s| s > threshold).count() as f64 * weight_negative;
        let actual_positives = pool_positives;
        let denom = alpha * (tp + fp) + (1.0 - alpha) * actual_positives;
        let f = if denom > 0.0 { tp / denom } else { 0.0 };
        if f > best_f {
            best_f = f;
            best_threshold = threshold;
        }
    }
    best_threshold
}

/// Train the requested classifier on a class-balanced subsample of the
/// dataset's labelled pairs and return it as a boxed scorer.
fn train_classifier(
    kind: ClassifierKind,
    training: &TrainingSet,
    rng: &mut StdRng,
) -> Box<dyn Classifier> {
    match kind {
        ClassifierKind::LinearSvm => Box::new(LinearSvm::train(training, rng)),
        ClassifierKind::LogisticRegression => Box::new(LogisticRegression::train(training, rng)),
        ClassifierKind::Mlp => Box::new(MlpClassifier::train(training, rng)),
        ClassifierKind::AdaBoost => Box::new(AdaBoostClassifier::train(training)),
        ClassifierKind::RbfSvm => Box::new(RbfSvm::train(training, rng)),
    }
}

/// The result of running the full ER pipeline on a profile.
#[derive(Debug, Clone)]
pub struct PipelinePoolResult {
    /// The evaluation pool and its metadata.
    pub experiment_pool: ExperimentPool,
    /// The labelled pool with feature vectors (for further analysis).
    pub labelled: LabelledPool,
}

/// Build a pool through the full ER pipeline: synthetic records → similarity
/// features → classifier → scores.
///
/// * `scale` scales the pool size (1.0 = the paper's pool).
/// * `kind` selects the classifier family.
/// * `calibrated` applies Platt scaling (fit on the training subsample) to the
///   classifier's raw scores.
/// * Returns `None` for profiles without a record-level generator
///   (tweets100k).
pub fn pipeline_pool(
    profile: &DatasetProfile,
    scale: f64,
    kind: ClassifierKind,
    calibrated: bool,
    seed: u64,
) -> Option<PipelinePoolResult> {
    let generator_config = profile.generator_config(scale)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = SyntheticDataset::generate(generator_config, &mut rng);
    let builder = PoolBuilder::fit(&dataset);
    let (features, labels) = builder.feature_matrix(&dataset);

    // Training subsample: the paper trains on a random labelled subset of the
    // dataset.  A class-balanced subsample keeps training fast and stable
    // under extreme imbalance.
    let full_set = TrainingSet::new(features.clone(), labels.clone());
    let per_class = dataset.match_count().clamp(10, 2000);
    let training = full_set.balanced_subsample(per_class, &mut rng);
    let classifier = train_classifier(kind, &training, &mut rng);

    // Optional Platt calibration fit on the training subsample's raw scores.
    let raw_training_scores: Vec<f64> = training
        .features
        .iter()
        .map(|f| classifier.score(f))
        .collect();
    let scaler = if calibrated {
        Some(PlattScaler::fit(&raw_training_scores, &training.labels))
    } else {
        None
    };

    // Tune the decision threshold for the pool's class balance (see
    // `tune_threshold`): the balanced training subsample would otherwise leave
    // the classifier wildly over-predicting matches on the imbalanced pool.
    let positive_scores: Vec<f64> = raw_training_scores
        .iter()
        .zip(training.labels.iter())
        .filter_map(|(&s, &l)| l.then_some(s))
        .collect();
    let negative_scores: Vec<f64> = raw_training_scores
        .iter()
        .zip(training.labels.iter())
        .filter_map(|(&s, &l)| (!l).then_some(s))
        .collect();
    let pool_positives = dataset.match_count().max(1) as f64;
    let pool_negatives = (dataset.pair_count() - dataset.match_count()).max(1) as f64;
    let raw_threshold = tune_threshold(
        &positive_scores,
        &negative_scores,
        pool_positives,
        pool_negatives,
        0.5,
    );
    let threshold = match &scaler {
        Some(s) => s.calibrate(raw_threshold),
        None => raw_threshold,
    };
    let labelled = builder.build_pool(
        &dataset,
        |f| {
            let raw = classifier.score(f);
            match &scaler {
                Some(s) => s.calibrate(raw),
                None => raw,
            }
        },
        threshold,
    );
    let experiment_pool = ExperimentPool::from_parts(
        labelled.pool.clone(),
        labelled.truth.clone(),
        threshold,
        profile.name,
    );
    Some(PipelinePoolResult {
        experiment_pool,
        labelled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_pool_has_metadata_consistent_with_truth() {
        let profile = DatasetProfile::abt_buy();
        let ep = direct_pool(&profile, 0.05, true, 1);
        assert!(!ep.is_empty());
        assert!(ep.len() > 1000);
        assert!((0.0..=1.0).contains(&ep.true_f_measure));
        assert_eq!(ep.truth.len(), ep.len());
        assert_eq!(ep.profile_name, "Abt-Buy");
        assert_eq!(ep.score_threshold, 0.5);
    }

    #[test]
    fn uncalibrated_direct_pool_uses_logit_scores() {
        let profile = DatasetProfile::dblp_acm();
        let calibrated = direct_pool(&profile, 0.05, true, 2);
        let uncalibrated = direct_pool(&profile, 0.05, false, 2);
        assert!(calibrated.pool.scores_are_probabilities());
        assert!(!uncalibrated.pool.scores_are_probabilities());
        assert_eq!(uncalibrated.score_threshold, 0.0);
        // Same seed → same ground truth either way.
        assert_eq!(calibrated.truth, uncalibrated.truth);
    }

    #[test]
    fn classifier_kinds_enumerate_the_figure5_lineup() {
        let all = ClassifierKind::all();
        assert_eq!(all.len(), 5);
        let labels: Vec<&str> = all.iter().map(|k| k.label()).collect();
        assert!(labels.contains(&"L-SVM"));
        assert!(labels.contains(&"NN"));
        assert!(labels.contains(&"AB"));
        assert!(labels.contains(&"LR"));
        assert!(labels.contains(&"R-SVM"));
    }

    #[test]
    fn tuned_threshold_restores_precision_under_imbalance() {
        // Positives score high, negatives low, but the pool has 1000x more
        // negatives: the tuned threshold must sit above most negatives.
        let positive: Vec<f64> = (0..50).map(|i| 1.0 + i as f64 * 0.02).collect();
        let negative: Vec<f64> = (0..50).map(|i| -1.0 + i as f64 * 0.03).collect();
        let threshold = tune_threshold(&positive, &negative, 50.0, 50_000.0, 0.5);
        let fp = negative.iter().filter(|&&s| s > threshold).count();
        let tp = positive.iter().filter(|&&s| s > threshold).count();
        assert!(
            tp > 30,
            "threshold {threshold} keeps most true positives ({tp})"
        );
        assert!(
            fp <= 1,
            "threshold {threshold} must exclude almost every negative (kept {fp})"
        );
        // With balanced pool weights the threshold can be far more permissive.
        let balanced = tune_threshold(&positive, &negative, 50.0, 50.0, 0.5);
        assert!(balanced <= threshold);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn tune_threshold_requires_both_classes() {
        tune_threshold(&[1.0], &[], 1.0, 1.0, 0.5);
    }

    #[test]
    fn pipeline_pool_produces_a_working_classifier() {
        let profile = DatasetProfile::abt_buy();
        // Tiny scale keeps the test fast: ~500 pairs.
        let result = pipeline_pool(&profile, 0.01, ClassifierKind::LinearSvm, false, 3).unwrap();
        let ep = &result.experiment_pool;
        assert!(ep.len() > 100);
        assert!(ep.true_recall >= 0.0);
        // The pool's features are exposed for further analysis.
        assert_eq!(result.labelled.features.len(), ep.len());
        // With uncalibrated margins the scores leave [0, 1].
        assert!(!ep.pool.scores_are_probabilities());
    }

    #[test]
    fn pipeline_pool_calibration_yields_probability_scores() {
        let profile = DatasetProfile::dblp_acm();
        let result =
            pipeline_pool(&profile, 0.01, ClassifierKind::LogisticRegression, true, 4).unwrap();
        assert!(result.experiment_pool.pool.scores_are_probabilities());
    }

    #[test]
    fn tweets_profile_has_no_pipeline_pool() {
        let profile = DatasetProfile::tweets100k();
        assert!(pipeline_pool(&profile, 0.1, ClassifierKind::LinearSvm, false, 5).is_none());
        // But its direct pool works.
        let ep = direct_pool(&profile, 0.05, true, 5);
        assert!(ep.len() > 500);
    }
}
