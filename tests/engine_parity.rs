//! Workspace-level acceptance tests for `oasis-engine`: N concurrent engine
//! sessions with fixed seeds must be bit-identical to N sequential library
//! runs with the same seeds, through both the Rust API and the line
//! protocol.

use er_core::datasets::score_model::{DirectPoolConfig, DirectPoolModel};
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::{OasisConfig, OasisSampler, Sampler};
use oasis::Estimate;
use oasis_engine::server::serve_lines;
use oasis_engine::{Engine, LabelSource, SessionJob};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Cursor;

fn fixed_pool() -> (oasis::ScoredPool, Vec<bool>) {
    let config = DirectPoolConfig {
        pool_size: 3000,
        match_count: 80,
        match_logit_mean: 1.1,
        non_match_logit_mean: -2.8,
        logit_noise: 1.3,
        decision_threshold: 0.5,
        uncalibrated_scores: false,
    };
    let mut rng = StdRng::seed_from_u64(555);
    DirectPoolModel::new(config).generate(&mut rng)
}

fn library_run(pool: &oasis::ScoredPool, truth: &[bool], seed: u64, steps: usize) -> Estimate {
    let mut oracle = GroundTruthOracle::new(truth.to_vec());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler =
        OasisSampler::new(pool, OasisConfig::default().with_strata_count(20)).unwrap();
    sampler.run(pool, &mut oracle, &mut rng, steps).unwrap()
}

#[test]
fn eight_concurrent_sessions_match_eight_sequential_library_runs() {
    let (pool, truth) = fixed_pool();
    let seeds: Vec<u64> = (300..308).collect();
    let steps = 250;

    let references: Vec<Estimate> = seeds
        .iter()
        .map(|&seed| library_run(&pool, &truth, seed, steps))
        .collect();

    let engine = Engine::new();
    engine.load_pool("pool", pool).unwrap();
    for &seed in &seeds {
        engine
            .create_session(
                format!("s{seed}"),
                "pool",
                OasisConfig::default().with_strata_count(20),
                seed,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone())),
            )
            .unwrap();
    }
    let jobs: Vec<SessionJob> = seeds
        .iter()
        .map(|&seed| SessionJob::Steps {
            session: format!("s{seed}"),
            steps,
        })
        .collect();
    // 8 workers: every session gets its own thread; interleaving must not
    // matter because sessions share nothing mutable.
    let estimates = engine.run_parallel(&jobs, 8).unwrap();

    for ((reference, estimate), seed) in references.iter().zip(&estimates).zip(&seeds) {
        assert_eq!(
            reference.f_measure.to_bits(),
            estimate.f_measure.to_bits(),
            "seed {seed}: engine F {} != library F {}",
            estimate.f_measure,
            reference.f_measure
        );
        assert_eq!(reference.precision.to_bits(), estimate.precision.to_bits());
        assert_eq!(reference.recall.to_bits(), estimate.recall.to_bits());
    }
}

#[test]
fn the_line_protocol_reproduces_a_library_run() {
    // Drive a full session through the wire protocol (the same path the
    // `oasis-serve` binary and the CI smoke test use) and compare the final
    // estimate line to the in-process library run, digit for digit.
    let (pool, truth) = fixed_pool();
    let expected = library_run(&pool, &truth, 777, 200);

    let render_bools = |bits: &[bool]| -> String {
        let items: Vec<&str> = bits
            .iter()
            .map(|&b| if b { "true" } else { "false" })
            .collect();
        format!("[{}]", items.join(","))
    };
    let scores: Vec<String> = pool.scores().iter().map(|s| format!("{s:?}")).collect();
    let script = format!(
        concat!(
            r#"{{"cmd":"load_pool","pool":"p","scores":[{scores}],"predictions":{predictions}}}"#,
            "\n",
            r#"{{"cmd":"create_session","session":"s","pool":"p","seed":777,"config":{{"strata_count":20}},"truth":{truth}}}"#,
            "\n",
            r#"{{"cmd":"step","session":"s","steps":200}}"#,
            "\n",
        ),
        scores = scores.join(","),
        predictions = render_bools(pool.predictions()),
        truth = render_bools(&truth),
    );

    let engine = Engine::new();
    let mut output = Vec::new();
    serve_lines(&engine, Cursor::new(script), &mut output).unwrap();
    let text = String::from_utf8(output).unwrap();
    let last_line = text.lines().last().unwrap();
    assert!(last_line.contains(r#""ok":true"#), "line: {last_line}");

    let response = serde::json::Json::parse(last_line).unwrap();
    let estimate = response.require("estimate").unwrap();
    let f = estimate.require("f_measure").unwrap().as_f64().unwrap();
    let p = estimate.require("precision").unwrap().as_f64().unwrap();
    let r = estimate.require("recall").unwrap().as_f64().unwrap();
    assert_eq!(f.to_bits(), expected.f_measure.to_bits());
    assert_eq!(p.to_bits(), expected.precision.to_bits());
    assert_eq!(r.to_bits(), expected.recall.to_bits());
}
