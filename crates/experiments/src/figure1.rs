//! Figure 1: size and mean score of the CSF strata for the Abt-Buy pool.
//!
//! The figure illustrates why a "natural" range of K exists for CSF
//! stratification under extreme class imbalance: strata covering low
//! similarity scores are enormous while strata covering high scores contain
//! only a handful of pairs.

use crate::pools::{direct_pool, ExperimentPool};
use crate::report::{fmt_count, fmt_float, TextTable};
use er_core::datasets::DatasetProfile;
use oasis::strata::{CsfStratifier, Stratifier};

/// One stratum's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumSummary {
    /// Stratum index (ordered by increasing score).
    pub index: usize,
    /// Number of record pairs in the stratum.
    pub size: usize,
    /// Mean (calibrated) similarity score of the stratum.
    pub mean_score: f64,
}

/// The reproduced Figure 1 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure1 {
    /// Per-stratum summaries.
    pub strata: Vec<StratumSummary>,
    /// The requested number of strata.
    pub requested_strata: usize,
    /// Pool size used.
    pub pool_size: usize,
    /// Pool scale used.
    pub scale: f64,
}

/// Stratify the Abt-Buy pool (calibrated scores) with the CSF rule and record
/// each stratum's size and mean score.
pub fn run(scale: f64, strata_count: usize, seed: u64) -> Figure1 {
    let pool = direct_pool(&DatasetProfile::abt_buy(), scale, true, seed);
    run_on_pool(&pool, strata_count, scale)
}

/// Same as [`run`] but on a caller-supplied pool (used by the benches).
pub fn run_on_pool(pool: &ExperimentPool, strata_count: usize, scale: f64) -> Figure1 {
    let strata = CsfStratifier::new(strata_count)
        .stratify(&pool.pool)
        .expect("pool is non-empty");
    let summaries = (0..strata.len())
        .map(|k| StratumSummary {
            index: k,
            size: strata.size(k),
            mean_score: strata.mean_scores()[k],
        })
        .collect();
    Figure1 {
        strata: summaries,
        requested_strata: strata_count,
        pool_size: pool.len(),
        scale,
    }
}

impl Figure1 {
    /// Render as a plain-text table (one row per stratum).
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["Stratum", "Size", "Mean score"]);
        for stratum in &self.strata {
            table.add_row(vec![
                stratum.index.to_string(),
                fmt_count(stratum.size as u64),
                fmt_float(stratum.mean_score, 4),
            ]);
        }
        format!(
            "Figure 1: CSF strata of the Abt-Buy pool (calibrated scores, K̃ = {}, pool = {} pairs at scale {:.3})\n{}",
            self.requested_strata,
            fmt_count(self.pool_size as u64),
            self.scale,
            table.render()
        )
    }

    /// The ratio of the largest to the smallest stratum — the "heavy tail"
    /// headline of the figure.
    pub fn size_ratio(&self) -> f64 {
        let max = self.strata.iter().map(|s| s.size).max().unwrap_or(1);
        let min = self.strata.iter().map(|s| s.size).min().unwrap_or(1);
        max as f64 / min.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strata_are_ordered_by_score_with_heavy_low_tail() {
        let figure = run(0.2, 30, 11);
        assert!(figure.strata.len() > 5);
        assert!(figure.strata.len() <= 30);
        for window in figure.strata.windows(2) {
            assert!(window[0].mean_score <= window[1].mean_score + 1e-9);
        }
        // The low-score strata dwarf the high-score ones (paper Figure 1).
        let first = figure.strata.first().unwrap().size;
        let last = figure.strata.last().unwrap().size;
        assert!(
            first > last,
            "lowest-score stratum ({first}) should exceed highest-score stratum ({last})"
        );
        assert!(
            figure.size_ratio() > 10.0,
            "size ratio {}",
            figure.size_ratio()
        );
    }

    #[test]
    fn total_stratum_size_equals_pool_size() {
        let figure = run(0.1, 30, 12);
        let total: usize = figure.strata.iter().map(|s| s.size).sum();
        assert_eq!(total, figure.pool_size);
    }

    #[test]
    fn render_includes_every_stratum() {
        let figure = run(0.05, 10, 13);
        let text = figure.render();
        assert!(text.contains("Figure 1"));
        assert!(text.lines().count() >= figure.strata.len() + 3);
    }
}
