//! Regenerate Figure 4 (convergence of OASIS internals on Abt-Buy).
//!
//! Usage: `cargo run --release -p experiments --bin figure4 -- --scale=0.2 --strata=30`

use experiments::figure4::{run, Figure4Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = Figure4Config {
        scale: experiments::parse_arg(&args, "scale", 0.2f64),
        strata: experiments::parse_arg(&args, "strata", 30usize),
        budget_fraction: experiments::parse_arg(&args, "budget-fraction", 0.2f64),
        checkpoints: experiments::parse_arg(&args, "checkpoints", 20usize),
        seed: experiments::parse_arg(&args, "seed", 2017u64),
    };
    println!("{}", run(&config).render());
}
