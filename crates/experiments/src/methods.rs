//! The sampling methods under comparison (paper Section 6.2).
//!
//! [`Method`] names a method + its hyperparameters and maps both onto the
//! core crate's method-agnostic surface: a [`SamplerMethod`] tag plus one
//! [`OasisConfig`] carrying every hyperparameter.  Building goes through
//! [`AnySampler::build`] — the same constructor the `oasis-engine` session
//! layer uses — so an experiment run and an engine session with the same
//! method, config and seed are the *same* sampler, which is what the
//! engine-parity drivers pin bit-for-bit.

use oasis::pool::ScoredPool;
use oasis::samplers::OasisConfig;
use oasis::Result;

pub use oasis::samplers::{AnySampler, SamplerMethod};

/// A named sampling method with its hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Uniform sampling with the plain estimator.
    Passive,
    /// Proportional stratified sampling with `strata` CSF strata.
    Stratified {
        /// Number of strata (the paper uses 30).
        strata: usize,
    },
    /// Static importance sampling (Sawade et al.).
    ImportanceSampling,
    /// OASIS with `strata` CSF strata.
    Oasis {
        /// Number of strata.
        strata: usize,
        /// Greediness parameter ε.
        epsilon: f64,
    },
}

impl Method {
    /// The default method line-up of the paper's Figure 2 for an ER pool:
    /// Passive, IS, Stratified (K=30) and OASIS with K = 30, 60, 120.
    pub fn figure2_lineup() -> Vec<Method> {
        vec![
            Method::Passive,
            Method::ImportanceSampling,
            Method::Stratified { strata: 30 },
            Method::oasis(30),
            Method::oasis(60),
            Method::oasis(120),
        ]
    }

    /// The reduced line-up used for the balanced tweets100k pool
    /// (K = 10, 20, 40 in the paper).
    pub fn figure2_lineup_balanced() -> Vec<Method> {
        vec![
            Method::Passive,
            Method::ImportanceSampling,
            Method::Stratified { strata: 30 },
            Method::oasis(10),
            Method::oasis(20),
            Method::oasis(40),
        ]
    }

    /// One method per [`SamplerMethod`] tag at the paper's defaults — the
    /// line-up the engine-parity driver pins.
    pub fn parity_lineup() -> Vec<Method> {
        vec![
            Method::Passive,
            Method::ImportanceSampling,
            Method::Stratified { strata: 30 },
            Method::oasis(30),
        ]
    }

    /// OASIS with the paper's default ε = 10⁻³.
    pub fn oasis(strata: usize) -> Method {
        Method::Oasis {
            strata,
            epsilon: 1e-3,
        }
    }

    /// A short display label, matching the paper's legends
    /// (e.g. `"OASIS 30"`).
    pub fn label(&self) -> String {
        match self {
            Method::Passive => "Passive".to_string(),
            Method::Stratified { .. } => "Stratified".to_string(),
            Method::ImportanceSampling => "IS".to_string(),
            Method::Oasis { strata, .. } => format!("OASIS {strata}"),
        }
    }

    /// The wire/engine tag of this method.
    pub fn sampler_method(&self) -> SamplerMethod {
        match self {
            Method::Passive => SamplerMethod::Passive,
            Method::Stratified { .. } => SamplerMethod::Stratified,
            Method::ImportanceSampling => SamplerMethod::Importance,
            Method::Oasis { .. } => SamplerMethod::Oasis,
        }
    }

    /// The method-agnostic config carrying this method's hyperparameters —
    /// exactly what an engine `create_session` for this method would send.
    pub fn engine_config(&self, alpha: f64, score_threshold: f64) -> OasisConfig {
        let base = OasisConfig::default()
            .with_alpha(alpha)
            .with_score_threshold(score_threshold);
        match *self {
            Method::Passive | Method::ImportanceSampling => base,
            Method::Stratified { strata } => base.with_strata_count(strata),
            Method::Oasis { strata, epsilon } => {
                base.with_strata_count(strata).with_epsilon(epsilon)
            }
        }
    }

    /// Build a fresh sampler of this method for the given pool.
    ///
    /// `alpha` is the F-measure weight and `score_threshold` the decision
    /// threshold used when squashing non-probability scores.
    pub fn build(&self, pool: &ScoredPool, alpha: f64, score_threshold: f64) -> Result<AnySampler> {
        AnySampler::build(
            self.sampler_method(),
            pool,
            &self.engine_config(alpha, score_threshold),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis::oracle::GroundTruthOracle;
    use oasis::samplers::{InteractiveSampler, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_pool() -> (ScoredPool, Vec<bool>) {
        let scores = vec![0.9, 0.85, 0.7, 0.3, 0.2, 0.1, 0.05, 0.02];
        let predictions = vec![true, true, true, false, false, false, false, false];
        let truth = vec![true, true, false, false, false, false, false, false];
        (ScoredPool::new(scores, predictions).unwrap(), truth)
    }

    #[test]
    fn labels_are_human_readable() {
        assert_eq!(Method::Passive.label(), "Passive");
        assert_eq!(Method::Stratified { strata: 30 }.label(), "Stratified");
        assert_eq!(Method::ImportanceSampling.label(), "IS");
        assert_eq!(Method::oasis(60).label(), "OASIS 60");
    }

    #[test]
    fn lineups_have_expected_composition() {
        let lineup = Method::figure2_lineup();
        assert_eq!(lineup.len(), 6);
        assert!(matches!(lineup[0], Method::Passive));
        assert!(matches!(lineup[5], Method::Oasis { strata: 120, .. }));
        let balanced = Method::figure2_lineup_balanced();
        assert!(matches!(balanced[3], Method::Oasis { strata: 10, .. }));
        // The parity line-up covers every wire tag exactly once.
        let tags: Vec<SamplerMethod> = Method::parity_lineup()
            .iter()
            .map(Method::sampler_method)
            .collect();
        for tag in SamplerMethod::ALL {
            assert_eq!(tags.iter().filter(|&&t| t == tag).count(), 1, "{tag}");
        }
    }

    #[test]
    fn every_method_builds_and_steps() {
        let (pool, truth) = tiny_pool();
        let mut rng = StdRng::seed_from_u64(1);
        for method in Method::figure2_lineup() {
            // Cap strata at the pool size implicitly via the stratifiers.
            let mut sampler = method.build(&pool, 0.5, 0.5).unwrap();
            let mut oracle = GroundTruthOracle::new(truth.clone());
            for _ in 0..20 {
                let outcome = sampler.step(&pool, &mut oracle, &mut rng).unwrap();
                assert!(outcome.item < pool.len());
            }
            let estimate = sampler.estimate();
            assert_eq!(estimate.alpha, 0.5);
        }
    }

    #[test]
    fn build_matches_engine_style_construction_bitwise() {
        // Method::build and AnySampler::build(tag, config) must be the same
        // sampler: identical draws on identical streams.
        let (pool, truth) = tiny_pool();
        for method in Method::parity_lineup() {
            let mut a = method.build(&pool, 0.5, 0.5).unwrap();
            let mut b = AnySampler::build(
                method.sampler_method(),
                &pool,
                &method.engine_config(0.5, 0.5),
            )
            .unwrap();
            let mut rng_a = StdRng::seed_from_u64(9);
            let mut rng_b = StdRng::seed_from_u64(9);
            let mut oracle_a = GroundTruthOracle::new(truth.clone());
            let mut oracle_b = GroundTruthOracle::new(truth.clone());
            for _ in 0..30 {
                let x = a.step(&pool, &mut oracle_a, &mut rng_a).unwrap();
                let y = b.step(&pool, &mut oracle_b, &mut rng_b).unwrap();
                assert_eq!(x.item, y.item);
                assert_eq!(x.weight.to_bits(), y.weight.to_bits());
            }
        }
    }

    #[test]
    fn instrumental_snapshot_is_method_agnostic() {
        // Every method in the lineup exposes a per-stratum instrumental
        // snapshot: one finite, non-negative mass per stratum.
        let (pool, _) = tiny_pool();
        for method in Method::parity_lineup() {
            let sampler = method.build(&pool, 0.5, 0.5).unwrap();
            let snapshot = sampler.instrumental_snapshot();
            assert_eq!(snapshot.len(), sampler.strata_len(), "{}", method.label());
            assert!(
                snapshot.iter().all(|w| w.is_finite() && *w >= 0.0),
                "{}: {snapshot:?}",
                method.label()
            );
        }
    }
}
