//! Domain vocabularies and entity attribute generation.
//!
//! Each supported domain (e-commerce products, bibliographic citations,
//! restaurant listings) has small word lists from which latent entities are
//! synthesised.  The exact words are irrelevant to the evaluation methodology;
//! what matters is that matching records share most of their tokens while
//! non-matching records rarely do, giving the similarity features realistic
//! discriminative power.

use crate::record::{FieldType, FieldValue, Schema};
use rand::Rng;

/// Product brand names.
pub const BRANDS: &[&str] = &[
    "acme", "nordwind", "kestrel", "lumina", "vertex", "pinnacle", "solace", "quanta", "helix",
    "aurora", "zenith", "cobalt", "ember", "falcon", "granite", "horizon",
];

/// Product type nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "camera",
    "printer",
    "laptop",
    "monitor",
    "keyboard",
    "headphones",
    "speaker",
    "router",
    "tablet",
    "projector",
    "scanner",
    "drive",
    "charger",
    "webcam",
    "microphone",
    "dock",
];

/// Product qualifiers.
pub const PRODUCT_QUALIFIERS: &[&str] = &[
    "digital",
    "wireless",
    "compact",
    "portable",
    "professional",
    "ultra",
    "mini",
    "smart",
    "premium",
    "classic",
    "advanced",
    "dual",
    "rapid",
    "silent",
    "precision",
    "studio",
];

/// Description filler words for long-text fields.
pub const DESCRIPTION_WORDS: &[&str] = &[
    "high",
    "resolution",
    "battery",
    "life",
    "lightweight",
    "design",
    "warranty",
    "includes",
    "adapter",
    "cable",
    "performance",
    "storage",
    "memory",
    "display",
    "zoom",
    "optical",
    "noise",
    "cancelling",
    "ergonomic",
    "rechargeable",
    "bluetooth",
    "usb",
    "compatible",
    "energy",
    "efficient",
    "fast",
    "reliable",
    "durable",
    "sleek",
    "modern",
];

/// Research topic words for citation titles.
pub const TOPIC_WORDS: &[&str] = &[
    "learning",
    "inference",
    "sampling",
    "estimation",
    "resolution",
    "entity",
    "database",
    "query",
    "optimization",
    "distributed",
    "streaming",
    "graph",
    "index",
    "transaction",
    "probabilistic",
    "adaptive",
    "scalable",
    "efficient",
    "approximate",
    "parallel",
    "robust",
    "online",
    "incremental",
    "bayesian",
    "variational",
    "stochastic",
];

/// Author surnames for citations.
pub const SURNAMES: &[&str] = &[
    "smith",
    "nguyen",
    "garcia",
    "mueller",
    "tanaka",
    "kowalski",
    "okafor",
    "johansson",
    "rossi",
    "petrov",
    "santos",
    "yamamoto",
    "haddad",
    "oconnor",
    "dubois",
    "larsen",
];

/// Publication venues.
pub const VENUES: &[&str] = &[
    "vldb", "sigmod", "icde", "kdd", "icml", "nips", "cikm", "www", "edbt", "aaai",
];

/// Restaurant name words.
pub const RESTAURANT_WORDS: &[&str] = &[
    "golden", "dragon", "olive", "garden", "blue", "plate", "corner", "bistro", "harbor", "grill",
    "maple", "kitchen", "sunset", "terrace", "river", "cafe", "royal", "spice", "urban", "table",
];

/// Street names for restaurant addresses.
pub const STREETS: &[&str] = &[
    "main st",
    "oak ave",
    "elm st",
    "park blvd",
    "市場 st",
    "river rd",
    "hill dr",
    "lake view",
    "union sq",
    "grand ave",
    "second st",
    "bay rd",
];

/// Cities for restaurant listings.
pub const CITIES: &[&str] = &[
    "springfield",
    "riverton",
    "lakewood",
    "fairview",
    "georgetown",
    "clinton",
    "salem",
    "madison",
];

/// The domain-specific schema and entity generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKind {
    /// Consumer products (Abt-Buy / Amazon-GoogleProducts style).
    Product,
    /// Bibliographic citations (DBLP-ACM / cora style).
    Citation,
    /// Restaurant listings (restaurant dataset style).
    Restaurant,
}

impl EntityKind {
    /// The schema records of this kind use.
    pub fn schema(&self) -> Schema {
        match self {
            EntityKind::Product => Schema::new(vec![
                ("name", FieldType::ShortText),
                ("description", FieldType::LongText),
                ("manufacturer", FieldType::Categorical),
                ("price", FieldType::Numeric),
            ]),
            EntityKind::Citation => Schema::new(vec![
                ("title", FieldType::ShortText),
                ("authors", FieldType::ShortText),
                ("venue", FieldType::Categorical),
                ("year", FieldType::Numeric),
            ]),
            EntityKind::Restaurant => Schema::new(vec![
                ("name", FieldType::ShortText),
                ("address", FieldType::ShortText),
                ("city", FieldType::Categorical),
                ("phone", FieldType::ShortText),
            ]),
        }
    }

    /// Generate the canonical (uncorrupted) field values of a fresh latent
    /// entity, using `entity_id` to guarantee uniqueness across entities.
    pub fn generate_entity<R: Rng + ?Sized>(&self, entity_id: u64, rng: &mut R) -> Vec<FieldValue> {
        match self {
            EntityKind::Product => {
                let brand = BRANDS[rng.gen_range(0..BRANDS.len())];
                let qualifier = PRODUCT_QUALIFIERS[rng.gen_range(0..PRODUCT_QUALIFIERS.len())];
                let noun = PRODUCT_NOUNS[rng.gen_range(0..PRODUCT_NOUNS.len())];
                let model_number = 100 + (entity_id % 900);
                let name = format!("{brand} {qualifier} {noun} {model_number}");
                let description_len = rng.gen_range(8..16);
                let description: Vec<&str> = (0..description_len)
                    .map(|_| DESCRIPTION_WORDS[rng.gen_range(0..DESCRIPTION_WORDS.len())])
                    .collect();
                let description = format!("{qualifier} {noun} {}", description.join(" "));
                let price = 10.0 + rng.gen::<f64>() * 990.0;
                vec![
                    FieldValue::Text(name),
                    FieldValue::Text(description),
                    FieldValue::Text(brand.to_string()),
                    FieldValue::Number((price * 100.0).round() / 100.0),
                ]
            }
            EntityKind::Citation => {
                let title_len = rng.gen_range(4..9);
                let mut title_words: Vec<&str> = (0..title_len)
                    .map(|_| TOPIC_WORDS[rng.gen_range(0..TOPIC_WORDS.len())])
                    .collect();
                title_words.dedup();
                let title = format!("{} {}", title_words.join(" "), entity_id % 997);
                let author_count = rng.gen_range(1..4);
                let authors: Vec<&str> = (0..author_count)
                    .map(|_| SURNAMES[rng.gen_range(0..SURNAMES.len())])
                    .collect();
                let venue = VENUES[rng.gen_range(0..VENUES.len())];
                let year = 1990.0 + rng.gen_range(0..30) as f64;
                vec![
                    FieldValue::Text(title),
                    FieldValue::Text(authors.join(" ")),
                    FieldValue::Text(venue.to_string()),
                    FieldValue::Number(year),
                ]
            }
            EntityKind::Restaurant => {
                let w1 = RESTAURANT_WORDS[rng.gen_range(0..RESTAURANT_WORDS.len())];
                let w2 = RESTAURANT_WORDS[rng.gen_range(0..RESTAURANT_WORDS.len())];
                let name = format!("{w1} {w2} {}", entity_id % 89);
                let number = rng.gen_range(1..999);
                let street = STREETS[rng.gen_range(0..STREETS.len())];
                let address = format!("{number} {street}");
                let city = CITIES[rng.gen_range(0..CITIES.len())];
                let phone = format!(
                    "{:03} {:03} {:04}",
                    rng.gen_range(200..999),
                    rng.gen_range(100..999),
                    entity_id % 10_000
                );
                vec![
                    FieldValue::Text(name),
                    FieldValue::Text(address),
                    FieldValue::Text(city.to_string()),
                    FieldValue::Text(phone),
                ]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schemas_have_expected_shapes() {
        assert_eq!(EntityKind::Product.schema().len(), 4);
        assert_eq!(EntityKind::Citation.schema().len(), 4);
        assert_eq!(EntityKind::Restaurant.schema().len(), 4);
        assert_eq!(
            EntityKind::Product.schema().fields()[1].field_type,
            FieldType::LongText
        );
    }

    #[test]
    fn entities_match_their_schema_arity() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            EntityKind::Product,
            EntityKind::Citation,
            EntityKind::Restaurant,
        ] {
            for id in 0..20 {
                let values = kind.generate_entity(id, &mut rng);
                assert_eq!(values.len(), kind.schema().len());
                assert!(values.iter().all(|v| !v.is_missing()));
            }
        }
    }

    #[test]
    fn distinct_entities_are_usually_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = EntityKind::Product.generate_entity(1, &mut rng);
        let b = EntityKind::Product.generate_entity(2, &mut rng);
        assert_ne!(a[0], b[0], "names should differ for different entities");
    }

    #[test]
    fn numeric_fields_are_numbers() {
        let mut rng = StdRng::seed_from_u64(3);
        let product = EntityKind::Product.generate_entity(5, &mut rng);
        assert!(product[3].as_number().is_some());
        let citation = EntityKind::Citation.generate_entity(5, &mut rng);
        let year = citation[3].as_number().unwrap();
        assert!((1990.0..2020.0).contains(&year));
    }
}
