//! End-to-end tour of the `oasis-engine` session layer: suspend/resume
//! labelling, a mid-run checkpoint to JSON, an exact restore, and a
//! concurrent multi-session fleet over one shared pool.
//!
//! Run with: `cargo run --release --example engine_session`

use er_core::datasets::{DatasetProfile, DirectPoolModel};
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::{OasisConfig, SamplerMethod};
use oasis_engine::{Engine, LabelSource, SessionCheckpoint, SessionJob};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Synthesise an Abt-Buy-like pool and load it into the engine; every
    //    session shares the same Arc'd pool, so N sessions cost one pool.
    let profile = DatasetProfile::abt_buy();
    let mut rng = StdRng::seed_from_u64(42);
    let (pool, truth) = DirectPoolModel::new(profile.direct_pool_config(0.1)).generate(&mut rng);
    println!("Pool: {} record pairs\n", pool.len());

    let engine = Engine::new();
    engine.load_pool("abt-buy", pool).expect("load pool");
    let config = OasisConfig::default().with_strata_count(20);

    // 2. An *externally labelled* session: the engine proposes pairs and
    //    suspends; "annotators" (here: us, peeking at the hidden truth)
    //    label the tickets in batches and the session resumes.
    engine
        .create_session(
            "human",
            "abt-buy",
            SamplerMethod::Oasis,
            config.clone(),
            7,
            {
                let pool = engine.pool("abt-buy").expect("loaded");
                LabelSource::external(pool.len())
            },
        )
        .expect("create session");
    let session = engine.session("human").expect("exists");
    for round in 0..40 {
        let tickets = session.lock().propose(5).expect("propose");
        let answers: Vec<(u64, bool)> = tickets
            .iter()
            .map(|t| (t.id, truth[t.proposal.item]))
            .collect();
        session.lock().apply_labels(&answers).expect("labels");
        if round % 10 == 9 {
            let guard = session.lock();
            let estimate = guard.estimate();
            println!(
                "human session, batch {:>2}: F ≈ {:.3} ({} distinct labels)",
                round + 1,
                estimate.f_measure,
                guard.labels_consumed()
            );
        }
    }

    // 3. Checkpoint the session to JSON, drop it, restore it, and keep going
    //    — the restored run continues exactly where the snapshot was taken.
    let checkpoint_text = session.lock().checkpoint().to_json_string();
    println!(
        "\nCheckpoint captured: {} bytes of JSON",
        checkpoint_text.len()
    );
    engine.delete_session("human").expect("delete");
    let checkpoint = SessionCheckpoint::from_json_string(&checkpoint_text).expect("parse");
    engine
        .restore_session("human", checkpoint)
        .expect("restore");
    println!(
        "Restored: estimate still F ≈ {:.3}\n",
        engine
            .session("human")
            .expect("restored")
            .lock()
            .estimate()
            .f_measure
    );

    // 4. A fleet of in-process simulation sessions driven concurrently by
    //    the scoped-thread worker pool.  Independent seeds → independent
    //    runs; concurrency changes wall-clock, never the estimates.  The
    //    fleet mixes sampling methods — sessions are method-agnostic, so a
    //    single engine can run the paper's whole comparison side by side.
    let seeds: Vec<u64> = (100..108).collect();
    let methods = SamplerMethod::ALL;
    for (i, &seed) in seeds.iter().enumerate() {
        engine
            .create_session(
                format!("sim-{seed}"),
                "abt-buy",
                methods[i % methods.len()],
                config.clone(),
                seed,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone())),
            )
            .expect("create");
    }
    let jobs: Vec<SessionJob> = seeds
        .iter()
        .map(|&seed| SessionJob::Budget {
            session: format!("sim-{seed}"),
            budget: 300,
            max_steps: 100_000,
        })
        .collect();
    let start = std::time::Instant::now();
    let estimates = engine.run_parallel(&jobs, 4).expect("fleet");
    println!(
        "Fleet: {} concurrent sessions (budget 300 labels each) in {:.2?}:",
        seeds.len(),
        start.elapsed()
    );
    for ((seed, estimate), method) in seeds
        .iter()
        .zip(estimates.iter())
        .zip(methods.iter().cycle())
    {
        println!("  seed {seed} ({method}): F ≈ {:.3}", estimate.f_measure);
    }
}
