//! Checkpoint subsystem: exact-resume snapshots of sessions.
//!
//! A [`SessionCheckpoint`] captures everything needed to resume an evaluation
//! run bit-for-bit: the full [`SamplerState`] (strata, Beta–Bernoulli
//! posterior counts, AIS weighted sums), the xoshiro RNG state words, any
//! suspended (proposed-but-unlabelled) tickets, and the oracle/budget state.
//! Checkpoints serialise to JSON through the vendored `serde`'s [`json`]
//! layer, whose shortest-round-trip float encoding makes the JSON form as
//! exact as the in-memory one.
//!
//! The pool itself is *not* embedded — pools are shared across many sessions
//! and can be huge.  Instead the checkpoint records the pool id, length and a
//! content fingerprint, and [`Session::restore`](crate::Session::restore)
//! refuses to resume against a pool that does not match.

use crate::error::EngineResult;
use crate::session::{SessionLimits, Ticket};
use oasis::samplers::SamplerState;
use oasis::{Proposal, ScoredPool};
use serde::json::{FromJson, Json, JsonError, JsonResult, ToJson};

/// Version tag embedded in every checkpoint document.
pub const CHECKPOINT_FORMAT: &str = "oasis-engine/checkpoint-v1";

/// FNV-1a content fingerprint of a pool (score bits + predictions), used to
/// verify a checkpoint is restored against the pool it was captured on.
pub fn pool_fingerprint(pool: &ScoredPool) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    };
    for (&score, &prediction) in pool.scores().iter().zip(pool.predictions().iter()) {
        for byte in score.to_bits().to_le_bytes() {
            eat(byte);
        }
        eat(u8::from(prediction));
    }
    hash
}

/// Oracle/budget state carried in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleCheckpoint {
    /// Externally labelled session: the footnote-5 budget bitmap.
    External {
        /// Which pool items have been labelled at least once.
        labelled: Vec<bool>,
        /// Number of distinct items labelled.
        distinct: usize,
    },
    /// In-process deterministic oracle: hidden truth plus budget accounting.
    GroundTruth {
        /// The hidden ground-truth labels.
        truth: Vec<bool>,
        /// Which items have been queried (the budget bitmap).
        queried: Vec<bool>,
        /// Total queries issued, including cache hits.
        queries_issued: usize,
    },
}

/// A full, exact-resume snapshot of one [`Session`](crate::Session).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    /// The session id.
    pub session_id: String,
    /// Id of the pool the session evaluates (not embedded; see module docs).
    pub pool_id: String,
    /// Pool length, verified on restore.
    pub pool_len: usize,
    /// Pool content fingerprint, verified on restore.
    pub pool_fingerprint: u64,
    /// The seed the session RNG was originally created from.
    pub seed: u64,
    /// Current xoshiro256++ state words of the session RNG.
    pub rng_words: [u64; 4],
    /// Full sampler state (strata, posterior, estimator sums).
    pub sampler: SamplerState,
    /// Suspended (proposed-but-unlabelled) tickets, oldest first.
    pub pending: Vec<Ticket>,
    /// The next ticket id to issue.
    pub next_ticket: u64,
    /// Robustness limits (lease timeout, pending cap); defaults on
    /// documents written before lease support.
    pub limits: SessionLimits,
    /// The session's logical lease clock (0 on pre-lease documents).
    pub lease_now_us: u64,
    /// Oracle/budget state.
    pub oracle: OracleCheckpoint,
}

impl SessionCheckpoint {
    /// Serialise to a single-line JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parse a checkpoint from its JSON text.
    ///
    /// # Errors
    /// Any parse or schema failure, including a wrong `format` tag.
    pub fn from_json_string(text: &str) -> EngineResult<Self> {
        let value = Json::parse(text)?;
        Ok(Self::from_json(&value)?)
    }
}

impl ToJson for Ticket {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("ticket", self.id.to_json());
        obj.set("item", self.proposal.item.to_json());
        obj.set("stratum", self.proposal.stratum.to_json());
        obj.set("prediction", self.proposal.prediction.to_json());
        obj.set("weight", self.proposal.weight.to_json());
        if self.issued_at_us != 0 {
            obj.set("issued_at_us", self.issued_at_us.to_json());
        }
        obj
    }
}

impl FromJson for Ticket {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(Ticket {
            id: value.require("ticket")?.as_u64()?,
            proposal: Proposal {
                item: value.require("item")?.as_usize()?,
                stratum: value.require("stratum")?.as_usize()?,
                prediction: value.require("prediction")?.as_bool()?,
                weight: value.require("weight")?.as_f64()?,
            },
            issued_at_us: match value.get("issued_at_us") {
                Some(at) => at.as_u64()?,
                None => 0,
            },
        })
    }
}

impl ToJson for OracleCheckpoint {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        match self {
            OracleCheckpoint::External { labelled, distinct } => {
                obj.set("kind", Json::String("external".to_string()));
                obj.set("labelled", labelled.to_json());
                obj.set("distinct", distinct.to_json());
            }
            OracleCheckpoint::GroundTruth {
                truth,
                queried,
                queries_issued,
            } => {
                obj.set("kind", Json::String("ground_truth".to_string()));
                obj.set("truth", truth.to_json());
                obj.set("queried", queried.to_json());
                obj.set("queries_issued", queries_issued.to_json());
            }
        }
        obj
    }
}

impl FromJson for OracleCheckpoint {
    fn from_json(value: &Json) -> JsonResult<Self> {
        match value.require("kind")?.as_str()? {
            "external" => Ok(OracleCheckpoint::External {
                labelled: Vec::<bool>::from_json(value.require("labelled")?)?,
                distinct: value.require("distinct")?.as_usize()?,
            }),
            "ground_truth" => Ok(OracleCheckpoint::GroundTruth {
                truth: Vec::<bool>::from_json(value.require("truth")?)?,
                queried: Vec::<bool>::from_json(value.require("queried")?)?,
                queries_issued: value.require("queries_issued")?.as_usize()?,
            }),
            other => Err(JsonError::new(format!("unknown oracle kind {other:?}"))),
        }
    }
}

impl ToJson for SessionCheckpoint {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("format", Json::String(CHECKPOINT_FORMAT.to_string()));
        obj.set("session", Json::String(self.session_id.clone()));
        obj.set("pool", Json::String(self.pool_id.clone()));
        obj.set("pool_len", self.pool_len.to_json());
        obj.set("pool_fingerprint", self.pool_fingerprint.to_json());
        obj.set("seed", self.seed.to_json());
        obj.set("rng", self.rng_words.to_vec().to_json());
        obj.set("sampler", self.sampler.to_json());
        obj.set("pending", self.pending.to_json());
        obj.set("next_ticket", self.next_ticket.to_json());
        // Lease state is only written when it diverges from the defaults, so
        // lease-free sessions keep the pre-lease document shape.
        if let Some(timeout) = self.limits.lease_timeout_us {
            obj.set("lease_timeout_us", timeout.to_json());
        }
        if let Some(cap) = self.limits.max_pending {
            obj.set("max_pending", cap.to_json());
        }
        if self.lease_now_us != 0 {
            obj.set("lease_now_us", self.lease_now_us.to_json());
        }
        obj.set("oracle", self.oracle.to_json());
        obj
    }
}

impl FromJson for SessionCheckpoint {
    fn from_json(value: &Json) -> JsonResult<Self> {
        let format = value.require("format")?.as_str()?;
        if format != CHECKPOINT_FORMAT {
            return Err(JsonError::new(format!(
                "unsupported checkpoint format {format:?} (expected {CHECKPOINT_FORMAT:?})"
            )));
        }
        let rng_vec = Vec::<u64>::from_json(value.require("rng")?)?;
        let rng_words: [u64; 4] = rng_vec
            .try_into()
            .map_err(|_| JsonError::new("rng state must have exactly 4 words"))?;
        Ok(SessionCheckpoint {
            session_id: String::from_json(value.require("session")?)?,
            pool_id: String::from_json(value.require("pool")?)?,
            pool_len: value.require("pool_len")?.as_usize()?,
            pool_fingerprint: value.require("pool_fingerprint")?.as_u64()?,
            seed: value.require("seed")?.as_u64()?,
            rng_words,
            sampler: SamplerState::from_json(value.require("sampler")?)?,
            pending: Vec::<Ticket>::from_json(value.require("pending")?)?,
            next_ticket: value.require("next_ticket")?.as_u64()?,
            limits: SessionLimits {
                lease_timeout_us: match value.get("lease_timeout_us") {
                    Some(timeout) => Some(timeout.as_u64()?),
                    None => None,
                },
                max_pending: match value.get("max_pending") {
                    Some(cap) => Some(cap.as_usize()?),
                    None => None,
                },
            },
            lease_now_us: match value.get("lease_now_us") {
                Some(now) => now.as_u64()?,
                None => 0,
            },
            oracle: OracleCheckpoint::from_json(value.require("oracle")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{LabelSource, Session};
    use oasis::{GroundTruthOracle, OasisConfig, SamplerMethod};
    use std::sync::Arc;

    fn pool_and_truth(n: usize, seed: u64) -> (Arc<ScoredPool>, Vec<bool>) {
        crate::test_support::pool_and_truth(n, seed, 0.07)
    }

    #[test]
    fn fingerprint_tracks_pool_content() {
        let (a, _) = pool_and_truth(100, 1);
        let (b, _) = pool_and_truth(100, 2);
        assert_eq!(pool_fingerprint(&a), pool_fingerprint(&a));
        assert_ne!(pool_fingerprint(&a), pool_fingerprint(&b));
    }

    #[test]
    fn checkpoint_json_round_trip_is_exact() {
        let (pool, truth) = pool_and_truth(600, 3);
        let mut session = Session::new(
            "s1",
            "p1",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(8),
            42,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
        )
        .unwrap();
        session.step(120).unwrap();
        // Leave a suspended ticket in flight so the pending path is exercised.
        let mut external = Session::new(
            "s2",
            "p1",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(8),
            43,
            LabelSource::external(pool.len()),
        )
        .unwrap();
        external.propose(3).unwrap();

        for checkpoint in [session.checkpoint(), external.checkpoint()] {
            let text = checkpoint.to_json_string();
            let parsed = SessionCheckpoint::from_json_string(&text).unwrap();
            assert_eq!(parsed, checkpoint);
        }
    }

    #[test]
    fn interrupted_resume_is_bit_identical_to_uninterrupted_run() {
        let (pool, truth) = pool_and_truth(1500, 4);
        let config = OasisConfig::default().with_strata_count(10);

        // Uninterrupted: 500 steps straight through.
        let mut straight = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            config.clone(),
            2017,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone())),
        )
        .unwrap();
        let expected = straight.step(500).unwrap();

        // Interrupted at step 180: checkpoint → JSON → restore → continue.
        let mut interrupted = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            config,
            2017,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
        )
        .unwrap();
        interrupted.step(180).unwrap();
        let text = interrupted.checkpoint().to_json_string();
        drop(interrupted);
        let checkpoint = SessionCheckpoint::from_json_string(&text).unwrap();
        let mut resumed = Session::restore(checkpoint, Arc::clone(&pool)).unwrap();
        let estimate = resumed.step(320).unwrap();

        assert_eq!(estimate.f_measure.to_bits(), expected.f_measure.to_bits());
        assert_eq!(estimate.precision.to_bits(), expected.precision.to_bits());
        assert_eq!(estimate.recall.to_bits(), expected.recall.to_bits());
        assert_eq!(resumed.labels_consumed(), straight.labels_consumed());
    }

    #[test]
    fn restore_rejects_mismatched_pools() {
        let (pool, truth) = pool_and_truth(400, 5);
        let (other, _) = pool_and_truth(400, 6);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(6),
            1,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
        )
        .unwrap();
        session.step(20).unwrap();
        let checkpoint = session.checkpoint();
        let err = Session::restore(checkpoint, other).unwrap_err();
        assert!(matches!(
            err,
            crate::error::EngineError::CheckpointMismatch(_)
        ));
    }

    #[test]
    fn restore_rejects_out_of_range_pending_tickets() {
        // A crafted checkpoint must not smuggle out-of-range indices past
        // restore (they would panic a later apply_labels).
        let (pool, truth) = pool_and_truth(300, 8);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(5),
            3,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
        )
        .unwrap();
        session.step(10).unwrap();
        session.propose(1).unwrap();
        let good = session.checkpoint();

        let mut bad_item = good.clone();
        bad_item.pending[0].proposal.item = 10_000;
        assert!(Session::restore(bad_item, Arc::clone(&pool)).is_err());

        let mut bad_stratum = good.clone();
        bad_stratum.pending[0].proposal.stratum = 99;
        assert!(Session::restore(bad_stratum, Arc::clone(&pool)).is_err());

        // The unmodified checkpoint still restores.
        assert!(Session::restore(good, pool).is_ok());
    }

    #[test]
    fn session_new_rejects_label_sources_that_do_not_cover_the_pool() {
        let (pool, truth) = pool_and_truth(200, 9);
        let short_bitmap = LabelSource::External {
            labelled: vec![false; 10],
            distinct: 0,
        };
        assert!(Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            1,
            short_bitmap
        )
        .is_err());
        let short_truth = LabelSource::GroundTruth(GroundTruthOracle::new(truth[..50].to_vec()));
        assert!(Session::new(
            "s",
            "p",
            pool,
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            1,
            short_truth
        )
        .is_err());
    }

    #[test]
    fn restore_sanitises_budget_and_weights() {
        let (pool, _) = pool_and_truth(200, 10);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            5,
            LabelSource::external(pool.len()),
        )
        .unwrap();
        session.propose(2).unwrap();
        let good = session.checkpoint();

        // A hand-edited `distinct` is recomputed from the bitmap on restore.
        let mut inflated = good.clone();
        if let OracleCheckpoint::External { distinct, .. } = &mut inflated.oracle {
            *distinct = 999;
        }
        let restored = Session::restore(inflated, Arc::clone(&pool)).unwrap();
        assert_eq!(restored.labels_consumed(), 0);

        // Non-finite or negative ticket weights are rejected.
        for bad_weight in [f64::NAN, f64::INFINITY, -1.0] {
            let mut bad = good.clone();
            bad.pending[0].proposal.weight = bad_weight;
            assert!(
                Session::restore(bad, Arc::clone(&pool)).is_err(),
                "weight {bad_weight} must be rejected"
            );
        }
    }

    #[test]
    fn restore_rejects_duplicate_or_reissuable_ticket_ids() {
        let (pool, _) = pool_and_truth(200, 11);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            6,
            LabelSource::external(pool.len()),
        )
        .unwrap();
        session.propose(2).unwrap();
        let good = session.checkpoint();

        // Two pending tickets sharing an id would make one label apply twice.
        let mut duplicated = good.clone();
        duplicated.pending[1].id = duplicated.pending[0].id;
        assert!(Session::restore(duplicated, Arc::clone(&pool)).is_err());

        // next_ticket at/below a pending id would reissue a live ticket id.
        let mut reissuable = good.clone();
        reissuable.next_ticket = 0;
        assert!(Session::restore(reissuable, Arc::clone(&pool)).is_err());

        assert!(Session::restore(good, pool).is_ok());
    }

    #[test]
    fn restore_rejects_corrupt_estimator_sums() {
        let (pool, truth) = pool_and_truth(200, 12);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            7,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
        )
        .unwrap();
        session.step(20).unwrap();
        let good = session.checkpoint();
        for corrupt in [f64::NAN, f64::INFINITY, -1.0] {
            let mut bad = good.clone();
            match &mut bad.sampler {
                oasis::SamplerState::Oasis(state) => state.estimator.total_weight = corrupt,
                other => panic!("expected an OASIS state, got {:?}", other.method()),
            }
            assert!(
                Session::restore(bad, Arc::clone(&pool)).is_err(),
                "total_weight {corrupt} must be rejected"
            );
        }
    }

    #[test]
    fn bad_checkpoint_documents_are_rejected() {
        assert!(SessionCheckpoint::from_json_string("not json").is_err());
        assert!(SessionCheckpoint::from_json_string("{}").is_err());
        assert!(
            SessionCheckpoint::from_json_string(r#"{"format":"something-else"}"#).is_err(),
            "wrong format tag must be rejected"
        );
    }
}
