//! Bench: regenerate Figure 3 (calibrated vs uncalibrated scores).

use criterion::{criterion_group, criterion_main, Criterion};
use er_core::datasets::DatasetProfile;
use experiments::figure3::{run, run_panel, Figure3Config};

fn bench_figure3(c: &mut Criterion) {
    let config = Figure3Config {
        scale: 0.05,
        repeats: 20,
        budget_fraction: 0.1,
        checkpoints: 5,
        seed: 2017,
        threads: 4,
    };
    let figure = run(&config);
    println!("\n{}", figure.render());

    let mut group = c.benchmark_group("figure3");
    group.sample_size(10);
    let quick = Figure3Config {
        scale: 0.02,
        repeats: 5,
        budget_fraction: 0.1,
        checkpoints: 3,
        seed: 2017,
        threads: 2,
    };
    group.bench_function("dblp_acm_uncalibrated_panel_scale_0.02", |b| {
        b.iter(|| run_panel(&DatasetProfile::dblp_acm(), false, &quick))
    });
    group.finish();
}

criterion_group!(benches, bench_figure3);
criterion_main!(benches);
