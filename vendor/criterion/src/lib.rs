//! Offline subset of the `criterion` API.
//!
//! Provides the types and macros the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`]
//! and [`criterion_main!`] — with a simple wall-clock measurement loop and a
//! plain-text report instead of criterion's statistical machinery. The bench
//! source stays byte-compatible with real criterion, so restoring the
//! crates.io dependency requires no code changes.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point for registering benchmarks.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().render(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmark a function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().render());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Benchmark a function against an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (report separator in real criterion; no-op here).
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally parameterised.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (f, Some(p)) if f.is_empty() => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `iterations` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iterations: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {name}: {per_iter}/iter ({iters} iters, total {total})",
        per_iter = format_duration(per_iter),
        iters = bencher.iterations,
        total = format_duration(bencher.elapsed),
    );
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        let mut runs = 0;
        group
            .sample_size(3)
            .bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("g2", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
