//! Offline subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! provides the exact surface the workspace uses: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. `StdRng` is a deterministic
//! xoshiro256++ generator seeded via SplitMix64; the stream produced by
//! `seed_from_u64` is stable across runs and platforms, which the
//! deterministic-seed regression tests rely on.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64` words.
pub trait RngCore {
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next random `u32` (from the high bits of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range; panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Uniform `u64` in `[0, span)` via the widening-multiply method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// User-facing random value generation, following the rand 0.8 API.
pub trait Rng: RngCore {
    /// Sample a value of type `T` (uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`; panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed, expanding it with SplitMix64 exactly as
    /// rand 0.8 does for its seedable generators.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes().iter()) {
                *dst = *src;
            }
        }
        Self::from_seed(seed)
    }

    /// Construct from a low-quality entropy source (wall clock + a counter).
    ///
    /// Good enough for non-cryptographic simulation seeding, which is the
    /// only use this workspace has.
    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED_CAFE);
        Self::seed_from_u64(nanos ^ (&nanos as *const u64 as u64))
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++.
    ///
    /// Not the ChaCha12 generator real rand 0.8 uses, but seeded through the
    /// same SplitMix64 expansion and fully deterministic for a given seed,
    /// which is what the test suite and experiments require.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The four xoshiro256++ state words, exposed so callers can persist
        /// the generator (checkpoint/resume) and later rebuild it exactly
        /// with [`StdRng::from_state_words`].
        pub fn state_words(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from previously captured state words.  The
        /// resulting stream continues bit-for-bit where
        /// [`StdRng::state_words`] left off.
        ///
        /// The all-zero state is invalid for xoshiro and is remapped to the
        /// same fallback constants `from_seed` uses.
        pub fn from_state_words(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return StdRng {
                    s: [0x9E37_79B9, 0x7F4A_7C15, 0xBF58_476D, 0x1CE4_E5B9],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9, 0x7F4A_7C15, 0xBF58_476D, 0x1CE4_E5B9];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{uniform_below, RngCore};

    /// Random operations on slices (rand 0.8's `SliceRandom` subset).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Choose one element uniformly, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = uniform_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

/// A convenience thread-local-style generator seeded from entropy.
///
/// Unlike real rand this returns a fresh generator per call; the workspace
/// only uses it (if at all) for non-reproducible convenience sampling.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(5..10);
            assert!((5..10).contains(&n));
            let m: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn state_words_round_trip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(314);
        for _ in 0..17 {
            rng.next_u64();
        }
        let words = rng.state_words();
        let mut resumed = StdRng::from_state_words(words);
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // The all-zero state maps to the documented fallback, not a stuck RNG.
        let mut zeroed = StdRng::from_state_words([0; 4]);
        assert_ne!(zeroed.next_u64(), 0);
    }

    #[test]
    fn next_u64_reference_stream() {
        // Pin the exact stream so accidental algorithm changes are caught:
        // the deterministic-seed regression tests depend on it.
        let mut rng = StdRng::seed_from_u64(2017);
        let observed: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(2017);
        let replay: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(observed, replay);
    }
}
