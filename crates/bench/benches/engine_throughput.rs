//! Bench: `oasis-engine` session throughput (steps/sec) for concurrent
//! sessions driven by the scoped-thread worker pool, plus the OASIS
//! proposal-CDF cache: batched proposals pay the O(K) instrumental-
//! distribution refit once per batch instead of once per draw, so the win
//! grows with the stratum count K.
//!
//! The `large_pool_proposals` group is the sharding headline: per-label
//! proposal maintenance on a pool bigger than one flat CDF wants to be,
//! Fenwick-tree shard routing (O(log S) update + draw) against the
//! pre-sharding cost profile (every label dirties the proposal, the next
//! draw rebuilds the whole O(S) CDF).  Defaults to 1M synthetic pairs; set
//! `OASIS_BENCH_LARGE=1` for the 10M-pair run.
//!
//! Every headline number printed by these benches is also recorded to
//! `BENCH_engine.json` (path overridable via `BENCH_ENGINE_JSON`) so CI can
//! archive the run as an artifact.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::datasets::DatasetProfile;
use experiments::pools::direct_pool;
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::{
    CategoricalCdf, FenwickTree, InteractiveSampler, OasisConfig, OasisSampler, SamplerMethod,
};
use oasis_engine::protocol::{dispatch, Request};
use oasis_engine::{Engine, LabelSource, MetricsRegistry, SessionJob};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

const SESSIONS: usize = 8;
const STEPS: usize = 500;

/// Headline numbers accumulated across the bench functions, flushed to
/// `BENCH_engine.json` by the last bench in the group.  Keys map to raw JSON
/// values (already serialised).
static HEADLINES: Mutex<BTreeMap<String, String>> = Mutex::new(BTreeMap::new());

fn record_headline(key: &str, json_value: String) {
    HEADLINES
        .lock()
        .unwrap()
        .insert(key.to_string(), json_value);
}

/// Write the accumulated headlines as a single JSON object.  CI uploads the
/// file as the `BENCH_engine.json` artifact.
fn write_bench_json() {
    let headlines = HEADLINES.lock().unwrap();
    let fields: Vec<String> = headlines
        .iter()
        .map(|(key, value)| format!("\"{key}\":{value}"))
        .collect();
    let path = std::env::var("BENCH_ENGINE_JSON").unwrap_or_else(|_| "BENCH_engine.json".into());
    std::fs::write(&path, format!("{{{}}}\n", fields.join(","))).expect("write bench json");
    println!("bench headline numbers written to {path}");
}

/// Build an engine with `SESSIONS` fresh sessions over one shared pool.
fn build_engine(pool: &experiments::pools::ExperimentPool) -> (Engine, Vec<SessionJob>) {
    let engine = Engine::new();
    engine.load_pool("cora", pool.pool.clone()).unwrap();
    let config = OasisConfig::default().with_strata_count(30);
    let mut jobs = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS as u64 {
        let id = format!("s{i}");
        engine
            .create_session(
                &id,
                "cora",
                SamplerMethod::Oasis,
                config.clone(),
                2017 + i,
                LabelSource::GroundTruth(GroundTruthOracle::new(pool.truth.clone())),
            )
            .unwrap();
        jobs.push(SessionJob::Steps {
            session: id,
            steps: STEPS,
        });
    }
    (engine, jobs)
}

/// The proposal-CDF cache win: draw `batch` proposals per posterior refresh
/// (one label applied between batches) either one `propose` at a time —
/// every draw after a label pays the O(K) refit — or through
/// `propose_batch`, which refits once.  At large K the difference is the
/// refit cost itself.
fn bench_propose_cdf_cache(c: &mut Criterion) {
    let pool = direct_pool(&DatasetProfile::cora(), 0.05, true, 2017);
    let batch = 64usize;
    let rounds = 16usize;

    let mut group = c.benchmark_group("oasis_propose_cdf_cache");
    group.sample_size(10);
    for strata in [30usize, 240, 480] {
        let config = OasisConfig::default().with_strata_count(strata);
        let base = OasisSampler::new(&pool.pool, config).unwrap();
        // Per-draw refit: alternate propose and apply_label, so every
        // proposal pays the O(K) distribution + CDF rebuild.
        group.bench_function(
            BenchmarkId::new("per_draw_refit", format!("K{strata}")),
            |b| {
                b.iter(|| {
                    let mut sampler = base.clone();
                    let mut rng = StdRng::seed_from_u64(7);
                    for _ in 0..rounds * batch {
                        let proposal = sampler.propose(&pool.pool, &mut rng);
                        sampler.apply_label(&proposal, pool.truth[proposal.item]);
                    }
                    sampler.estimate()
                })
            },
        );
        // Batched: one refit per `batch` draws, labels applied in bulk.
        group.bench_function(
            BenchmarkId::new("batched_refit", format!("K{strata}")),
            |b| {
                b.iter(|| {
                    let mut sampler = base.clone();
                    let mut rng = StdRng::seed_from_u64(7);
                    for _ in 0..rounds {
                        let proposals = sampler.propose_batch(&pool.pool, &mut rng, batch);
                        let labelled: Vec<(&oasis::Proposal, bool)> =
                            proposals.iter().map(|p| (p, pool.truth[p.item])).collect();
                        sampler.apply_labels(labelled);
                    }
                    sampler.estimate()
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let pool = direct_pool(&DatasetProfile::cora(), 0.05, true, 2017);

    // One-off headline number: total steps / wall-clock at each worker count.
    let mut throughput_fields = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (engine, jobs) = build_engine(&pool);
        let start = std::time::Instant::now();
        engine.run_parallel(&jobs, workers).unwrap();
        let seconds = start.elapsed().as_secs_f64();
        let steps_per_sec = (SESSIONS * STEPS) as f64 / seconds;
        println!(
            "engine throughput: {SESSIONS} sessions x {STEPS} steps, {workers} workers -> {steps_per_sec:.0} steps/s"
        );
        throughput_fields.push(format!("\"workers_{workers}\":{steps_per_sec:.0}"));
    }
    record_headline(
        "engine_throughput_steps_per_sec",
        format!("{{{}}}", throughput_fields.join(",")),
    );

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        group.bench_function(
            BenchmarkId::new(format!("{SESSIONS}_sessions"), format!("{workers}_workers")),
            |b| {
                b.iter(|| {
                    // Session state advances across iterations (sessions are
                    // long-lived by design), so rebuild per measurement to
                    // keep the workload comparable.
                    let (engine, jobs) = build_engine(&pool);
                    engine.run_parallel(&jobs, workers).unwrap()
                })
            },
        );
    }
    group.finish();
}

/// An engine with one external (suspend/resume) session over the pool,
/// either fully instrumented (the default registry) or with metrics
/// disabled (every record an early-returning no-op).
fn build_external_engine(pool: &experiments::pools::ExperimentPool, instrumented: bool) -> Engine {
    let engine = if instrumented {
        Engine::new()
    } else {
        Engine::new().with_metrics(MetricsRegistry::disabled())
    };
    engine.load_pool("cora", pool.pool.clone()).unwrap();
    engine
        .create_session(
            "s",
            "cora",
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(30),
            2017,
            LabelSource::external(pool.pool.len()),
        )
        .unwrap();
    engine
}

/// Drive `rounds` batched propose→label round trips through the protocol
/// dispatch path — the exact code the counters and latency timers live on.
/// The session is long-lived across calls; `next_ticket` carries the ticket
/// sequence forward.
fn run_propose_label_rounds(engine: &Engine, rounds: usize, batch: usize, next_ticket: &mut u64) {
    for _ in 0..rounds {
        let outcome = dispatch(
            engine,
            Request::Propose {
                session: "s".to_string(),
                count: batch,
            },
        );
        assert!(!outcome.shutdown);
        let labels: Vec<(u64, bool)> = (*next_ticket..*next_ticket + batch as u64)
            .map(|ticket| (ticket, true))
            .collect();
        *next_ticket += batch as u64;
        dispatch(
            engine,
            Request::Label {
                session: "s".to_string(),
                labels,
            },
        );
    }
}

/// Metrics overhead on the hot path: identical batched-proposal workloads
/// against an instrumented engine and one whose registry is disabled.  The
/// instrumentation budget is <2% — a few relaxed atomic adds and two clock
/// reads per request, amortised over a whole proposal batch.  Both engines
/// are built once and their sessions stay hot; the headline number
/// alternates the two workloads so clock drift and cache effects cancel.
fn bench_metrics_overhead(c: &mut Criterion) {
    let pool = direct_pool(&DatasetProfile::cora(), 0.05, true, 2017);
    let batch = 256usize;
    let rounds = 8usize;

    let instrumented = build_external_engine(&pool, true);
    let disabled = build_external_engine(&pool, false);
    let mut tickets = [0u64; 2];

    // One-off headline number for the PR description / CI log.
    let mut timed = [0f64; 2];
    for _ in 0..8 {
        for (slot, engine) in [(0usize, &instrumented), (1usize, &disabled)] {
            let start = std::time::Instant::now();
            run_propose_label_rounds(engine, rounds, batch, &mut tickets[slot]);
            timed[slot] += start.elapsed().as_secs_f64();
        }
    }
    println!(
        "metrics overhead: instrumented {:.4}s vs disabled {:.4}s -> {:+.2}%",
        timed[0],
        timed[1],
        (timed[0] / timed[1] - 1.0) * 100.0
    );
    record_headline(
        "metrics_overhead_pct",
        format!("{:.2}", (timed[0] / timed[1] - 1.0) * 100.0),
    );

    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(10);
    for (name, engine, slot) in [
        ("instrumented", &instrumented, 0usize),
        ("disabled", &disabled, 1usize),
    ] {
        let mut next_ticket = tickets[slot];
        group.bench_function(BenchmarkId::new("batched_propose_label", name), |b| {
            b.iter(|| {
                run_propose_label_rounds(engine, rounds, batch, &mut next_ticket);
                engine.session("s").unwrap().lock().estimate()
            })
        });
        tickets[slot] = next_ticket;
    }
    group.finish();
}

/// Per-label proposal maintenance cost at a given shard count: one routed
/// shard re-weight plus one shard draw, measured over `rounds` labels.
/// Returns (fenwick ns/label, rebuilt-CDF ns/label).
fn measure_per_label_cost(shards: usize, rounds: usize) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(2017);
    let masses: Vec<f64> = (0..shards).map(|_| 0.001 + rng.gen::<f64>()).collect();
    let updates: Vec<(usize, f64)> = (0..rounds)
        .map(|_| (rng.gen_range(0..shards), 0.001 + rng.gen::<f64>()))
        .collect();
    let mut sink = 0usize;

    // Fenwick routing: O(log S) canonical update + O(log S) descent draw.
    let mut tree = FenwickTree::from_weights(&masses);
    let mut draw_rng = StdRng::seed_from_u64(7);
    let start = Instant::now();
    for &(shard, mass) in &updates {
        tree.set(shard, mass);
        sink ^= tree.sample(&mut draw_rng);
    }
    let fenwick_ns = start.elapsed().as_nanos() as f64 / rounds as f64;

    // Pre-sharding profile: every label dirties the proposal; the next draw
    // pays a full O(S) CDF rebuild.  Cap the rounds — each one is O(S) and
    // the per-label cost is flat in the round count.
    let rebuild_rounds = rounds.min(2_000);
    let mut rebuilt = masses.clone();
    let mut draw_rng = StdRng::seed_from_u64(7);
    let start = Instant::now();
    for &(shard, mass) in &updates[..rebuild_rounds] {
        rebuilt[shard] = mass;
        let cdf = CategoricalCdf::new(&rebuilt);
        sink ^= cdf.sample(&mut draw_rng);
    }
    let rebuild_ns = start.elapsed().as_nanos() as f64 / rebuild_rounds as f64;
    black_box(sink);
    (fenwick_ns, rebuild_ns)
}

/// The sharding headline: per-label proposal cost on a pool too big for a
/// flat rebuild-per-label CDF.  The pool is carved into ~2048-item shards
/// (the sharded sampler's routing granularity: one Fenwick leaf per shard),
/// and each label re-weights its routed shard then draws the next shard.
/// Measuring the same workload at pool size N/10 shows the Fenwick cost is
/// sublinear (near-flat) in pool size while the rebuild cost scales with it.
fn bench_large_pool_proposals(c: &mut Criterion) {
    let large = std::env::var("OASIS_BENCH_LARGE").is_ok_and(|v| v == "1");
    let pairs: usize = if large { 10_000_000 } else { 1_000_000 };
    const SHARD_SIZE: usize = 2048;
    let shards = pairs.div_ceil(SHARD_SIZE);
    let small_shards = (pairs / 10).div_ceil(SHARD_SIZE);
    let rounds = 20_000usize;

    let (fenwick_small_ns, rebuild_small_ns) = measure_per_label_cost(small_shards, rounds);
    let (fenwick_ns, rebuild_ns) = measure_per_label_cost(shards, rounds);
    println!(
        "large-pool proposals: {pairs} pairs / {shards} shards -> fenwick {fenwick_ns:.0} ns/label vs rebuilt CDF {rebuild_ns:.0} ns/label ({:.1}x)",
        rebuild_ns / fenwick_ns
    );
    println!(
        "  sublinearity: pool x10 ({} -> {pairs} pairs) scales fenwick x{:.2}, rebuild x{:.2}",
        pairs / 10,
        fenwick_ns / fenwick_small_ns,
        rebuild_ns / rebuild_small_ns
    );
    record_headline(
        "large_pool_proposals",
        format!(
            "{{\"pairs\":{pairs},\"shards\":{shards},\"fenwick_ns_per_label\":{fenwick_ns:.0},\"rebuild_ns_per_label\":{rebuild_ns:.0},\"speedup\":{:.1},\"fenwick_scale_x10_pool\":{:.2},\"rebuild_scale_x10_pool\":{:.2}}}",
            rebuild_ns / fenwick_ns,
            fenwick_ns / fenwick_small_ns,
            rebuild_ns / rebuild_small_ns
        ),
    );

    let mut rng = StdRng::seed_from_u64(2017);
    let masses: Vec<f64> = (0..shards).map(|_| 0.001 + rng.gen::<f64>()).collect();
    let mut group = c.benchmark_group("large_pool_proposals");
    group.sample_size(10);
    group.bench_function(
        BenchmarkId::new("fenwick_update_draw", format!("{shards}_shards")),
        |b| {
            let mut tree = FenwickTree::from_weights(&masses);
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| {
                let shard = rng.gen_range(0..shards);
                tree.set(shard, 0.001 + rng.gen::<f64>());
                tree.sample(&mut rng)
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("rebuilt_cdf_draw", format!("{shards}_shards")),
        |b| {
            let mut rebuilt = masses.clone();
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| {
                let shard = rng.gen_range(0..shards);
                rebuilt[shard] = 0.001 + rng.gen::<f64>();
                CategoricalCdf::new(&rebuilt).sample(&mut rng)
            })
        },
    );
    group.finish();

    // Last bench in the group: flush every recorded headline to disk.
    write_bench_json();
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_propose_cdf_cache,
    bench_metrics_overhead,
    bench_large_pool_proposals
);
criterion_main!(benches);
