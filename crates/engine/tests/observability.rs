//! Wire tests for the observability surface: the `metrics` and
//! `diagnostics` protocol verbs, driven through `serve_lines` exactly as a
//! client would see them.
//!
//! Counters are engine-process-global: they live in memory only, are *not*
//! persisted through checkpoints or the WAL, and reset to zero on restart
//! (replaying a WAL after `restore_from` re-counts the replayed entries as
//! fresh work).  Diagnostics, by contrast, are pure functions of the
//! serialized sampler state and must be bit-stable across
//! checkpoint→restore — both contracts are pinned below.

use oasis_engine::server::serve_lines;
use oasis_engine::{Engine, FsCheckpointStore, ManualClock, MetricsRegistry};
use serde::json::Json;
use std::io::Cursor;
use std::sync::Arc;

const METHODS: [&str; 4] = ["oasis", "passive", "importance", "stratified"];

fn run_script(engine: &Engine, script: &str) -> Vec<String> {
    let mut output = Vec::new();
    serve_lines(engine, Cursor::new(script.to_string()), &mut output).unwrap();
    String::from_utf8(output)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// Steps each session runs; small relative to the pool so that on the fixed
/// seed every draw hits a distinct item.  That makes `labels_consumed` equal
/// the iteration count, so the Kish bound `ESS ≤ iterations` becomes the
/// wire-checkable `ESS ∈ (0, labels_consumed]` — with label reuse (repeat
/// draws cost no new label) ESS may legitimately exceed `labels_consumed`.
const STEPS: usize = 8;

const POOL_SIZE: usize = 100;

/// A 100-pair pool with a deterministic score ramp, predictions down the
/// middle, and (separately) a hidden truth that correlates with but does not
/// equal the predictions, so `step` runs self-contained.
fn pool_line() -> String {
    let scores: Vec<String> = (0..POOL_SIZE)
        .map(|i| format!("{:.6}", (POOL_SIZE - i) as f64 / (POOL_SIZE + 1) as f64))
        .collect();
    let predictions: Vec<&str> = (0..POOL_SIZE)
        .map(|i| if i < POOL_SIZE / 2 { "true" } else { "false" })
        .collect();
    format!(
        r#"{{"cmd":"load_pool","pool":"p","scores":[{}],"predictions":[{}]}}"#,
        scores.join(","),
        predictions.join(",")
    )
}

fn truth_array() -> String {
    let truth: Vec<&str> = (0..POOL_SIZE)
        .map(|i| i % 5 != 3 && i < POOL_SIZE / 2 + 2)
        .map(|t| if t { "true" } else { "false" })
        .collect();
    format!("[{}]", truth.join(","))
}

fn setup_script() -> String {
    let mut script = format!("{}\n", pool_line());
    let truth = truth_array();
    for method in METHODS {
        script.push_str(&format!(
            concat!(
                r#"{{"cmd":"create_session","session":"{m}","pool":"p","seed":13,"method":"{m}","config":{{"strata_count":3}},"truth":{truth}}}"#,
                "\n",
                r#"{{"cmd":"step","session":"{m}","steps":{steps}}}"#,
                "\n",
            ),
            m = method,
            truth = truth,
            steps = STEPS
        ));
    }
    script
}

#[test]
fn diagnostics_verb_reports_populated_health_for_every_method() {
    let engine = Engine::new();
    let mut script = setup_script();
    for method in METHODS {
        script.push_str(&format!(
            "{{\"cmd\":\"diagnostics\",\"session\":\"{method}\"}}\n"
        ));
    }
    let responses = run_script(&engine, &script);
    assert_eq!(responses.len(), 1 + 2 * METHODS.len() + METHODS.len());

    for (i, method) in METHODS.iter().enumerate() {
        let line = &responses[1 + 2 * METHODS.len() + i];
        let parsed = Json::parse(line).unwrap();
        assert!(parsed.require("ok").unwrap().as_bool().unwrap(), "{line}");
        assert_eq!(
            parsed.require("method").unwrap().as_str().unwrap(),
            *method,
            "{line}"
        );
        let labels_consumed = parsed.require("labels_consumed").unwrap().as_u64().unwrap();
        assert!(labels_consumed > 0, "{line}");

        let diagnostics = parsed.require("diagnostics").unwrap();
        assert_eq!(
            diagnostics.require("method").unwrap().as_str().unwrap(),
            *method
        );
        assert_eq!(
            diagnostics.require("iterations").unwrap().as_u64().unwrap(),
            STEPS as u64
        );
        // Ground-truth-free health: ESS must be positive and can never
        // exceed the labels actually consumed on these fixed-seed scripts.
        let ess = diagnostics
            .require("effective_sample_size")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(ess > 0.0, "{method}: ESS must be positive: {line}");
        assert!(
            ess <= labels_consumed as f64 + 1e-9,
            "{method}: ESS {ess} exceeds labels_consumed {labels_consumed}: {line}"
        );
        let nwv = diagnostics
            .require("normalized_weight_variance")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(nwv >= 0.0, "{method}: {line}");

        // Allocation vs instrumental distribution: stratified methods
        // report one entry per stratum, unstratified ones a single bucket.
        let labels = diagnostics.require("stratum_labels").unwrap();
        let instrumental = diagnostics.require("instrumental").unwrap();
        let expected_strata = match *method {
            "oasis" | "stratified" => 3,
            _ => 1,
        };
        assert_eq!(labels.as_array().unwrap().len(), expected_strata, "{line}");
        assert_eq!(
            instrumental.as_array().unwrap().len(),
            expected_strata,
            "{line}"
        );
        let mass: f64 = instrumental
            .as_array()
            .unwrap()
            .iter()
            .map(|w| w.as_f64().unwrap())
            .sum();
        assert!(
            (mass - 1.0).abs() < 1e-9,
            "{method}: instrumental must be a distribution: {line}"
        );

        // Only the adaptive OASIS sampler rebuilds its proposal CDF.
        let rebuilds = diagnostics
            .require("cdf_rebuilds")
            .unwrap()
            .as_u64()
            .unwrap();
        if *method == "oasis" {
            assert!(rebuilds > 0, "{line}");
        } else {
            assert_eq!(rebuilds, 0, "{line}");
        }
    }
}

#[test]
fn metrics_verb_reports_nonzero_counters_and_histograms_for_every_method() {
    let engine = Engine::new();
    let mut script = setup_script();
    script.push_str("{\"cmd\":\"metrics\"}\n");
    let responses = run_script(&engine, &script);
    let line = responses.last().unwrap();
    let parsed = Json::parse(line).unwrap();
    assert!(parsed.require("ok").unwrap().as_bool().unwrap(), "{line}");

    let metrics = parsed.require("metrics").unwrap();
    let counters = metrics.require("counters").unwrap();
    let steps = counters.require("step").unwrap().as_u64().unwrap();
    assert_eq!(steps, (STEPS * METHODS.len()) as u64, "{line}");
    // No durable store attached: the WAL/checkpoint counters stay zero but
    // are still listed, so consumers never need existence checks.
    assert_eq!(
        counters.require("wal_append").unwrap().as_u64().unwrap(),
        0,
        "{line}"
    );

    let latency = metrics.require("latency_us").unwrap();
    for method in METHODS {
        let histogram = latency
            .require(&format!("step.{method}"))
            .unwrap_or_else(|_| panic!("missing step.{method} histogram: {line}"));
        assert_eq!(histogram.require("count").unwrap().as_u64().unwrap(), 1);
        assert!(histogram.require("p99_us").unwrap().as_u64().is_ok());
    }
}

#[test]
fn diagnostics_are_bit_stable_across_checkpoint_and_restore() {
    let engine = Engine::new();
    let mut script = setup_script();
    script.push_str(concat!(
        r#"{"cmd":"checkpoint","session":"oasis"}"#,
        "\n",
        r#"{"cmd":"diagnostics","session":"oasis"}"#,
        "\n",
    ));
    let responses = run_script(&engine, &script);
    let checkpoint_line = &responses[responses.len() - 2];
    let original = Json::parse(responses.last().unwrap()).unwrap();
    let checkpoint = Json::parse(checkpoint_line)
        .unwrap()
        .require("checkpoint")
        .unwrap()
        .render();

    let restore_script = format!(
        "{}\n{}\n",
        format_args!(r#"{{"cmd":"restore","session":"copy","checkpoint":{checkpoint}}}"#),
        r#"{"cmd":"diagnostics","session":"copy"}"#,
    );
    let responses = run_script(&engine, &restore_script);
    assert!(
        responses[0].contains(r#""restored":true"#),
        "{}",
        responses[0]
    );
    let restored = Json::parse(&responses[1]).unwrap();

    // The diagnostics object — ESS, variance, allocation, instrumental,
    // CDF-rebuild count — must render byte-identically: it is a pure
    // function of the serialized state.
    assert_eq!(
        original.require("diagnostics").unwrap().render(),
        restored.require("diagnostics").unwrap().render(),
        "diagnostics drifted across checkpoint/restore"
    );
}

#[test]
fn manual_clock_makes_the_metrics_snapshot_bit_stable() {
    // Two engines over the same script and a frozen manual clock must
    // produce byte-identical metrics responses — nothing in the snapshot
    // (counters, histogram buckets, quantiles) may depend on wall time.
    let render = || {
        let engine =
            Engine::new().with_metrics(MetricsRegistry::with_clock(Box::new(ManualClock::new())));
        let mut script = setup_script();
        script.push_str("{\"cmd\":\"metrics\"}\n");
        run_script(&engine, &script).last().unwrap().clone()
    };
    let first = render();
    assert_eq!(first, render(), "metrics snapshot depends on wall time");
    // With time frozen every latency is exactly zero — pinned, not flaky.
    assert!(
        first.contains(r#""step.oasis":{"count":"1","max_us":"0""#),
        "{first}"
    );
}

#[test]
fn counters_reset_on_restart_and_recount_replayed_wal_entries() {
    let dir = std::env::temp_dir().join(format!("oasis-observability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: durable engine does WAL-logged work; counters are nonzero.
    {
        let engine = Engine::new().with_store(Arc::new(FsCheckpointStore::open(&dir).unwrap()));
        let script = concat!(
            r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.7,0.3,0.1],"predictions":[true,true,false,false]}"#,
            "\n",
            r#"{"cmd":"create_session","session":"d","pool":"p","seed":13,"config":{"strata_count":2},"truth":[true,true,false,false]}"#,
            "\n",
            r#"{"cmd":"checkpoint_to","session":"d"}"#,
            "\n",
            r#"{"cmd":"step","session":"d","steps":5}"#,
            "\n",
            r#"{"cmd":"metrics"}"#,
            "\n",
        );
        let responses = run_script(&engine, script);
        let metrics = Json::parse(responses.last().unwrap()).unwrap();
        let counters = metrics
            .require("metrics")
            .unwrap()
            .require("counters")
            .unwrap();
        assert!(counters.require("wal_append").unwrap().as_u64().unwrap() >= 1);
        assert!(
            counters
                .require("checkpoint_write")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 1
        );
    }

    // Phase 2: a fresh engine over the same store starts from zero —
    // counters are process-global, not persisted — then counts the replay.
    // (The pool must be reloaded first: pools are not in the store.)
    let engine = Engine::new().with_store(Arc::new(FsCheckpointStore::open(&dir).unwrap()));
    let script = concat!(
        r#"{"cmd":"metrics"}"#,
        "\n",
        r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.7,0.3,0.1],"predictions":[true,true,false,false]}"#,
        "\n",
        r#"{"cmd":"restore_from","session":"d"}"#,
        "\n",
        r#"{"cmd":"metrics"}"#,
        "\n",
    );
    let responses = run_script(&engine, script);
    let fresh = Json::parse(&responses[0]).unwrap();
    let counters = fresh
        .require("metrics")
        .unwrap()
        .require("counters")
        .unwrap();
    for key in ["propose", "step", "wal_append", "checkpoint_write"] {
        assert_eq!(
            counters.require(key).unwrap().as_u64().unwrap(),
            0,
            "counter {key} must reset on restart"
        );
    }
    assert!(
        responses[2].contains(r#""restored":true"#),
        "{}",
        responses[2]
    );
    let after = Json::parse(&responses[3]).unwrap();
    let counters = after
        .require("metrics")
        .unwrap()
        .require("counters")
        .unwrap();
    assert!(
        counters.require("wal_replay").unwrap().as_u64().unwrap() >= 1,
        "{}",
        responses[2]
    );
    assert!(
        counters
            .require("checkpoint_restore")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1,
        "{}",
        responses[2]
    );

    let _ = std::fs::remove_dir_all(&dir);
}
