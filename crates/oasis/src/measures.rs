//! Evaluation measures for entity resolution: the pairwise F-measure family.
//!
//! The paper (Section 2.2) evaluates ER with the α-weighted F-measure
//!
//! ```text
//! F_α = TP / (α (TP + FP) + (1 − α) (TP + FN))
//! ```
//!
//! where `α = 1` recovers precision, `α = 0` recall and `α = ½` the balanced
//! F-measure (F1).  The F-measure is invariant to true negatives, which is what
//! makes it robust to the extreme class imbalance inherent in ER.

use serde::{Deserialize, Serialize};

/// Raw confusion-matrix counts accumulated over labelled record pairs.
///
/// Counts are stored as `f64` so the same type can hold both integer counts
/// (exhaustive evaluation) and importance-weighted counts (AIS estimation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfusionCounts {
    /// Weighted count of true positives (predicted match, truly a match).
    pub tp: f64,
    /// Weighted count of false positives (predicted match, truly a non-match).
    pub fp: f64,
    /// Weighted count of false negatives (predicted non-match, truly a match).
    pub fn_: f64,
    /// Weighted count of true negatives (predicted non-match, truly a non-match).
    pub tn: f64,
}

impl ConfusionCounts {
    /// An empty set of counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one labelled pair with the given importance weight.
    ///
    /// `predicted` is the ER system's output, `truth` the oracle's label.
    pub fn observe_weighted(&mut self, predicted: bool, truth: bool, weight: f64) {
        match (predicted, truth) {
            (true, true) => self.tp += weight,
            (true, false) => self.fp += weight,
            (false, true) => self.fn_ += weight,
            (false, false) => self.tn += weight,
        }
    }

    /// Record one labelled pair with unit weight.
    pub fn observe(&mut self, predicted: bool, truth: bool) {
        self.observe_weighted(predicted, truth, 1.0);
    }

    /// Total weight observed.
    pub fn total(&self) -> f64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Number of predicted positives (TP + FP).
    pub fn predicted_positives(&self) -> f64 {
        self.tp + self.fp
    }

    /// Number of actual positives (TP + FN).
    pub fn actual_positives(&self) -> f64 {
        self.tp + self.fn_
    }

    /// Precision: TP / (TP + FP). Returns `None` when undefined (no predicted
    /// positives observed yet).
    pub fn precision(&self) -> Option<f64> {
        let denom = self.predicted_positives();
        if denom > 0.0 {
            Some(self.tp / denom)
        } else {
            None
        }
    }

    /// Recall: TP / (TP + FN). Returns `None` when undefined (no actual
    /// positives observed yet).
    pub fn recall(&self) -> Option<f64> {
        let denom = self.actual_positives();
        if denom > 0.0 {
            Some(self.tp / denom)
        } else {
            None
        }
    }

    /// α-weighted F-measure (paper Eqn. 1).  `alpha = 0.5` gives the balanced
    /// F-measure, `alpha = 1` precision and `alpha = 0` recall.  Returns `None`
    /// when the denominator is zero (no positives of either kind observed).
    pub fn f_measure(&self, alpha: f64) -> Option<f64> {
        let denom = alpha * self.predicted_positives() + (1.0 - alpha) * self.actual_positives();
        if denom > 0.0 {
            Some(self.tp / denom)
        } else {
            None
        }
    }

    /// Accuracy: (TP + TN) / total. Included for completeness; the paper argues
    /// it is inappropriate under class imbalance.
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.total();
        if total > 0.0 {
            Some((self.tp + self.tn) / total)
        } else {
            None
        }
    }

    /// Merge another set of counts into this one.
    pub fn merge(&mut self, other: &ConfusionCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

/// The triple of headline ER evaluation measures at a given α.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measures {
    /// Precision = F_{α=1}.
    pub precision: f64,
    /// Recall = F_{α=0}.
    pub recall: f64,
    /// α-weighted F-measure.
    pub f_measure: f64,
    /// The weight α at which `f_measure` was computed.
    pub alpha: f64,
}

impl Measures {
    /// Compute the measure triple from confusion counts, treating undefined
    /// quantities as 0 (the convention used when reporting on full pools where
    /// positives always exist).
    pub fn from_counts(counts: &ConfusionCounts, alpha: f64) -> Self {
        Measures {
            precision: counts.precision().unwrap_or(0.0),
            recall: counts.recall().unwrap_or(0.0),
            f_measure: counts.f_measure(alpha).unwrap_or(0.0),
            alpha,
        }
    }
}

/// Compute the exact measures of a prediction vector against ground truth over
/// an entire pool (the `T → ∞` target the samplers try to estimate).
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn exhaustive_measures(predictions: &[bool], truth: &[bool], alpha: f64) -> Measures {
    assert_eq!(
        predictions.len(),
        truth.len(),
        "predictions and truth must have equal length"
    );
    let mut counts = ConfusionCounts::new();
    for (&p, &t) in predictions.iter().zip(truth.iter()) {
        counts.observe(p, t);
    }
    Measures::from_counts(&counts, alpha)
}

/// Convert the β parametrisation of the F-measure to the paper's α
/// parametrisation: `α = 1 / (1 + β²)` (paper footnote 1).
pub fn alpha_from_beta(beta: f64) -> f64 {
    1.0 / (1.0 + beta * beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_counts() -> ConfusionCounts {
        // 8 TP, 2 FP, 4 FN, 100 TN
        let mut c = ConfusionCounts::new();
        for _ in 0..8 {
            c.observe(true, true);
        }
        for _ in 0..2 {
            c.observe(true, false);
        }
        for _ in 0..4 {
            c.observe(false, true);
        }
        for _ in 0..100 {
            c.observe(false, false);
        }
        c
    }

    #[test]
    fn precision_recall_f1_basic() {
        let c = example_counts();
        let p = c.precision().unwrap();
        let r = c.recall().unwrap();
        assert!((p - 0.8).abs() < 1e-12);
        assert!((r - 8.0 / 12.0).abs() < 1e-12);
        let f1 = c.f_measure(0.5).unwrap();
        let harmonic = 2.0 * p * r / (p + r);
        assert!(
            (f1 - harmonic).abs() < 1e-12,
            "F1/2 must equal the harmonic mean"
        );
    }

    #[test]
    fn alpha_one_is_precision_alpha_zero_is_recall() {
        let c = example_counts();
        assert!((c.f_measure(1.0).unwrap() - c.precision().unwrap()).abs() < 1e-12);
        assert!((c.f_measure(0.0).unwrap() - c.recall().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn undefined_measures_return_none() {
        let c = ConfusionCounts::new();
        assert!(c.precision().is_none());
        assert!(c.recall().is_none());
        assert!(c.f_measure(0.5).is_none());
        assert!(c.accuracy().is_none());

        // Only true negatives: F-measure still undefined.
        let mut c = ConfusionCounts::new();
        c.observe(false, false);
        assert!(c.f_measure(0.5).is_none());
        assert_eq!(c.accuracy(), Some(1.0));
    }

    #[test]
    fn f_measure_invariant_to_true_negatives() {
        let mut a = example_counts();
        let f_before = a.f_measure(0.5).unwrap();
        for _ in 0..10_000 {
            a.observe(false, false);
        }
        let f_after = a.f_measure(0.5).unwrap();
        assert!((f_before - f_after).abs() < 1e-12);
    }

    #[test]
    fn accuracy_is_sensitive_to_true_negatives() {
        let mut a = example_counts();
        let acc_before = a.accuracy().unwrap();
        for _ in 0..10_000 {
            a.observe(false, false);
        }
        assert!(a.accuracy().unwrap() > acc_before);
    }

    #[test]
    fn weighted_observation_scales_counts() {
        let mut c = ConfusionCounts::new();
        c.observe_weighted(true, true, 2.5);
        c.observe_weighted(true, false, 0.5);
        assert!((c.tp - 2.5).abs() < 1e-12);
        assert!((c.fp - 0.5).abs() < 1e-12);
        assert!((c.precision().unwrap() - 2.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = example_counts();
        let b = example_counts();
        a.merge(&b);
        assert!((a.tp - 16.0).abs() < 1e-12);
        assert!((a.total() - 2.0 * b.total()).abs() < 1e-12);
        // measures are unchanged by doubling all counts
        assert!((a.f_measure(0.5).unwrap() - b.f_measure(0.5).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_measures_matches_manual_computation() {
        let predictions = vec![true, true, false, false, true];
        let truth = vec![true, false, true, false, true];
        let m = exhaustive_measures(&predictions, &truth, 0.5);
        // TP = 2, FP = 1, FN = 1
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f_measure - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn exhaustive_measures_panics_on_length_mismatch() {
        exhaustive_measures(&[true], &[true, false], 0.5);
    }

    #[test]
    fn alpha_from_beta_special_cases() {
        assert!((alpha_from_beta(1.0) - 0.5).abs() < 1e-12);
        assert!((alpha_from_beta(0.0) - 1.0).abs() < 1e-12);
        // β → ∞ weights recall only
        assert!(alpha_from_beta(1e6) < 1e-11);
    }

    #[test]
    fn measures_from_counts_uses_zero_for_undefined() {
        let c = ConfusionCounts::new();
        let m = Measures::from_counts(&c, 0.5);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f_measure, 0.0);
    }
}
