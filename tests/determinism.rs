//! Deterministic-seed regression tests: a fixed seed on a fixed pool must
//! reproduce the same estimates run after run, guarding against silent
//! RNG-stream drift (a re-seeded generator, a reordered draw, a changed
//! stratification tie-break all show up here as a loud failure).

use er_core::datasets::score_model::{DirectPoolConfig, DirectPoolModel};
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::{OasisConfig, OasisSampler, Sampler};
use oasis::Estimate;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fixed synthetic pool every run of these tests evaluates against.
fn fixed_pool() -> (oasis::ScoredPool, Vec<bool>) {
    let config = DirectPoolConfig {
        pool_size: 4000,
        match_count: 60,
        match_logit_mean: 1.2,
        non_match_logit_mean: -3.0,
        logit_noise: 1.4,
        decision_threshold: 0.5,
        uncalibrated_scores: false,
    };
    let mut rng = StdRng::seed_from_u64(90210);
    DirectPoolModel::new(config).generate(&mut rng)
}

/// One complete OASIS run with a fixed sampling seed.
fn run_oasis(seed: u64) -> Estimate {
    let (pool, truth) = fixed_pool();
    let mut oracle = GroundTruthOracle::new(truth);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler =
        OasisSampler::new(&pool, OasisConfig::default().with_strata_count(25)).unwrap();
    sampler
        .run_until_budget(&pool, &mut oracle, &mut rng, 700, 1_000_000)
        .unwrap()
}

#[test]
fn same_seed_reproduces_the_estimate_exactly() {
    let first = run_oasis(42);
    let second = run_oasis(42);
    assert!(first.is_defined());
    assert!(
        (first.f_measure - second.f_measure).abs() <= 1e-9,
        "same-seed F-measure drifted: {} vs {}",
        first.f_measure,
        second.f_measure
    );
    assert!((first.precision - second.precision).abs() <= 1e-9);
    assert!((first.recall - second.recall).abs() <= 1e-9);
}

#[test]
fn different_seeds_explore_different_streams() {
    // Complements the reproducibility check: the seed genuinely steers the
    // sampling path, so identical estimates cannot come from a sampler that
    // ignores its RNG.
    let a = run_oasis(42);
    let b = run_oasis(43);
    assert!(
        (a.f_measure - b.f_measure).abs() > 0.0,
        "two seeds produced bit-identical estimates; is the RNG being used?"
    );
}

#[test]
fn pinned_seed_reproduces_the_golden_estimate() {
    // Golden value recorded when the workspace was bootstrapped. It changes
    // only if the RNG stream, the stratification, or the sampling logic
    // changes — all of which must be deliberate, reviewed decisions. Update
    // the constant (and say why in the commit) if such a change is intended.
    const GOLDEN_F_MEASURE: f64 = 0.510022036087039;
    let estimate = run_oasis(2017);
    assert!(
        (estimate.f_measure - GOLDEN_F_MEASURE).abs() <= 1e-9,
        "RNG-stream drift: golden {GOLDEN_F_MEASURE:.12} vs observed {:.12}",
        estimate.f_measure
    );
}
