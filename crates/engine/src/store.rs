//! Durable checkpoint store: where sessions live between process lifetimes.
//!
//! A [`CheckpointStore`] keeps, per session, a *checkpoint document* and an
//! append-only *write-ahead log* (see [`crate::wal`]).  The engine's
//! durability contract is `latest checkpoint + WAL suffix`:
//!
//! * `checkpoint_to` writes an envelope `{"format":"oasis-engine/store-v1",
//!   "wal_seq":N,"checkpoint":{…}}` — the inner document is an unmodified
//!   [`SessionCheckpoint`] (`oasis-engine/checkpoint-v1`), and `wal_seq` is
//!   the sequence number the *next* WAL record will carry — then truncates
//!   the log.  A crash between those two steps is harmless: replay filters
//!   records below the envelope's watermark.
//! * `restore_from` loads the envelope, rebuilds the session from the inner
//!   checkpoint, and replays every log record with `seq >= wal_seq`.
//!
//! Bare `oasis-engine/checkpoint-v1` documents (written before the store
//! existed, or exported over the wire by the `checkpoint` verb) are accepted
//! too, with an implied watermark of 0 — so pre-store checkpoints remain
//! restorable forever.
//!
//! The store trait is deliberately dumb — opaque strings in, opaque strings
//! out — so alternative backends (an object store, a database) only deal in
//! bytes, never in sampler semantics.  [`FsCheckpointStore`] is the built-in
//! filesystem backend: one `<id>.checkpoint.json` plus one `<id>.wal.jsonl`
//! per session under a root directory, session ids percent-encoded so any id
//! accepted by the protocol maps to a safe, collision-free file name.

use crate::checkpoint::{SessionCheckpoint, CHECKPOINT_FORMAT};
use crate::error::{EngineError, EngineResult};
use serde::json::{FromJson, Json, ToJson};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version tag of the store envelope that wraps a checkpoint with its WAL
/// high-water mark.
pub const STORE_FORMAT: &str = "oasis-engine/store-v1";

/// Wrap a checkpoint and its WAL watermark into a store envelope document.
pub fn render_envelope(checkpoint: &SessionCheckpoint, wal_seq: u64) -> String {
    let mut obj = Json::object();
    obj.set("format", Json::String(STORE_FORMAT.to_string()));
    obj.set("wal_seq", wal_seq.to_json());
    obj.set("checkpoint", checkpoint.to_json());
    obj.render()
}

/// Parse a store document into `(checkpoint, wal_seq)`.  Accepts both the
/// store envelope and a bare `checkpoint-v1` document (watermark 0).
///
/// # Errors
/// [`EngineError::Store`] on malformed JSON or an unknown format tag.
pub fn parse_envelope(text: &str) -> EngineResult<(SessionCheckpoint, u64)> {
    let value =
        Json::parse(text).map_err(|e| EngineError::Store(format!("bad store document: {e}")))?;
    let format = value
        .require("format")
        .and_then(|f| f.as_str().map(str::to_string))
        .map_err(|e| EngineError::Store(format!("bad store document: {e}")))?;
    if format == CHECKPOINT_FORMAT {
        let checkpoint = SessionCheckpoint::from_json(&value)
            .map_err(|e| EngineError::Store(format!("bad checkpoint document: {e}")))?;
        return Ok((checkpoint, 0));
    }
    if format != STORE_FORMAT {
        return Err(EngineError::Store(format!(
            "unsupported store format {format:?} (expected {STORE_FORMAT:?} or \
             {CHECKPOINT_FORMAT:?})"
        )));
    }
    let wal_seq = value
        .require("wal_seq")
        .and_then(|v| v.as_u64())
        .map_err(|e| EngineError::Store(format!("bad store document: {e}")))?;
    let checkpoint = value
        .require("checkpoint")
        .map_err(|e| EngineError::Store(format!("bad store document: {e}")))
        .and_then(|inner| {
            SessionCheckpoint::from_json(inner)
                .map_err(|e| EngineError::Store(format!("bad checkpoint document: {e}")))
        })?;
    Ok((checkpoint, wal_seq))
}

/// A durable backend for session checkpoints and their write-ahead logs.
///
/// Implementations deal in opaque one-line strings; all sampler and replay
/// semantics stay in the engine.  Methods take `&self` — backends are shared
/// across the engine's worker threads behind an `Arc`.
pub trait CheckpointStore: std::fmt::Debug + Send + Sync {
    /// Durably replace the session's checkpoint document.
    fn put_checkpoint(&self, session_id: &str, document: &str) -> EngineResult<()>;

    /// Load the session's checkpoint document, or `None` if it has none.
    fn load_checkpoint(&self, session_id: &str) -> EngineResult<Option<String>>;

    /// Append one record line to the session's write-ahead log.
    fn append_wal(&self, session_id: &str, line: &str) -> EngineResult<()>;

    /// Read the session's log, one record per line, in append order.
    fn read_wal(&self, session_id: &str) -> EngineResult<Vec<String>>;

    /// Drop the session's log (after its effect is folded into a checkpoint).
    fn truncate_wal(&self, session_id: &str) -> EngineResult<()>;

    /// Ids of every session with a stored checkpoint.
    fn list_sessions(&self) -> EngineResult<Vec<String>>;

    /// Remove the session's checkpoint and log entirely.
    fn remove(&self, session_id: &str) -> EngineResult<()>;
}

/// Filesystem-backed [`CheckpointStore`]: one checkpoint file and one WAL
/// file per session under a root directory.
///
/// Layout (`<id>` percent-encoded):
///
/// ```text
/// root/
///   <id>.checkpoint.json   # store envelope, atomically replaced
///   <id>.wal.jsonl         # one WAL record per line, append-only
/// ```
///
/// Checkpoints are written to a temporary file and renamed into place, so a
/// crash mid-write leaves the previous checkpoint intact.
#[derive(Debug)]
pub struct FsCheckpointStore {
    root: PathBuf,
}

const CHECKPOINT_SUFFIX: &str = ".checkpoint.json";
const WAL_SUFFIX: &str = ".wal.jsonl";

impl FsCheckpointStore {
    /// Open (creating if needed) a store rooted at `root`.
    ///
    /// Opening also sweeps up orphaned `*.tmp` files — the residue of a
    /// crash between writing a checkpoint's temporary file and renaming it
    /// into place.  The rename never happened, so the previous checkpoint
    /// is still the authoritative one and the orphan is garbage.  The store
    /// assumes exclusive ownership of its root directory.
    ///
    /// # Errors
    /// [`EngineError::Store`] if the directory cannot be created or
    /// scanned.
    pub fn open(root: impl Into<PathBuf>) -> EngineResult<Self> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| EngineError::Store(format!("cannot create {}: {e}", root.display())))?;
        let store = FsCheckpointStore { root };
        store.sweep_orphaned_tmp_files()?;
        Ok(store)
    }

    fn sweep_orphaned_tmp_files(&self) -> EngineResult<()> {
        let entries = fs::read_dir(&self.root).map_err(|e| io_err("scan", &self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("scan", &self.root, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                let path = entry.path();
                match fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(io_err("remove orphaned", &path, e)),
                }
            }
        }
        Ok(())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn checkpoint_path(&self, session_id: &str) -> PathBuf {
        self.root
            .join(format!("{}{CHECKPOINT_SUFFIX}", encode_id(session_id)))
    }

    fn wal_path(&self, session_id: &str) -> PathBuf {
        self.root
            .join(format!("{}{WAL_SUFFIX}", encode_id(session_id)))
    }
}

/// Percent-encode a session id into a safe file-name stem: ASCII letters,
/// digits, `.`, `_` and `-` pass through, everything else (including `/`,
/// `%` itself and non-ASCII bytes) becomes `%XX`.  The mapping is injective,
/// so distinct ids can never collide on disk.
fn encode_id(id: &str) -> String {
    let mut out = String::with_capacity(id.len());
    for byte in id.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => {
                out.push(byte as char);
            }
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

/// Invert [`encode_id`], accepting only *canonical* encodings — the exact
/// strings `encode_id` emits.  Returns `None` on stray `%` escapes, and on
/// well-formed but non-canonical ones: lowercase hex (`%2f`) or escapes of
/// pass-through bytes (`%61` for `a`).  Without that check two distinct file
/// names could decode to the same session id, and a crafted file dropped
/// into the store directory could alias — and via `list_sessions` shadow —
/// a legitimate shard-qualified id like `sess/shard-3`.
fn decode_id(encoded: &str) -> Option<String> {
    let bytes = encoded.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = encoded.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    let id = String::from_utf8(out).ok()?;
    // Round-trip audit: the only decodable names are the ones we write.
    (encode_id(&id) == encoded).then_some(id)
}

fn io_err(action: &str, path: &Path, e: std::io::Error) -> EngineError {
    EngineError::Store(format!("cannot {action} {}: {e}", path.display()))
}

/// fsync a directory so a rename inside it is durable.  Directory fds are
/// only open-able on unix; elsewhere this is a no-op (the rename itself is
/// still atomic, we just lose the power-loss guarantee).
fn sync_dir(dir: &Path) -> EngineResult<()> {
    #[cfg(unix)]
    {
        let handle = fs::File::open(dir).map_err(|e| io_err("open directory", dir, e))?;
        handle
            .sync_all()
            .map_err(|e| io_err("sync directory", dir, e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

impl CheckpointStore for FsCheckpointStore {
    fn put_checkpoint(&self, session_id: &str, document: &str) -> EngineResult<()> {
        // tmp write → fsync file → rename → fsync parent dir.  Without the
        // file fsync the rename can land before the data blocks; without the
        // directory fsync the rename itself can vanish on power loss.
        let path = self.checkpoint_path(session_id);
        let tmp = path.with_extension("json.tmp");
        let mut file = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        file.write_all(document.as_bytes())
            .map_err(|e| io_err("write", &tmp, e))?;
        file.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        drop(file);
        fs::rename(&tmp, &path).map_err(|e| io_err("replace", &path, e))?;
        sync_dir(&self.root)
    }

    fn load_checkpoint(&self, session_id: &str) -> EngineResult<Option<String>> {
        let path = self.checkpoint_path(session_id);
        match fs::read_to_string(&path) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", &path, e)),
        }
    }

    fn append_wal(&self, session_id: &str, line: &str) -> EngineResult<()> {
        let path = self.wal_path(session_id);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        writeln!(file, "{line}").map_err(|e| io_err("append to", &path, e))
    }

    fn read_wal(&self, session_id: &str) -> EngineResult<Vec<String>> {
        let path = self.wal_path(session_id);
        match fs::read_to_string(&path) {
            Ok(text) => Ok(text.lines().map(str::to_string).collect()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(io_err("read", &path, e)),
        }
    }

    fn truncate_wal(&self, session_id: &str) -> EngineResult<()> {
        let path = self.wal_path(session_id);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", &path, e)),
        }
    }

    fn list_sessions(&self) -> EngineResult<Vec<String>> {
        let entries = fs::read_dir(&self.root).map_err(|e| io_err("list", &self.root, e))?;
        let mut ids = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", &self.root, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(CHECKPOINT_SUFFIX) else {
                continue;
            };
            if let Some(id) = decode_id(stem) {
                ids.push(id);
            }
        }
        ids.sort();
        Ok(ids)
    }

    fn remove(&self, session_id: &str) -> EngineResult<()> {
        let path = self.checkpoint_path(session_id);
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("remove", &path, e)),
        }
        self.truncate_wal(session_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{LabelSource, Session};
    use oasis::{OasisConfig, SamplerMethod};
    use std::sync::Arc;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("oasis-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn id_encoding_is_injective_and_reversible() {
        let ids = [
            "plain",
            "with/slash",
            "with space",
            "dots..and--dashes__ok",
            "per%cent",
            "unicode-π",
            "..",
        ];
        let mut encoded: Vec<String> = ids.iter().map(|id| encode_id(id)).collect();
        for (id, enc) in ids.iter().zip(encoded.iter()) {
            assert!(
                enc.bytes().all(|b| b.is_ascii_alphanumeric()
                    || b == b'.'
                    || b == b'_'
                    || b == b'-'
                    || b == b'%'),
                "{id} → {enc}"
            );
            assert_eq!(decode_id(enc).as_deref(), Some(*id));
        }
        encoded.sort();
        encoded.dedup();
        assert_eq!(encoded.len(), ids.len(), "distinct ids must not collide");
    }

    #[test]
    fn shard_qualified_ids_round_trip_and_reject_aliases() {
        // Shard-qualified session ids contain a path separator; it must be
        // percent-encoded on disk and survive the round trip exactly.
        let id = "sess/shard-3";
        let enc = encode_id(id);
        assert_eq!(enc, "sess%2Fshard-3");
        assert_eq!(decode_id(&enc).as_deref(), Some(id));

        // Non-canonical spellings of the same name must NOT decode: they
        // would alias the legitimate file under a different stem.
        assert_eq!(decode_id("sess%2fshard-3"), None, "lowercase hex");
        assert_eq!(decode_id("%73ess%2Fshard-3"), None, "overlong escape");
        assert_eq!(decode_id("sess%2"), None, "truncated escape");
        assert_eq!(decode_id("sess%zz"), None, "bad hex digits");
    }

    #[test]
    fn filesystem_store_round_trips_checkpoints_and_wal() {
        let dir = scratch_dir("roundtrip");
        let store = FsCheckpointStore::open(&dir).unwrap();

        assert_eq!(store.load_checkpoint("s/1").unwrap(), None);
        assert_eq!(store.read_wal("s/1").unwrap(), Vec::<String>::new());
        assert_eq!(store.list_sessions().unwrap(), Vec::<String>::new());

        store.put_checkpoint("s/1", "{\"v\":1}").unwrap();
        store.put_checkpoint("s2", "{\"v\":2}").unwrap();
        store.append_wal("s/1", "line-a").unwrap();
        store.append_wal("s/1", "line-b").unwrap();

        assert_eq!(store.load_checkpoint("s/1").unwrap().unwrap(), "{\"v\":1}");
        assert_eq!(store.read_wal("s/1").unwrap(), vec!["line-a", "line-b"]);
        assert_eq!(store.read_wal("s2").unwrap(), Vec::<String>::new());
        assert_eq!(store.list_sessions().unwrap(), vec!["s/1", "s2"]);

        // Overwrite replaces atomically; truncate clears only the log.
        store.put_checkpoint("s/1", "{\"v\":3}").unwrap();
        assert_eq!(store.load_checkpoint("s/1").unwrap().unwrap(), "{\"v\":3}");
        store.truncate_wal("s/1").unwrap();
        assert_eq!(store.read_wal("s/1").unwrap(), Vec::<String>::new());

        store.remove("s/1").unwrap();
        assert_eq!(store.load_checkpoint("s/1").unwrap(), None);
        assert_eq!(store.list_sessions().unwrap(), vec!["s2"]);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn opening_sweeps_orphaned_tmp_files_and_keeps_the_real_checkpoint() {
        let dir = scratch_dir("orphan");
        {
            let store = FsCheckpointStore::open(&dir).unwrap();
            store.put_checkpoint("s", "{\"v\":1}").unwrap();
        }
        // Plant the residue of a crash between tmp-write and rename: the tmp
        // file exists, the rename never happened.
        let orphan = dir.join("s.checkpoint.json.tmp");
        fs::write(&orphan, "half-written garb").unwrap();
        assert!(orphan.exists());

        let store = FsCheckpointStore::open(&dir).unwrap();
        assert!(!orphan.exists(), "open() must sweep orphaned tmp files");
        assert_eq!(
            store.load_checkpoint("s").unwrap().unwrap(),
            "{\"v\":1}",
            "the committed checkpoint is untouched"
        );
        // A later checkpoint still commits normally.
        store.put_checkpoint("s", "{\"v\":2}").unwrap();
        assert_eq!(store.load_checkpoint("s").unwrap().unwrap(), "{\"v\":2}");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn envelope_round_trips_and_accepts_bare_checkpoints() {
        let (pool, _) = crate::test_support::pool_and_truth(300, 5, 0.1);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(5),
            11,
            LabelSource::external(pool.len()),
        )
        .unwrap();
        session.propose(2).unwrap();
        let checkpoint = session.checkpoint();

        let text = render_envelope(&checkpoint, 42);
        let (parsed, wal_seq) = parse_envelope(&text).unwrap();
        assert_eq!(parsed, checkpoint);
        assert_eq!(wal_seq, 42);

        // A bare checkpoint-v1 document (pre-store, or exported over the
        // wire) is accepted with an implied watermark of 0.
        let bare = checkpoint.to_json_string();
        let (parsed, wal_seq) = parse_envelope(&bare).unwrap();
        assert_eq!(parsed, checkpoint);
        assert_eq!(wal_seq, 0);

        for corrupt in ["not json", "{}", r#"{"format":"other-v9"}"#] {
            let err = parse_envelope(corrupt).unwrap_err();
            assert!(matches!(err, EngineError::Store(_)), "{corrupt}: {err}");
        }
    }
}
