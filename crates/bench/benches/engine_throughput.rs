//! Bench: `oasis-engine` session throughput (steps/sec) for concurrent
//! sessions driven by the scoped-thread worker pool, plus the OASIS
//! proposal-CDF cache: batched proposals pay the O(K) instrumental-
//! distribution refit once per batch instead of once per draw, so the win
//! grows with the stratum count K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::datasets::DatasetProfile;
use experiments::pools::direct_pool;
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::{InteractiveSampler, OasisConfig, OasisSampler, SamplerMethod};
use oasis_engine::protocol::{dispatch, Request};
use oasis_engine::{Engine, LabelSource, MetricsRegistry, SessionJob};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SESSIONS: usize = 8;
const STEPS: usize = 500;

/// Build an engine with `SESSIONS` fresh sessions over one shared pool.
fn build_engine(pool: &experiments::pools::ExperimentPool) -> (Engine, Vec<SessionJob>) {
    let engine = Engine::new();
    engine.load_pool("cora", pool.pool.clone()).unwrap();
    let config = OasisConfig::default().with_strata_count(30);
    let mut jobs = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS as u64 {
        let id = format!("s{i}");
        engine
            .create_session(
                &id,
                "cora",
                SamplerMethod::Oasis,
                config.clone(),
                2017 + i,
                LabelSource::GroundTruth(GroundTruthOracle::new(pool.truth.clone())),
            )
            .unwrap();
        jobs.push(SessionJob::Steps {
            session: id,
            steps: STEPS,
        });
    }
    (engine, jobs)
}

/// The proposal-CDF cache win: draw `batch` proposals per posterior refresh
/// (one label applied between batches) either one `propose` at a time —
/// every draw after a label pays the O(K) refit — or through
/// `propose_batch`, which refits once.  At large K the difference is the
/// refit cost itself.
fn bench_propose_cdf_cache(c: &mut Criterion) {
    let pool = direct_pool(&DatasetProfile::cora(), 0.05, true, 2017);
    let batch = 64usize;
    let rounds = 16usize;

    let mut group = c.benchmark_group("oasis_propose_cdf_cache");
    group.sample_size(10);
    for strata in [30usize, 240, 480] {
        let config = OasisConfig::default().with_strata_count(strata);
        let base = OasisSampler::new(&pool.pool, config).unwrap();
        // Per-draw refit: alternate propose and apply_label, so every
        // proposal pays the O(K) distribution + CDF rebuild.
        group.bench_function(
            BenchmarkId::new("per_draw_refit", format!("K{strata}")),
            |b| {
                b.iter(|| {
                    let mut sampler = base.clone();
                    let mut rng = StdRng::seed_from_u64(7);
                    for _ in 0..rounds * batch {
                        let proposal = sampler.propose(&pool.pool, &mut rng);
                        sampler.apply_label(&proposal, pool.truth[proposal.item]);
                    }
                    sampler.estimate()
                })
            },
        );
        // Batched: one refit per `batch` draws, labels applied in bulk.
        group.bench_function(
            BenchmarkId::new("batched_refit", format!("K{strata}")),
            |b| {
                b.iter(|| {
                    let mut sampler = base.clone();
                    let mut rng = StdRng::seed_from_u64(7);
                    for _ in 0..rounds {
                        let proposals = sampler.propose_batch(&pool.pool, &mut rng, batch);
                        let labelled: Vec<(&oasis::Proposal, bool)> =
                            proposals.iter().map(|p| (p, pool.truth[p.item])).collect();
                        sampler.apply_labels(labelled);
                    }
                    sampler.estimate()
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let pool = direct_pool(&DatasetProfile::cora(), 0.05, true, 2017);

    // One-off headline number: total steps / wall-clock at each worker count.
    for workers in [1usize, 2, 4, 8] {
        let (engine, jobs) = build_engine(&pool);
        let start = std::time::Instant::now();
        engine.run_parallel(&jobs, workers).unwrap();
        let seconds = start.elapsed().as_secs_f64();
        println!(
            "engine throughput: {SESSIONS} sessions x {STEPS} steps, {workers} workers -> {:.0} steps/s",
            (SESSIONS * STEPS) as f64 / seconds
        );
    }

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        group.bench_function(
            BenchmarkId::new(format!("{SESSIONS}_sessions"), format!("{workers}_workers")),
            |b| {
                b.iter(|| {
                    // Session state advances across iterations (sessions are
                    // long-lived by design), so rebuild per measurement to
                    // keep the workload comparable.
                    let (engine, jobs) = build_engine(&pool);
                    engine.run_parallel(&jobs, workers).unwrap()
                })
            },
        );
    }
    group.finish();
}

/// An engine with one external (suspend/resume) session over the pool,
/// either fully instrumented (the default registry) or with metrics
/// disabled (every record an early-returning no-op).
fn build_external_engine(pool: &experiments::pools::ExperimentPool, instrumented: bool) -> Engine {
    let engine = if instrumented {
        Engine::new()
    } else {
        Engine::new().with_metrics(MetricsRegistry::disabled())
    };
    engine.load_pool("cora", pool.pool.clone()).unwrap();
    engine
        .create_session(
            "s",
            "cora",
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(30),
            2017,
            LabelSource::external(pool.pool.len()),
        )
        .unwrap();
    engine
}

/// Drive `rounds` batched propose→label round trips through the protocol
/// dispatch path — the exact code the counters and latency timers live on.
/// The session is long-lived across calls; `next_ticket` carries the ticket
/// sequence forward.
fn run_propose_label_rounds(engine: &Engine, rounds: usize, batch: usize, next_ticket: &mut u64) {
    for _ in 0..rounds {
        let outcome = dispatch(
            engine,
            Request::Propose {
                session: "s".to_string(),
                count: batch,
            },
        );
        assert!(!outcome.shutdown);
        let labels: Vec<(u64, bool)> = (*next_ticket..*next_ticket + batch as u64)
            .map(|ticket| (ticket, true))
            .collect();
        *next_ticket += batch as u64;
        dispatch(
            engine,
            Request::Label {
                session: "s".to_string(),
                labels,
            },
        );
    }
}

/// Metrics overhead on the hot path: identical batched-proposal workloads
/// against an instrumented engine and one whose registry is disabled.  The
/// instrumentation budget is <2% — a few relaxed atomic adds and two clock
/// reads per request, amortised over a whole proposal batch.  Both engines
/// are built once and their sessions stay hot; the headline number
/// alternates the two workloads so clock drift and cache effects cancel.
fn bench_metrics_overhead(c: &mut Criterion) {
    let pool = direct_pool(&DatasetProfile::cora(), 0.05, true, 2017);
    let batch = 256usize;
    let rounds = 8usize;

    let instrumented = build_external_engine(&pool, true);
    let disabled = build_external_engine(&pool, false);
    let mut tickets = [0u64; 2];

    // One-off headline number for the PR description / CI log.
    let mut timed = [0f64; 2];
    for _ in 0..8 {
        for (slot, engine) in [(0usize, &instrumented), (1usize, &disabled)] {
            let start = std::time::Instant::now();
            run_propose_label_rounds(engine, rounds, batch, &mut tickets[slot]);
            timed[slot] += start.elapsed().as_secs_f64();
        }
    }
    println!(
        "metrics overhead: instrumented {:.4}s vs disabled {:.4}s -> {:+.2}%",
        timed[0],
        timed[1],
        (timed[0] / timed[1] - 1.0) * 100.0
    );

    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(10);
    for (name, engine, slot) in [
        ("instrumented", &instrumented, 0usize),
        ("disabled", &disabled, 1usize),
    ] {
        let mut next_ticket = tickets[slot];
        group.bench_function(BenchmarkId::new("batched_propose_label", name), |b| {
            b.iter(|| {
                run_propose_label_rounds(engine, rounds, batch, &mut next_ticket);
                engine.session("s").unwrap().lock().estimate()
            })
        });
        tickets[slot] = next_ticket;
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_propose_cdf_cache,
    bench_metrics_overhead
);
criterion_main!(benches);
