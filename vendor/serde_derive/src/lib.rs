//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain data types but
//! never drives an actual serializer (report rendering is hand-written text),
//! so the derives can expand to nothing: the in-tree `serde` crate provides
//! blanket implementations of its marker traits.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
