//! Offline stand-in for `crossbeam`, providing the scoped-thread API shape
//! on top of `std::thread::scope` (stable since Rust 1.63).

#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads with crossbeam's `scope(|s| ...)` / `s.spawn(|_| ...)`
    //! signatures.

    use std::any::Any;
    use std::thread::ScopedJoinHandle;

    /// A scope handle passed to [`scope`]'s closure; spawned closures receive
    /// a reference to it, mirroring crossbeam's API.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope, so nested
        /// spawns are possible as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined before
    /// this returns.
    ///
    /// Unlike crossbeam, a panicking child thread propagates its panic at the
    /// end of the scope rather than being collected into `Err` — callers in
    /// this workspace `.expect()` the result anyway, so the observable
    /// behaviour (abort the test/experiment with the panic message) matches.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
