//! The untrusted-client guard: per-connection auth and per-session rate
//! limits screened *before* a request reaches the engine.
//!
//! A [`ClientPolicy`] is shared by every connection of a server.  Each
//! connection tracks its own [`ConnState`] (has this client authenticated?);
//! rate-limit buckets are keyed by session id so one chatty client cannot
//! starve sessions it does not own.  Rejections are structured `ok:false`
//! responses with a stable `kind` tag (`unauthorized` / `throttled`) — a
//! screened-out request never reaches a sampler, never takes a session
//! lock, and never appears in the WAL, so guards are invisible to replay.
//!
//! The token bucket does integer micro-token accounting on the engine's
//! [`Clock`] abstraction: capacity `burst` requests, refilled at
//! `rate_per_second`, with [`ManualClock`](crate::metrics::ManualClock)
//! making throttle tests deterministic.

use crate::engine::Engine;
use crate::error::EngineError;
use crate::metrics::{Clock, Counter, MonotonicClock};
use crate::protocol::{dispatch, error_response, Dispatch, Request};
use parking_lot::Mutex;
use serde::json::Json;
use std::collections::HashMap;
use std::sync::Arc;

/// Micro-tokens charged per admitted request.
const REQUEST_COST: u64 = 1_000_000;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Current fill in micro-tokens.
    level: u64,
    /// Lease-clock reading at the last refill.
    last_us: u64,
}

/// Connection-screening policy: an optional shared-secret auth token and an
/// optional per-session request rate limit.
#[derive(Debug)]
pub struct ClientPolicy {
    auth_token: Option<String>,
    rate_per_second: Option<u64>,
    burst: Option<u64>,
    clock: Arc<dyn Clock>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl Default for ClientPolicy {
    fn default() -> Self {
        ClientPolicy {
            auth_token: None,
            rate_per_second: None,
            burst: None,
            clock: Arc::new(MonotonicClock::new()),
            buckets: Mutex::new(HashMap::new()),
        }
    }
}

impl ClientPolicy {
    /// A policy that admits everything (no token, no rate limit).
    pub fn new() -> Self {
        ClientPolicy::default()
    }

    /// Require every connection to present `token` via the `auth` command
    /// before any other request is served.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth_token = Some(token.into());
        self
    }

    /// Cap each session at `per_second` requests per second (sustained).
    /// Bursts up to [`ClientPolicy::with_burst`] (default: one second's
    /// worth) are admitted from a full bucket.
    pub fn with_rate_limit(mut self, per_second: u64) -> Self {
        self.rate_per_second = Some(per_second.max(1));
        self
    }

    /// Set the burst capacity (maximum requests admitted back-to-back from
    /// a full bucket).  Only meaningful with a rate limit configured.
    pub fn with_burst(mut self, burst: u64) -> Self {
        self.burst = Some(burst.max(1));
        self
    }

    /// Read bucket refills from `clock` instead of the monotonic clock
    /// (tests pass a [`ManualClock`](crate::metrics::ManualClock)).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Whether connections must authenticate before issuing requests.
    pub fn requires_auth(&self) -> bool {
        self.auth_token.is_some()
    }

    /// Whether `token` matches the configured secret (always true with no
    /// secret configured).
    pub fn accepts(&self, token: &str) -> bool {
        match &self.auth_token {
            // Constant-time-ish comparison: fold over every byte instead of
            // short-circuiting on the first mismatch.
            Some(secret) => {
                let mut diff = (secret.len() ^ token.len()) as u8;
                for (a, b) in secret.bytes().zip(token.bytes()) {
                    diff |= a ^ b;
                }
                diff == 0
            }
            None => true,
        }
    }

    /// Admit or throttle one request under `key`'s token bucket.
    ///
    /// # Errors
    /// [`EngineError::Throttled`] when the bucket is empty; the client
    /// should back off and retry.
    pub fn admit(&self, key: &str) -> Result<(), EngineError> {
        let Some(rate) = self.rate_per_second else {
            return Ok(());
        };
        let capacity = self.burst.unwrap_or(rate).saturating_mul(REQUEST_COST);
        let now = self.clock.now_micros();
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(key.to_string()).or_insert(Bucket {
            level: capacity,
            last_us: now,
        });
        let elapsed = now.saturating_sub(bucket.last_us);
        // rate tokens/second == rate micro-tokens/microsecond.
        bucket.level = bucket
            .level
            .saturating_add(elapsed.saturating_mul(rate))
            .min(capacity);
        bucket.last_us = now;
        if bucket.level >= REQUEST_COST {
            bucket.level -= REQUEST_COST;
            Ok(())
        } else {
            Err(EngineError::Throttled(format!(
                "session {key:?} exceeded {rate} requests/second; retry later"
            )))
        }
    }
}

/// Per-connection guard state.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnState {
    /// Whether this connection has presented a valid auth token.
    pub authenticated: bool,
}

/// Dispatch one request through the guard: handle `auth`, enforce the auth
/// requirement, charge the rate limiter, then hand off to
/// [`dispatch`].  With no policy this is exactly [`dispatch`].
pub fn guarded_dispatch(
    engine: &Engine,
    policy: Option<&ClientPolicy>,
    conn: &mut ConnState,
    request: Request,
) -> Dispatch {
    let Some(policy) = policy else {
        return dispatch(engine, request);
    };
    if let Request::Auth { token } = &request {
        return if policy.accepts(token) {
            conn.authenticated = true;
            let mut obj = Json::object();
            obj.set("ok", Json::Bool(true));
            obj.set("authenticated", Json::Bool(true));
            Dispatch {
                response: obj,
                shutdown: false,
            }
        } else {
            Dispatch {
                response: error_response(&EngineError::Unauthorized(
                    "invalid auth token".to_string(),
                )),
                shutdown: false,
            }
        };
    }
    if policy.requires_auth() && !conn.authenticated {
        return Dispatch {
            response: error_response(&EngineError::Unauthorized(
                "authenticate first: {\"cmd\":\"auth\",\"token\":\"...\"}".to_string(),
            )),
            shutdown: false,
        };
    }
    if let Err(error) = policy.admit(request.session_id().unwrap_or("_global")) {
        engine.metrics().incr(Counter::Throttle);
        return Dispatch {
            response: error_response(&error),
            shutdown: false,
        };
    }
    dispatch(engine, request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ManualClock;

    #[test]
    fn auth_tokens_are_checked_exactly() {
        let policy = ClientPolicy::new().with_auth_token("hunter2");
        assert!(policy.requires_auth());
        assert!(policy.accepts("hunter2"));
        assert!(!policy.accepts("hunter"));
        assert!(!policy.accepts("hunter22"));
        assert!(!policy.accepts(""));
        let open = ClientPolicy::new();
        assert!(!open.requires_auth());
        assert!(open.accepts("anything"));
    }

    #[test]
    fn token_bucket_throttles_and_refills_deterministically() {
        let clock = Arc::new(ManualClock::new());
        let policy = ClientPolicy::new()
            .with_rate_limit(2)
            .with_clock(Arc::clone(&clock) as _);
        // A fresh bucket admits a full burst (default: one second's worth).
        policy.admit("s").unwrap();
        policy.admit("s").unwrap();
        let err = policy.admit("s").unwrap_err();
        assert!(matches!(err, EngineError::Throttled(_)), "{err}");
        // Sessions are limited independently.
        policy.admit("other").unwrap();
        // Half a second refills one request's worth at 2/s.
        clock.advance(500_000);
        policy.admit("s").unwrap();
        assert!(policy.admit("s").is_err());
        // The bucket never overfills past its burst capacity.
        clock.advance(60_000_000);
        policy.admit("s").unwrap();
        policy.admit("s").unwrap();
        assert!(policy.admit("s").is_err());
    }

    #[test]
    fn guarded_dispatch_screens_before_the_engine() {
        let engine = Engine::new();
        let policy = ClientPolicy::new().with_auth_token("secret");
        let mut conn = ConnState::default();

        // Unauthenticated requests are rejected with a kind tag.
        let outcome = guarded_dispatch(
            &engine,
            Some(&policy),
            &mut conn,
            Request::parse(r#"{"cmd":"sessions"}"#).unwrap(),
        );
        let rendered = outcome.response.render();
        assert!(rendered.contains(r#""ok":false"#), "{rendered}");
        assert!(rendered.contains(r#""kind":"unauthorized""#), "{rendered}");

        // A bad token does not flip the flag.
        let outcome = guarded_dispatch(
            &engine,
            Some(&policy),
            &mut conn,
            Request::parse(r#"{"cmd":"auth","token":"wrong"}"#).unwrap(),
        );
        assert!(outcome.response.render().contains(r#""ok":false"#));
        assert!(!conn.authenticated);

        // The right token opens the connection.
        let outcome = guarded_dispatch(
            &engine,
            Some(&policy),
            &mut conn,
            Request::parse(r#"{"cmd":"auth","token":"secret"}"#).unwrap(),
        );
        assert!(outcome
            .response
            .render()
            .contains(r#""authenticated":true"#));
        assert!(conn.authenticated);
        let outcome = guarded_dispatch(
            &engine,
            Some(&policy),
            &mut conn,
            Request::parse(r#"{"cmd":"sessions"}"#).unwrap(),
        );
        assert!(outcome.response.render().contains(r#""ok":true"#));
    }

    #[test]
    fn throttled_requests_never_reach_the_session() {
        let clock = Arc::new(ManualClock::new());
        let policy = ClientPolicy::new()
            .with_rate_limit(1)
            .with_clock(Arc::clone(&clock) as _);
        let engine = Engine::new();
        let mut conn = ConnState::default();
        let load = Request::parse(
            r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.7,0.3,0.1],"predictions":[true,true,false,false]}"#,
        )
        .unwrap();
        // The pool-level verb spends the "_global" bucket's burst...
        assert!(guarded_dispatch(&engine, Some(&policy), &mut conn, load)
            .response
            .render()
            .contains(r#""ok":true"#));
        // ...so session-keyed verbs still get their own budget.
        let create = Request::parse(
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"config":{"strata_count":2}}"#,
        )
        .unwrap();
        assert!(guarded_dispatch(&engine, Some(&policy), &mut conn, create)
            .response
            .render()
            .contains(r#""ok":true"#));
        let propose = || Request::parse(r#"{"cmd":"propose","session":"s"}"#).unwrap();
        // create_session spent session "s"'s burst, so the propose throttles.
        let rendered = guarded_dispatch(&engine, Some(&policy), &mut conn, propose())
            .response
            .render();
        assert!(rendered.contains(r#""kind":"throttled""#), "{rendered}");
        assert_eq!(engine.metrics().counter(Counter::Throttle), 1);
        // The throttled propose never touched the session.
        let handle = engine.session("s").unwrap();
        assert_eq!(handle.lock().pending_count(), 0);
        // Waiting out the limit admits the next request.
        clock.advance(1_000_000);
        let rendered = guarded_dispatch(&engine, Some(&policy), &mut conn, propose())
            .response
            .render();
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
        assert_eq!(handle.lock().pending_count(), 1);
    }
}
