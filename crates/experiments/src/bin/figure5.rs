//! Regenerate Figure 5 (error after a fixed budget for five classifiers).
//!
//! Usage: `cargo run --release -p experiments --bin figure5 -- --scale=0.1 --budget=500 --repeats=50`

use experiments::figure5::{run, Figure5Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = Figure5Config {
        scale: experiments::parse_arg(&args, "scale", 0.1f64),
        budget: experiments::parse_arg(&args, "budget", 500usize),
        repeats: experiments::parse_arg(&args, "repeats", 50usize),
        seed: experiments::parse_arg(&args, "seed", 2017u64),
        threads: experiments::parse_arg(&args, "threads", 4usize),
        classifiers: Vec::new(),
    };
    println!("{}", run(&config).render());
}
