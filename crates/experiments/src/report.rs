//! Plain-text table rendering for experiment reports.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (shorter rows are padded with empty cells).
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render the table with column alignment and a header separator.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with the given number of decimal places, rendering NaN as
/// `"-"` (used for undefined estimates).
pub fn fmt_float(value: f64, decimals: usize) -> String {
    if value.is_nan() {
        "-".to_string()
    } else {
        format!("{value:.decimals$}")
    }
}

/// Format a large integer with thousands separators for readability.
pub fn fmt_count(value: u64) -> String {
    let digits: Vec<char> = value.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(vec!["Dataset", "Size", "F"]);
        table.add_row(vec!["Abt-Buy", "53,753", "0.595"]);
        table.add_row(vec!["cora", "328,291", "0.839"]);
        let rendered = table.render();
        assert!(rendered.contains("Dataset"));
        assert!(rendered.contains("Abt-Buy"));
        assert!(rendered.lines().count() >= 4);
        assert_eq!(table.row_count(), 2);
        // Every data line should be at least as wide as its widest cell.
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = TextTable::new(vec!["a", "b", "c"]);
        table.add_row(vec!["only one"]);
        let rendered = table.render();
        assert!(rendered.contains("only one"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_float(0.123456, 3), "0.123");
        assert_eq!(fmt_float(f64::NAN, 3), "-");
        assert_eq!(fmt_float(1.0, 1), "1.0");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(4_397_038), "4,397,038");
    }
}
