//! Offline stand-in for `serde`.
//!
//! Provides `Serialize`/`Deserialize` as blanket-implemented marker traits
//! plus the no-op derive macros from the in-tree `serde_derive`. This keeps
//! `#[derive(Serialize, Deserialize)]` annotations compiling (documenting
//! which types are serialization-ready) without pulling the real crate into
//! an offline build. Swap in real serde by pointing the workspace dependency
//! back at crates.io.
//!
//! Because the checkpoint subsystem needs *actual* serialization, the stub
//! also ships a concrete JSON layer in [`json`]: a value model, parser,
//! writer and the [`json::ToJson`] / [`json::FromJson`] conversion traits
//! that state types implement by hand.  The derive markers and the JSON
//! layer are independent; types annotated with the markers document intent,
//! types implementing the JSON traits are actually persistable offline.

#![warn(missing_docs)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types; blanket-implemented for everything.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types; blanket-implemented for everything.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
