//! Proportional stratified sampling (Druck & McCallum style) — the
//! "Stratified" baseline of Section 6.2.

use super::state::{SamplerMethod, SamplerState, StratifiedState};
use super::{CategoricalCdf, InteractiveSampler, Proposal, Sampler, SamplerDiagnostics};
use crate::error::Result;
use crate::estimator::Estimate;
use crate::pool::ScoredPool;
use crate::strata::{CsfStratifier, Strata, Stratifier};
use rand::Rng;

/// Per-stratum running sums used by the stratified estimator.
#[derive(Debug, Clone, Default)]
struct StratumTally {
    /// Number of labelled draws from this stratum.
    samples: f64,
    /// Sum of `ℓ·ℓ̂` over the draws.
    true_positives: f64,
    /// Sum of `ℓ` over the draws.
    actual_positives: f64,
}

/// Proportional stratified sampler.
///
/// Strata are drawn with probability equal to their weight `ω_k = |P_k|/N`
/// (so the marginal item distribution is uniform, i.e. the sampling is *not*
/// biased), and the F-measure is estimated with a stratified estimator that
/// transfers per-stratum rates to the whole stratum:
///
/// ```text
/// TP ≈ Σ_k |P_k| · mean_k(ℓ ℓ̂)      TP + FN ≈ Σ_k |P_k| · mean_k(ℓ)
/// TP + FP  = Σ_k |P_k| · λ_k         (known exactly, no labels needed)
/// ```
///
/// Only strata with at least one labelled draw contribute to the estimated
/// sums; this matches the proportional (non-adaptive, non-biased) method the
/// paper attributes to Druck & McCallum for F-measure estimation.
#[derive(Debug, Clone)]
pub struct StratifiedSampler {
    strata: Strata,
    alpha: f64,
    tallies: Vec<StratumTally>,
    iterations: usize,
    /// Per-stratum item counts as f64, cached for the estimator.
    stratum_sizes: Vec<f64>,
    /// Cumulative stratum weights, precomputed for O(log K) draws (the
    /// proportional proposal never changes).
    weight_cdf: CategoricalCdf,
}

impl StratifiedSampler {
    /// Create a proportional stratified sampler with `strata_count` CSF strata
    /// (the paper uses `K = 30`).
    pub fn new(pool: &ScoredPool, alpha: f64, strata_count: usize) -> Result<Self> {
        let strata = CsfStratifier::new(strata_count).stratify(pool)?;
        Ok(Self::with_strata(strata, alpha))
    }

    /// Create the sampler from a pre-computed stratification.
    pub fn with_strata(strata: Strata, alpha: f64) -> Self {
        let k = strata.len();
        let stratum_sizes = (0..k).map(|i| strata.size(i) as f64).collect();
        let weight_cdf = CategoricalCdf::new(strata.weights());
        StratifiedSampler {
            strata,
            alpha,
            tallies: vec![StratumTally::default(); k],
            iterations: 0,
            stratum_sizes,
            weight_cdf,
        }
    }

    /// The stratification in use.
    pub fn strata(&self) -> &Strata {
        &self.strata
    }

    /// Assemble a sampler from restored tallies; shared by
    /// [`StratifiedState::rebuild`] (which validates the rows first).
    pub(super) fn from_parts(
        strata: Strata,
        alpha: f64,
        samples: Vec<f64>,
        true_positives: Vec<f64>,
        actual_positives: Vec<f64>,
        iterations: usize,
    ) -> Result<Self> {
        let mut sampler = StratifiedSampler::with_strata(strata, alpha);
        for (k, tally) in sampler.tallies.iter_mut().enumerate() {
            tally.samples = samples[k];
            tally.true_positives = true_positives[k];
            tally.actual_positives = actual_positives[k];
        }
        sampler.iterations = iterations;
        Ok(sampler)
    }

    /// The transferred-mass sums the stratified estimator is built from:
    /// `(Σ_k |P_k|·tp_k/n_k, Σ_k |P_k|·λ_k, Σ_k |P_k|·act_k/n_k, any
    /// observed stratum)`.  All three sums are in *absolute item counts*
    /// (stratum sizes, not weights), so sums from disjoint sub-pools add
    /// exactly — this is what lets a sharded run merge per-shard stratified
    /// estimates without bias (see `ShardedSampler`).
    pub(crate) fn mass_sums(&self) -> (f64, f64, f64, bool) {
        let mut est_tp = 0.0;
        let mut est_actual = 0.0;
        let mut est_predicted = 0.0;
        let mut any_observed_stratum = false;
        for (k, tally) in self.tallies.iter().enumerate() {
            let size = self.stratum_sizes[k];
            // Predicted positives are known exactly for every stratum.
            est_predicted += size * self.strata.mean_predictions()[k];
            if tally.samples > 0.0 {
                any_observed_stratum = true;
                est_tp += size * tally.true_positives / tally.samples;
                est_actual += size * tally.actual_positives / tally.samples;
            }
        }
        (est_tp, est_predicted, est_actual, any_observed_stratum)
    }

    /// Labels folded in so far — read by the sharded merge alongside
    /// [`StratifiedSampler::mass_sums`].
    pub(crate) fn iterations(&self) -> usize {
        self.iterations
    }

    fn stratified_estimate(&self) -> Estimate {
        let (est_tp, est_predicted, est_actual, any_observed_stratum) = self.mass_sums();
        finish_stratified_estimate(
            self.alpha,
            est_tp,
            est_predicted,
            est_actual,
            any_observed_stratum,
            self.iterations,
        )
    }
}

/// Turn transferred-mass sums into an [`Estimate`] — the single place the
/// stratified estimator's final arithmetic lives, shared by
/// [`StratifiedSampler`] and the sharded merge so a one-shard sharded run is
/// bit-identical to the unsharded sampler.
pub(crate) fn finish_stratified_estimate(
    alpha: f64,
    est_tp: f64,
    est_predicted: f64,
    est_actual: f64,
    any_observed_stratum: bool,
    iterations: usize,
) -> Estimate {
    let denom = alpha * est_predicted + (1.0 - alpha) * est_actual;
    let f_measure = if any_observed_stratum && denom > 0.0 {
        est_tp / denom
    } else {
        f64::NAN
    };
    let precision = if any_observed_stratum && est_predicted > 0.0 {
        est_tp / est_predicted
    } else {
        f64::NAN
    };
    let recall = if any_observed_stratum && est_actual > 0.0 {
        est_tp / est_actual
    } else {
        f64::NAN
    };
    Estimate {
        f_measure,
        precision,
        recall,
        alpha,
        iterations,
    }
}

impl InteractiveSampler for StratifiedSampler {
    /// Draw a stratum proportionally to its weight, then an item uniformly
    /// within it; the marginal item distribution is uniform, so the
    /// importance weight is 1.
    fn propose<R: Rng + ?Sized>(&mut self, pool: &ScoredPool, rng: &mut R) -> Proposal {
        let stratum = self.weight_cdf.sample(rng);
        let members = self.strata.members(stratum);
        let item = members[rng.gen_range(0..members.len())];
        Proposal {
            item,
            stratum,
            prediction: pool.prediction(item),
            weight: 1.0,
        }
    }

    /// Fold the label into the proposal's stratum tally.
    fn apply_label(&mut self, proposal: &Proposal, label: bool) {
        let tally = &mut self.tallies[proposal.stratum];
        tally.samples += 1.0;
        tally.true_positives += f64::from(u8::from(label && proposal.prediction));
        tally.actual_positives += f64::from(u8::from(label));
        self.iterations += 1;
    }

    fn estimate(&self) -> Estimate {
        self.stratified_estimate()
    }

    fn name(&self) -> &'static str {
        "Stratified"
    }

    fn method(&self) -> SamplerMethod {
        SamplerMethod::Stratified
    }

    fn strata_len(&self) -> usize {
        self.strata.len()
    }

    /// Every draw carries weight 1, so the effective sample size equals the
    /// iteration count exactly and the normalized weight variance is zero;
    /// the proportional proposal never changes, so no CDF rebuilds occur.
    fn diagnostics(&self) -> SamplerDiagnostics {
        let (ess, variance) = if self.iterations > 0 {
            (Some(self.iterations as f64), Some(0.0))
        } else {
            (None, None)
        };
        SamplerDiagnostics {
            method: SamplerMethod::Stratified,
            iterations: self.iterations,
            effective_sample_size: ess,
            normalized_weight_variance: variance,
            stratum_labels: self.tallies.iter().map(|t| t.samples).collect(),
            instrumental: self.strata.weights().to_vec(),
            cdf_rebuilds: 0,
        }
    }

    fn state(&self) -> SamplerState {
        let mut samples = Vec::with_capacity(self.tallies.len());
        let mut true_positives = Vec::with_capacity(self.tallies.len());
        let mut actual_positives = Vec::with_capacity(self.tallies.len());
        for tally in &self.tallies {
            samples.push(tally.samples);
            true_positives.push(tally.true_positives);
            actual_positives.push(tally.actual_positives);
        }
        SamplerState::Stratified(StratifiedState {
            alpha: self.alpha,
            allocations: self.strata.allocations().to_vec(),
            samples,
            true_positives,
            actual_positives,
            iterations: self.iterations,
            tracker: None,
        })
    }

    fn from_state(pool: &ScoredPool, state: SamplerState) -> Result<Self> {
        match state {
            SamplerState::Stratified(state) => state.rebuild(pool),
            other => Err(other.method_mismatch(SamplerMethod::Stratified)),
        }
    }
}

impl Sampler for StratifiedSampler {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::exhaustive_measures;
    use crate::oracle::GroundTruthOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn imbalanced_pool(n: usize, match_rate: f64, seed: u64) -> (ScoredPool, Vec<bool>) {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scores = Vec::with_capacity(n);
        let mut predictions = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let is_match = rng.gen_bool(match_rate);
            // Matches score high with some noise; non-matches score low.
            let score: f64 = if is_match {
                (0.75 + 0.25 * rng.gen::<f64>()).min(1.0)
            } else {
                0.6 * rng.gen::<f64>()
            };
            scores.push(score);
            predictions.push(score > 0.65);
            truth.push(is_match);
        }
        (ScoredPool::new(scores, predictions).unwrap(), truth)
    }

    #[test]
    fn converges_to_true_f_measure() {
        let (pool, truth) = imbalanced_pool(4000, 0.05, 11);
        let target = exhaustive_measures(pool.predictions(), &truth, 0.5).f_measure;
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(12);
        let mut sampler = StratifiedSampler::new(&pool, 0.5, 30).unwrap();
        let estimate = sampler.run(&pool, &mut oracle, &mut rng, 6000).unwrap();
        assert!(
            (estimate.f_measure - target).abs() < 0.08,
            "estimate {} vs target {target}",
            estimate.f_measure
        );
    }

    #[test]
    fn marginal_item_distribution_is_uniform() {
        // With proportional stratum weights the chance of drawing any single
        // item is 1/N; check the aggregate draw counts are roughly flat across
        // strata relative to their sizes.
        let (pool, truth) = imbalanced_pool(1000, 0.1, 13);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(14);
        let mut sampler = StratifiedSampler::new(&pool, 0.5, 10).unwrap();
        let mut draws_per_stratum = vec![0usize; sampler.strata().len()];
        for _ in 0..20_000 {
            let outcome = sampler.step(&pool, &mut oracle, &mut rng).unwrap();
            let k = sampler.strata().stratum_of(outcome.item).unwrap();
            draws_per_stratum[k] += 1;
        }
        for (k, &draws) in draws_per_stratum.iter().enumerate() {
            let expected = 20_000.0 * sampler.strata().weights()[k];
            assert!(
                (draws as f64 - expected).abs() < 4.0 * expected.sqrt() + 20.0,
                "stratum {k}: {draws} draws vs expected {expected}"
            );
        }
    }

    #[test]
    fn predicted_positive_total_is_exact_from_start() {
        let (pool, truth) = imbalanced_pool(500, 0.1, 15);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(16);
        let mut sampler = StratifiedSampler::new(&pool, 1.0, 10).unwrap();
        // α = 1 → precision. After enough samples precision should be in [0, 1].
        let estimate = sampler.run(&pool, &mut oracle, &mut rng, 500).unwrap();
        assert!(estimate.precision >= 0.0 && estimate.precision <= 1.0 + 1e-9);
        assert_eq!(sampler.name(), "Stratified");
    }

    #[test]
    fn with_strata_constructor_matches_new() {
        let (pool, _) = imbalanced_pool(300, 0.1, 17);
        let strata = CsfStratifier::new(8).stratify(&pool).unwrap();
        let a = StratifiedSampler::with_strata(strata.clone(), 0.5);
        let b = StratifiedSampler::new(&pool, 0.5, 8).unwrap();
        assert_eq!(a.strata().len(), b.strata().len());
    }
}
