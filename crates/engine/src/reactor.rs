//! Event-driven TCP serving: a single-threaded epoll reactor.
//!
//! The thread-per-connection loops in [`crate::server`] are simple and
//! correct, but each idle client costs a parked thread and its stack, which
//! caps realistic fan-in well below what one engine can serve.  This module
//! drives every connection from one thread over the vendored [`epoll`]
//! readiness API: each connection is a small state machine — read buffer →
//! line framing → dispatch against the shared [`Engine`] → write buffer —
//! and the reactor multiplexes all of them with level-triggered epoll.
//!
//! Wire semantics are byte-identical to the blocking path: the same
//! [`handle_line`] dispatches requests, blank lines are skipped, a final
//! un-terminated line at EOF is still answered, and overlong lines get one
//! structured `kind:"line_too_long"` error while the rest of the line is
//! discarded without ever being buffered whole.
//!
//! Everything is bounded ([`ReactorConfig`]):
//!
//! * **connections** — past `max_connections` the listener's readiness
//!   interest is dropped, so new clients queue in the accept backlog
//!   instead of growing the registration slab;
//! * **read side** — a partial line past `max_line_bytes` flips the
//!   connection into discard mode after one structured error;
//! * **write side** — a client that stops reading its responses
//!   accumulates at most `max_write_buffer` bytes; past that watermark the
//!   reactor stops *reading* from it (natural backpressure: the client
//!   cannot pipeline new work while refusing to drain results).
//!
//! Accept errors (EMFILE/ENFILE spin hot under fd exhaustion) pause the
//! listener on the shared [`AcceptBackoff`] doubling ladder, surfaced via
//! [`Counter::AcceptRetry`]; each loop iteration's processing time lands in
//! the `event_loop` latency histogram.

use crate::engine::Engine;
use crate::guard::{ClientPolicy, ConnState};
use crate::log::EventLog;
use crate::metrics::Counter;
use crate::server::{
    handle_line, line_too_long_response, log_message, AcceptBackoff, MAX_LINE_BYTES,
};
use epoll::{Epoll, Events, Interest, Slab, Token};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

/// Resource bounds for the evented server.  The defaults suit the
/// production binary; tests shrink them to exercise the limits cheaply.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Maximum simultaneously open connections; past this the listener is
    /// paused and new clients wait in the kernel accept backlog.
    pub max_connections: usize,
    /// Per-line byte cap (content, excluding the newline).  Longer lines
    /// are answered with `kind:"line_too_long"` and discarded.
    pub max_line_bytes: usize,
    /// Per-connection pending-response cap: once this many un-flushed
    /// bytes accumulate, the reactor stops reading from the connection
    /// until the client drains its responses.
    pub max_write_buffer: usize,
    /// Size of the shared read scratch buffer (one `read` syscall's worth).
    pub read_chunk: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 16_384,
            max_line_bytes: MAX_LINE_BYTES,
            max_write_buffer: 8 * 1024 * 1024,
            read_chunk: 64 * 1024,
        }
    }
}

/// The listener's registration token; connection tokens are slab keys,
/// which stay far below this sentinel.
const LISTENER: Token = Token(usize::MAX);

/// How long the graceful-shutdown flush will block per connection before
/// abandoning its remaining response bytes.
const SHUTDOWN_FLUSH_TIMEOUT: Duration = Duration::from_secs(1);

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes of the current (incomplete) request line.
    read_buf: Vec<u8>,
    /// Rendered responses not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    written: usize,
    /// Inside an overlong line: drop bytes until the next newline.
    discarding: bool,
    /// Per-connection auth state for the [`ClientPolicy`].
    state: ConnState,
    /// The interest currently registered with epoll.
    interest: Interest,
    /// The peer closed its write half; serve what is buffered, then close.
    peer_eof: bool,
    /// A `shutdown` command was dispatched on this connection.
    shutdown: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            discarding: false,
            state: ConnState::default(),
            interest: Interest::NONE,
            peer_eof: false,
            shutdown: false,
        }
    }

    /// Un-flushed response bytes.
    fn write_pending(&self) -> usize {
        self.write_buf.len() - self.written
    }

    fn queue_response(&mut self, response: &serde::json::Json) {
        self.write_buf
            .extend_from_slice(response.render().as_bytes());
        self.write_buf.push(b'\n');
    }

    /// Feed freshly read bytes through the line framer, dispatching every
    /// complete line.  Returns `true` when a dispatched line requested
    /// shutdown (remaining input is ignored, as in the blocking path).
    fn ingest(
        &mut self,
        mut bytes: &[u8],
        engine: &Engine,
        log: Option<&EventLog>,
        policy: Option<&ClientPolicy>,
        max_line: usize,
    ) -> bool {
        while let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
            let (segment, rest) = bytes.split_at(pos + 1);
            bytes = rest;
            if self.discarding {
                // The newline ends the overlong line already answered.
                self.discarding = false;
                continue;
            }
            if self.read_buf.len() + segment.len() - 1 > max_line {
                let response = line_too_long_response(engine, max_line);
                self.queue_response(&response);
                self.read_buf.clear();
                continue;
            }
            // Assemble the full line (common case: it arrived in one read
            // and `read_buf` is empty — dispatch straight from the slice).
            let mut line_buf = Vec::new();
            let line: &[u8] = if self.read_buf.is_empty() {
                segment
            } else {
                self.read_buf.extend_from_slice(segment);
                line_buf = std::mem::take(&mut self.read_buf);
                &line_buf
            };
            let outcome = handle_line(engine, line, log, policy, &mut self.state);
            // Hand the allocation back so a steady stream of split lines
            // does not reallocate per request.
            line_buf.clear();
            if self.read_buf.capacity() < line_buf.capacity() {
                self.read_buf = line_buf;
            }
            if let Some(outcome) = outcome {
                self.queue_response(&outcome.response);
                if outcome.shutdown {
                    self.shutdown = true;
                    return true;
                }
            }
        }
        if !bytes.is_empty() && !self.discarding {
            if self.read_buf.len() + bytes.len() > max_line {
                let response = line_too_long_response(engine, max_line);
                self.queue_response(&response);
                self.read_buf.clear();
                self.discarding = true;
            } else {
                self.read_buf.extend_from_slice(bytes);
            }
        }
        false
    }

    /// The blocking path answers a final un-terminated line at EOF; mirror
    /// that exactly, then nothing further can arrive.
    fn finish_eof(
        &mut self,
        engine: &Engine,
        log: Option<&EventLog>,
        policy: Option<&ClientPolicy>,
    ) {
        if self.discarding || self.read_buf.is_empty() {
            self.discarding = false;
            self.read_buf.clear();
            return;
        }
        let line = std::mem::take(&mut self.read_buf);
        if let Some(outcome) = handle_line(engine, &line, log, policy, &mut self.state) {
            self.queue_response(&outcome.response);
            if outcome.shutdown {
                self.shutdown = true;
            }
        }
    }

    /// Write as much of the pending buffer as the socket will take.
    /// `Ok(true)` means fully drained.
    fn flush(&mut self) -> io::Result<bool> {
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.write_buf.clear();
        self.written = 0;
        Ok(true)
    }

    /// The interest this connection should be registered with right now:
    /// readable unless EOF'd or over the write watermark (backpressure),
    /// writable while responses are pending.
    fn desired_interest(&self, max_write_buffer: usize) -> Interest {
        let mut want = Interest::NONE;
        if !self.peer_eof && self.write_pending() < max_write_buffer {
            want = want.with(Interest::READABLE);
        }
        if self.write_pending() > 0 {
            want = want.with(Interest::WRITABLE);
        }
        want
    }
}

/// Serve the line protocol over TCP with the epoll reactor (no guard, no
/// log).  Returns when a client issues `shutdown`.
///
/// # Errors
/// Socket bind failures and fatal reactor errors (epoll setup, listener
/// registration).  Per-connection I/O errors only close that connection.
pub fn serve_tcp_evented(engine: &Engine, addr: &str) -> io::Result<()> {
    serve_listener_evented(engine, TcpListener::bind(addr)?, None, None)
}

/// [`serve_tcp_evented`] with an [`EventLog`] and optional [`ClientPolicy`]
/// — the evented twin of [`crate::server::serve_tcp_guarded`].
///
/// # Errors
/// Socket bind failures and fatal reactor errors.
pub fn serve_tcp_evented_guarded(
    engine: &Engine,
    addr: &str,
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
) -> io::Result<()> {
    serve_listener_evented(engine, TcpListener::bind(addr)?, log, policy)
}

/// [`serve_tcp_evented_guarded`] over an already-bound listener with the
/// default [`ReactorConfig`].
///
/// # Errors
/// Fatal reactor errors (epoll setup, listener registration).
pub fn serve_listener_evented(
    engine: &Engine,
    listener: TcpListener,
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
) -> io::Result<()> {
    serve_listener_evented_with_config(engine, listener, log, policy, &ReactorConfig::default())
}

/// The full-control entry point: every bound in [`ReactorConfig`] is
/// caller-chosen.  One thread, level-triggered epoll, each connection a
/// read-frame-dispatch-write state machine against the shared engine.
///
/// # Errors
/// Fatal reactor errors (epoll setup, listener registration).  Accept
/// errors back off and retry; per-connection errors close only that
/// connection.
pub fn serve_listener_evented_with_config(
    engine: &Engine,
    listener: TcpListener,
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
    config: &ReactorConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    epoll.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
    let mut listener_interest = Interest::READABLE;

    let mut conns: Slab<Conn> = Slab::new();
    let mut events = Events::with_capacity(1024);
    let mut scratch = vec![0u8; config.read_chunk.max(1)];
    let mut backoff = AcceptBackoff::new();
    let mut accept_resume_at: Option<Instant> = None;
    let mut shutdown = false;

    while !shutdown {
        let timeout = accept_resume_at.map(|at| at.saturating_duration_since(Instant::now()));
        epoll.wait(&mut events, timeout)?;
        let timer = engine.metrics().timer();

        if let Some(at) = accept_resume_at {
            if Instant::now() >= at {
                accept_resume_at = None;
            }
        }

        for event in events.iter() {
            if event.token() == LISTENER {
                accept_burst(
                    engine,
                    &listener,
                    &epoll,
                    &mut conns,
                    &mut backoff,
                    &mut accept_resume_at,
                    log,
                    config,
                );
            } else if let Some(conn) = conns.get_mut(event.token().0) {
                let key = event.token().0;
                let closed = drive_conn(
                    engine,
                    conn,
                    event.is_readable(),
                    event.is_error(),
                    &mut scratch,
                    log,
                    policy,
                    config,
                );
                shutdown |= conn.shutdown;
                if closed && !shutdown {
                    let _ = epoll.deregister(conn.stream.as_raw_fd());
                    conns.remove(key);
                } else if !shutdown {
                    let want = conn.desired_interest(config.max_write_buffer);
                    if want != conn.interest {
                        epoll.reregister(conn.stream.as_raw_fd(), Token(key), want)?;
                        conn.interest = want;
                    }
                }
            }
            if shutdown {
                break;
            }
        }

        // Reconcile the listener's interest: paused while backing off from
        // an accept error or at the connection cap, resumed otherwise.
        let want_listener = if accept_resume_at.is_none() && conns.len() < config.max_connections {
            Interest::READABLE
        } else {
            Interest::NONE
        };
        if !shutdown && want_listener != listener_interest {
            epoll.reregister(listener.as_raw_fd(), LISTENER, want_listener)?;
            listener_interest = want_listener;
        }

        engine.metrics().record("event_loop", timer);
    }

    // Graceful shutdown: flush every connection's pending responses with a
    // bounded blocking write (the shutdown acknowledgement itself travels
    // this path), then drop everything.
    log_message(log, "shutdown requested; closing connections");
    for (_, conn) in conns.drain() {
        if conn.write_pending() > 0 {
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn.stream.set_write_timeout(Some(SHUTDOWN_FLUSH_TIMEOUT));
            let mut stream = conn.stream;
            let _ = stream.write_all(&conn.write_buf[conn.written..]);
        }
    }
    Ok(())
}

/// Accept until the backlog is empty, the connection cap is hit, or an
/// accept error starts a backoff window.
#[allow(clippy::too_many_arguments)]
fn accept_burst(
    engine: &Engine,
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut Slab<Conn>,
    backoff: &mut AcceptBackoff,
    accept_resume_at: &mut Option<Instant>,
    log: Option<&EventLog>,
    config: &ReactorConfig,
) {
    while conns.len() < config.max_connections && accept_resume_at.is_none() {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff.reset();
                engine.metrics().incr(Counter::Connection);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let key = conns.insert(Conn::new(stream));
                let conn = conns.get_mut(key).expect("just inserted");
                if epoll
                    .register(conn.stream.as_raw_fd(), Token(key), Interest::READABLE)
                    .is_err()
                {
                    conns.remove(key);
                    continue;
                }
                conn.interest = Interest::READABLE;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(error) => {
                // Same rationale as the blocking loop: EMFILE/ENFILE fail
                // again immediately, so pause the listener for a bounded,
                // doubling delay instead of spinning hot.
                engine.metrics().incr(Counter::AcceptRetry);
                let delay = backoff.next_delay();
                log_message(
                    log,
                    &format!(
                        "accept error (retrying in {}ms): {error}",
                        delay.as_millis()
                    ),
                );
                *accept_resume_at = Some(Instant::now() + delay);
            }
        }
    }
}

/// Process one readiness event for a connection: read and dispatch while
/// the socket and the write watermark allow, then opportunistically flush.
/// Returns `true` when the connection should be closed.
#[allow(clippy::too_many_arguments)]
fn drive_conn(
    engine: &Engine,
    conn: &mut Conn,
    readable: bool,
    errored: bool,
    scratch: &mut [u8],
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
    config: &ReactorConfig,
) -> bool {
    if errored {
        return true;
    }
    if readable && !conn.peer_eof {
        loop {
            if conn.write_pending() >= config.max_write_buffer {
                // Backpressure: stop reading until the client drains its
                // responses; interest reconciliation drops READABLE.
                break;
            }
            match conn.stream.read(scratch) {
                Ok(0) => {
                    conn.peer_eof = true;
                    conn.finish_eof(engine, log, policy);
                    break;
                }
                Ok(n) => {
                    if conn.ingest(&scratch[..n], engine, log, policy, config.max_line_bytes) {
                        // Shutdown dispatched: stop reading; the reactor
                        // flushes and exits.
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }
    // Opportunistic flush: the socket is almost always writable, so the
    // common case completes without waiting for a writable event.
    if conn.write_pending() > 0 || conn.peer_eof {
        match conn.flush() {
            Ok(drained) => drained && conn.peer_eof,
            Err(_) => true,
        }
    } else {
        false
    }
}
