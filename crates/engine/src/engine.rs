//! The multi-session engine: shared pools, named sessions, and a scoped
//! worker pool that drives many sessions concurrently.
//!
//! Sessions are fully independent (own sampler, own RNG, own oracle), so
//! driving them from `W` worker threads produces estimates bit-identical to
//! driving them one after another — concurrency changes wall-clock time, not
//! results.  That property is what the `engine_parity` tests and experiment
//! driver assert.

use crate::checkpoint::SessionCheckpoint;
use crate::error::{EngineError, EngineResult};
use crate::session::{LabelSource, Session};
use oasis::{Estimate, OasisConfig, SamplerMethod, ScoredPool};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A unit of work for [`Engine::run_parallel`]: drive one session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionJob {
    /// Run a fixed number of steps.
    Steps {
        /// Session id.
        session: String,
        /// Number of propose→query→apply iterations.
        steps: usize,
    },
    /// Run until the label budget is consumed (or `max_steps` elapse).
    Budget {
        /// Session id.
        session: String,
        /// Distinct-label budget.
        budget: usize,
        /// Iteration cap.
        max_steps: usize,
    },
}

impl SessionJob {
    fn session_id(&self) -> &str {
        match self {
            SessionJob::Steps { session, .. } | SessionJob::Budget { session, .. } => session,
        }
    }
}

/// The engine: a registry of shared pools and concurrent sessions.
///
/// All methods take `&self`; interior locking makes the engine shareable
/// across server connections and worker threads.
#[derive(Debug, Default)]
pub struct Engine {
    pools: RwLock<HashMap<String, Arc<ScoredPool>>>,
    sessions: RwLock<HashMap<String, Arc<Mutex<Session>>>>,
}

impl Engine {
    /// An empty engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Register a pool under `id`, sharing it across future sessions.
    ///
    /// # Errors
    /// [`EngineError::DuplicateId`] if the id is taken.
    pub fn load_pool(&self, id: impl Into<String>, pool: ScoredPool) -> EngineResult<()> {
        let id = id.into();
        let mut pools = self.pools.write();
        if pools.contains_key(&id) {
            return Err(EngineError::DuplicateId(id));
        }
        pools.insert(id, Arc::new(pool));
        Ok(())
    }

    /// Look up a shared pool.
    ///
    /// # Errors
    /// [`EngineError::UnknownPool`] if it was never loaded.
    pub fn pool(&self, id: &str) -> EngineResult<Arc<ScoredPool>> {
        self.pools
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| EngineError::UnknownPool(id.to_string()))
    }

    /// Ids of all loaded pools, sorted.
    pub fn pool_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.pools.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Create a session over a loaded pool, running the given sampling
    /// method (see [`oasis::AnySampler::build`] for how the shared config
    /// maps onto each method).
    ///
    /// # Errors
    /// Unknown pool, duplicate session id, or sampler construction failure.
    pub fn create_session(
        &self,
        session_id: impl Into<String>,
        pool_id: &str,
        method: SamplerMethod,
        config: OasisConfig,
        seed: u64,
        source: LabelSource,
    ) -> EngineResult<()> {
        let session_id = session_id.into();
        let pool = self.pool(pool_id)?;
        // Fail fast on an obvious duplicate, but do the expensive sampler
        // construction (stratification is O(N log N)) outside any lock so
        // concurrent traffic on other sessions is not stalled.
        if self.sessions.read().contains_key(&session_id) {
            return Err(EngineError::DuplicateId(session_id));
        }
        let session = Session::new(
            session_id.clone(),
            pool_id,
            pool,
            method,
            config,
            seed,
            source,
        )?;
        let mut sessions = self.sessions.write();
        if sessions.contains_key(&session_id) {
            return Err(EngineError::DuplicateId(session_id));
        }
        sessions.insert(session_id, Arc::new(Mutex::new(session)));
        Ok(())
    }

    /// Restore a session from a checkpoint; the checkpointed pool id must be
    /// loaded and match the fingerprint.  The session is registered under
    /// `session_id`, which may differ from the checkpointed id (restore-as).
    ///
    /// # Errors
    /// Unknown pool, duplicate session id, or checkpoint mismatch.
    pub fn restore_session(
        &self,
        session_id: impl Into<String>,
        checkpoint: SessionCheckpoint,
    ) -> EngineResult<()> {
        let session_id = session_id.into();
        let pool = self.pool(&checkpoint.pool_id)?;
        if self.sessions.read().contains_key(&session_id) {
            return Err(EngineError::DuplicateId(session_id));
        }
        // Fingerprint verification and sampler reconstruction are O(N);
        // keep them outside the write lock (same pattern as create_session).
        let mut checkpoint = checkpoint;
        checkpoint.session_id = session_id.clone();
        let session = Session::restore(checkpoint, pool)?;
        let mut sessions = self.sessions.write();
        if sessions.contains_key(&session_id) {
            return Err(EngineError::DuplicateId(session_id));
        }
        sessions.insert(session_id, Arc::new(Mutex::new(session)));
        Ok(())
    }

    /// Fetch a session handle.
    ///
    /// # Errors
    /// [`EngineError::UnknownSession`] if it does not exist.
    pub fn session(&self, id: &str) -> EngineResult<Arc<Mutex<Session>>> {
        self.sessions
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| EngineError::UnknownSession(id.to_string()))
    }

    /// Ids of all live sessions, sorted.
    pub fn session_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.sessions.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Remove a session (its checkpoint, if any, remains valid).
    ///
    /// # Errors
    /// [`EngineError::UnknownSession`] if it does not exist.
    pub fn delete_session(&self, id: &str) -> EngineResult<()> {
        self.sessions
            .write()
            .remove(id)
            .map(|_| ())
            .ok_or_else(|| EngineError::UnknownSession(id.to_string()))
    }

    /// Drive many sessions concurrently on a pool of `workers` scoped
    /// threads, returning one estimate per job in job order.
    ///
    /// Work is distributed by an atomic cursor over the job list; since each
    /// session owns its RNG and oracle, the estimates are bit-identical to
    /// running the jobs sequentially, whatever the interleaving — provided
    /// each session appears in at most one job.  Jobs naming the same session
    /// are safe (the per-session mutex serialises them) but race for lock
    /// order, so their split of the session's RNG stream is not
    /// deterministic.
    ///
    /// # Errors
    /// The first failing job's error (all jobs still run to completion).
    pub fn run_parallel(&self, jobs: &[SessionJob], workers: usize) -> EngineResult<Vec<Estimate>> {
        let workers = workers.max(1).min(jobs.len().max(1));
        let cursor = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<EngineResult<Estimate>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= jobs.len() {
                        break;
                    }
                    let job = &jobs[index];
                    let outcome = self.run_job(job);
                    *results[index].lock() = Some(outcome);
                });
            }
        })
        .expect("engine worker panicked");

        let mut estimates = Vec::with_capacity(jobs.len());
        for slot in results {
            estimates.push(slot.into_inner().expect("every job ran")?);
        }
        Ok(estimates)
    }

    fn run_job(&self, job: &SessionJob) -> EngineResult<Estimate> {
        let session = self.session(job.session_id())?;
        let mut session = session.lock();
        match job {
            SessionJob::Steps { steps, .. } => session.step(*steps),
            SessionJob::Budget {
                budget, max_steps, ..
            } => session.run_until_budget(*budget, *max_steps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis::{GroundTruthOracle, OasisSampler, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool_and_truth(n: usize, seed: u64) -> (ScoredPool, Vec<bool>) {
        let (pool, truth) = crate::test_support::pool_and_truth(n, seed, 0.05);
        ((*pool).clone(), truth)
    }

    #[test]
    fn pool_and_session_registry_basics() {
        let engine = Engine::new();
        let (pool, truth) = pool_and_truth(300, 1);
        engine.load_pool("p", pool.clone()).unwrap();
        assert!(matches!(
            engine.load_pool("p", pool),
            Err(EngineError::DuplicateId(_))
        ));
        assert!(matches!(engine.pool("q"), Err(EngineError::UnknownPool(_))));
        assert_eq!(engine.pool_ids(), vec!["p".to_string()]);

        engine
            .create_session(
                "s",
                "p",
                SamplerMethod::Oasis,
                OasisConfig::default().with_strata_count(4),
                1,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
            )
            .unwrap();
        assert!(matches!(
            engine.create_session(
                "s",
                "p",
                SamplerMethod::Oasis,
                OasisConfig::default(),
                1,
                LabelSource::external(300)
            ),
            Err(EngineError::DuplicateId(_))
        ));
        assert_eq!(engine.session_ids(), vec!["s".to_string()]);
        engine.delete_session("s").unwrap();
        assert!(matches!(
            engine.delete_session("s"),
            Err(EngineError::UnknownSession(_))
        ));
    }

    #[test]
    fn concurrent_sessions_match_sequential_library_runs_bitwise() {
        let (pool, truth) = pool_and_truth(2500, 2);
        let config = OasisConfig::default().with_strata_count(15);
        let seeds: Vec<u64> = (100..108).collect();
        let steps = 300;

        // Sequential library reference, one run per seed.
        let mut expected = Vec::new();
        for &seed in &seeds {
            let mut oracle = GroundTruthOracle::new(truth.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sampler = OasisSampler::new(&pool, config.clone()).unwrap();
            expected.push(sampler.run(&pool, &mut oracle, &mut rng, steps).unwrap());
        }

        // Engine: 8 sessions over one shared Arc pool, 4 workers.
        let engine = Engine::new();
        engine.load_pool("p", pool).unwrap();
        for &seed in &seeds {
            engine
                .create_session(
                    format!("s{seed}"),
                    "p",
                    SamplerMethod::Oasis,
                    config.clone(),
                    seed,
                    LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone())),
                )
                .unwrap();
        }
        let jobs: Vec<SessionJob> = seeds
            .iter()
            .map(|seed| SessionJob::Steps {
                session: format!("s{seed}"),
                steps,
            })
            .collect();
        let estimates = engine.run_parallel(&jobs, 4).unwrap();

        for (estimate, reference) in estimates.iter().zip(expected.iter()) {
            assert_eq!(estimate.f_measure.to_bits(), reference.f_measure.to_bits());
            assert_eq!(estimate.precision.to_bits(), reference.precision.to_bits());
            assert_eq!(estimate.recall.to_bits(), reference.recall.to_bits());
        }
    }

    #[test]
    fn parallel_budget_jobs_and_error_reporting() {
        let (pool, truth) = pool_and_truth(800, 3);
        let engine = Engine::new();
        engine.load_pool("p", pool).unwrap();
        engine
            .create_session(
                "good",
                "p",
                SamplerMethod::Oasis,
                OasisConfig::default().with_strata_count(6),
                5,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
            )
            .unwrap();
        let jobs = vec![
            SessionJob::Budget {
                session: "good".to_string(),
                budget: 50,
                max_steps: 50_000,
            },
            SessionJob::Steps {
                session: "missing".to_string(),
                steps: 1,
            },
        ];
        let err = engine.run_parallel(&jobs, 2).unwrap_err();
        assert!(matches!(err, EngineError::UnknownSession(_)));

        // Without the bad job the budget run completes.
        let estimates = engine.run_parallel(&jobs[..1], 2).unwrap();
        assert_eq!(estimates.len(), 1);
        let session = engine.session("good").unwrap();
        assert!(session.lock().labels_consumed() >= 50);
    }

    #[test]
    fn restore_session_under_new_name() {
        let (pool, truth) = pool_and_truth(500, 4);
        let engine = Engine::new();
        engine.load_pool("p", pool).unwrap();
        engine
            .create_session(
                "orig",
                "p",
                SamplerMethod::Oasis,
                OasisConfig::default().with_strata_count(6),
                9,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
            )
            .unwrap();
        let handle = engine.session("orig").unwrap();
        handle.lock().step(50).unwrap();
        let checkpoint = handle.lock().checkpoint();

        engine.restore_session("copy", checkpoint).unwrap();
        let copy = engine.session("copy").unwrap();
        let a = handle.lock().step(50).unwrap();
        let b = copy.lock().step(50).unwrap();
        assert_eq!(a.f_measure.to_bits(), b.f_measure.to_bits());
    }
}
