//! Integration tests asserting the qualitative *shape* of the paper's results
//! at reduced scale: who wins, in which regimes, and by roughly how much.

use er_core::datasets::DatasetProfile;
use experiments::curves::{method_curve, CurveConfig};
use experiments::figure2::{run_profile, Figure2Config};
use experiments::methods::Method;
use experiments::pools::direct_pool;
use oasis::samplers::Sampler;

/// Mean of the defined entries of a slice.
fn mean_defined(values: &[f64]) -> f64 {
    let defined: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if defined.is_empty() {
        f64::NAN
    } else {
        defined.iter().sum::<f64>() / defined.len() as f64
    }
}

#[test]
fn figure2_shape_oasis_beats_passive_and_stratified_under_imbalance() {
    // Abt-Buy-style pool at 30% scale (≈16k pairs, 15 matches).  The slow
    // O(N)-per-draw IS baseline is exercised in the figure3 shape test; here
    // we compare the methods whose per-step cost is O(1)/O(K) so the pool can
    // be large enough for the comparison to be statistically meaningful.
    let pool = direct_pool(&DatasetProfile::abt_buy(), 0.3, true, 71);
    let config = CurveConfig {
        checkpoints: vec![200, 500, 1000],
        repeats: 20,
        alpha: 0.5,
        seed: 71,
        threads: 4,
    };
    let oasis = mean_defined(&method_curve(&pool, Method::oasis(30), &config).absolute_error);
    let passive = mean_defined(&method_curve(&pool, Method::Passive, &config).absolute_error);
    let stratified = mean_defined(
        &method_curve(&pool, Method::Stratified { strata: 30 }, &config).absolute_error,
    );
    assert!(
        oasis < passive,
        "OASIS mean error {oasis:.4} must beat passive {passive:.4}"
    );
    assert!(
        oasis < stratified + 0.01,
        "OASIS mean error {oasis:.4} must not lose to stratified {stratified:.4}"
    );
}

#[test]
fn figure2_shape_methods_tie_on_balanced_data() {
    // tweets100k: no class imbalance → no meaningful advantage for OASIS
    // (paper Section 6.3.1, "Balanced classes").
    let config = Figure2Config {
        scale: 0.05,
        repeats: 20,
        budget_fraction: 0.1,
        checkpoints: 4,
        seed: 72,
        threads: 4,
        datasets: vec!["tweets100k".to_string()],
    };
    let curves = run_profile(&DatasetProfile::tweets100k(), &config);
    let passive = mean_defined(
        &curves
            .curves
            .iter()
            .find(|c| c.label == "Passive")
            .unwrap()
            .absolute_error,
    );
    let oasis = mean_defined(
        &curves
            .curves
            .iter()
            .find(|c| c.label.starts_with("OASIS"))
            .unwrap()
            .absolute_error,
    );
    // Both are small and close: the gap should be a fraction of the passive error.
    assert!(
        passive < 0.1,
        "passive error should be small on balanced data: {passive}"
    );
    assert!(
        (oasis - passive).abs() < 0.05,
        "OASIS ({oasis:.4}) and passive ({passive:.4}) should be comparable on balanced data"
    );
}

#[test]
fn figure3_shape_calibration_matters_more_for_is_than_for_oasis() {
    // Compare final errors with calibrated vs uncalibrated scores on DBLP-ACM.
    let profile = DatasetProfile::dblp_acm();
    let repeats = 15;
    let budgets = vec![80, 160];
    let curve_for = |calibrated: bool, method: Method, seed: u64| {
        let pool = direct_pool(&profile, 0.05, calibrated, seed);
        let config = CurveConfig {
            checkpoints: budgets.clone(),
            repeats,
            alpha: 0.5,
            seed,
            threads: 4,
        };
        method_curve(&pool, method, &config)
    };
    let is_cal = mean_defined(&curve_for(true, Method::ImportanceSampling, 5).absolute_error);
    let is_uncal = mean_defined(&curve_for(false, Method::ImportanceSampling, 5).absolute_error);
    let oasis_cal = mean_defined(&curve_for(true, Method::oasis(60), 5).absolute_error);
    let oasis_uncal = mean_defined(&curve_for(false, Method::oasis(60), 5).absolute_error);

    let is_degradation = is_uncal - is_cal;
    let oasis_degradation = oasis_uncal - oasis_cal;
    assert!(
        is_degradation > oasis_degradation - 0.005,
        "IS should degrade at least as much as OASIS when scores are uncalibrated \
         (IS: {is_cal:.4} → {is_uncal:.4}, OASIS: {oasis_cal:.4} → {oasis_uncal:.4})"
    );
    // And OASIS with uncalibrated scores should still beat IS with uncalibrated scores.
    assert!(
        oasis_uncal <= is_uncal + 0.01,
        "OASIS uncal {oasis_uncal:.4} vs IS uncal {is_uncal:.4}"
    );
}

#[test]
fn table3_shape_no_method_cost_grows_linearly_with_the_pool() {
    // The paper's Section 6.3.5 contrast (IS paying O(N) per draw) is
    // deliberately optimised away in this implementation: the static
    // samplers precompute cumulative weights at construction and draw in
    // O(log N).  What must hold instead is that *no* method's steady-state
    // per-iteration cost grows linearly with the pool: a ~10x larger pool
    // must cost far less than 10x per iteration for every method.  (Table 3
    // itself still times whole runs including the one-off O(N) setup; here
    // construction is excluded so the bound pins the draw cost.)
    use experiments::methods::Method;
    use oasis::oracle::GroundTruthOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let small_pool = direct_pool(&DatasetProfile::cora(), 0.02, true, 9);
    let large_pool = direct_pool(&DatasetProfile::cora(), 0.2, true, 9);
    assert!(large_pool.len() >= 9 * small_pool.len());
    let iterations = 3000;
    // Min of three repeats: one-shot microsecond-scale timings are at the
    // mercy of scheduler noise on shared CI runners; the minimum is the
    // cleanest estimate of the true cost.
    let time_steps = |pool: &experiments::pools::ExperimentPool, method: Method| {
        (0..3)
            .map(|repeat| {
                let mut sampler = method
                    .build(&pool.pool, 0.5, pool.score_threshold)
                    .expect("valid method");
                let mut oracle = GroundTruthOracle::new(pool.truth.clone());
                let mut rng = StdRng::seed_from_u64(10 + repeat);
                let start = std::time::Instant::now();
                for _ in 0..iterations {
                    sampler
                        .step(&pool.pool, &mut oracle, &mut rng)
                        .expect("step cannot fail");
                }
                start.elapsed().as_secs_f64() / iterations as f64
            })
            .fold(f64::INFINITY, f64::min)
    };
    for method in [
        Method::Passive,
        Method::ImportanceSampling,
        Method::oasis(30),
        Method::Stratified { strata: 30 },
    ] {
        let growth = time_steps(&large_pool, method) / time_steps(&small_pool, method);
        assert!(
            growth < 5.0,
            "{} per-iteration cost grew {growth:.1}x on a ~10x pool — \
             a linear-in-N draw has crept back in",
            method.label()
        );
    }
}
