//! Figure 3: calibrated versus uncalibrated scores for IS and OASIS.
//!
//! Static importance sampling builds its proposal directly from the similarity
//! scores, so it degrades sharply when those scores are raw SVM margins rather
//! than calibrated probabilities.  OASIS learns the oracle probabilities from
//! incoming labels and is far less sensitive (paper Section 6.3.2).

use crate::curves::{compare_methods, CurveConfig, MethodCurve};
use crate::methods::Method;
use crate::pools::direct_pool;
use crate::report::{fmt_float, TextTable};
use er_core::datasets::DatasetProfile;

/// The curves for one pool in one calibration regime.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationCurves {
    /// Dataset name.
    pub name: String,
    /// Whether the scores were calibrated.
    pub calibrated: bool,
    /// True F½ of the pool.
    pub true_f_measure: f64,
    /// Curves for IS and OASIS (K = 60).
    pub curves: Vec<MethodCurve>,
}

/// The reproduced Figure 3 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure3 {
    /// Calibrated + uncalibrated curves for each of the two datasets.
    pub panels: Vec<CalibrationCurves>,
    /// Pool scale used.
    pub scale: f64,
    /// Repeats per method.
    pub repeats: usize,
}

/// Configuration of the Figure 3 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure3Config {
    /// Pool scale.
    pub scale: f64,
    /// Repeats per method.
    pub repeats: usize,
    /// Maximum budget as a fraction of the pool size.
    pub budget_fraction: f64,
    /// Number of checkpoints.
    pub checkpoints: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Figure3Config {
    fn default() -> Self {
        Figure3Config {
            scale: 0.1,
            repeats: 100,
            budget_fraction: 0.1,
            checkpoints: 10,
            seed: 2017,
            threads: 4,
        }
    }
}

/// The methods compared in Figure 3: static IS and OASIS with K = 60.
pub fn figure3_methods() -> Vec<Method> {
    vec![Method::ImportanceSampling, Method::oasis(60)]
}

/// Run one panel (one dataset, one calibration regime).
pub fn run_panel(
    profile: &DatasetProfile,
    calibrated: bool,
    config: &Figure3Config,
) -> CalibrationCurves {
    let pool = direct_pool(profile, config.scale, calibrated, config.seed);
    let max_budget = ((pool.len() as f64 * config.budget_fraction) as usize).max(20);
    let step = (max_budget / config.checkpoints).max(1);
    let curve_config = CurveConfig {
        checkpoints: (1..=config.checkpoints).map(|i| i * step).collect(),
        repeats: config.repeats,
        alpha: 0.5,
        seed: config.seed,
        threads: config.threads,
    };
    let curves = compare_methods(&pool, &figure3_methods(), &curve_config);
    CalibrationCurves {
        name: profile.name.to_string(),
        calibrated,
        true_f_measure: pool.true_f_measure,
        curves,
    }
}

/// Run the full Figure 3 experiment: Abt-Buy and DBLP-ACM, calibrated and
/// uncalibrated.
pub fn run(config: &Figure3Config) -> Figure3 {
    let mut panels = Vec::new();
    for profile in [DatasetProfile::abt_buy(), DatasetProfile::dblp_acm()] {
        for calibrated in [false, true] {
            panels.push(run_panel(&profile, calibrated, config));
        }
    }
    Figure3 {
        panels,
        scale: config.scale,
        repeats: config.repeats,
    }
}

impl Figure3 {
    /// Render as plain-text tables, one per panel.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 3: calibrated vs uncalibrated scores (scale {:.3}, {} repeats)\n",
            self.scale, self.repeats
        );
        for panel in &self.panels {
            out.push_str(&format!(
                "\n--- {} ({}) true F1/2 = {:.3} ---\n",
                panel.name,
                if panel.calibrated {
                    "calibrated"
                } else {
                    "uncalibrated"
                },
                panel.true_f_measure
            ));
            let mut header = vec!["Budget".to_string()];
            for curve in &panel.curves {
                header.push(format!("{} abs.err", curve.label));
                header.push(format!("{} std", curve.label));
            }
            let mut table = TextTable::new(header);
            if let Some(first) = panel.curves.first() {
                for (i, &budget) in first.budgets.iter().enumerate() {
                    let mut row = vec![budget.to_string()];
                    for curve in &panel.curves {
                        row.push(fmt_float(curve.absolute_error[i], 4));
                        row.push(fmt_float(curve.std_dev[i], 4));
                    }
                    table.add_row(row);
                }
            }
            out.push_str(&table.render());
        }
        out
    }

    /// For each dataset, the degradation (increase in final absolute error)
    /// each method suffers when moving from calibrated to uncalibrated
    /// scores.  The paper's finding is that IS degrades much more than OASIS.
    pub fn calibration_degradation(&self) -> Vec<(String, String, f64)> {
        let mut degradations = Vec::new();
        let names: Vec<String> = {
            let mut seen = Vec::new();
            for panel in &self.panels {
                if !seen.contains(&panel.name) {
                    seen.push(panel.name.clone());
                }
            }
            seen
        };
        for name in names {
            let calibrated = self.panels.iter().find(|p| p.name == name && p.calibrated);
            let uncalibrated = self.panels.iter().find(|p| p.name == name && !p.calibrated);
            if let (Some(cal), Some(uncal)) = (calibrated, uncalibrated) {
                for (c, u) in cal.curves.iter().zip(uncal.curves.iter()) {
                    degradations.push((
                        name.clone(),
                        c.label.clone(),
                        u.final_error() - c.final_error(),
                    ));
                }
            }
        }
        degradations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Figure3Config {
        Figure3Config {
            scale: 0.03,
            repeats: 8,
            budget_fraction: 0.25,
            checkpoints: 3,
            seed: 5,
            threads: 2,
        }
    }

    #[test]
    fn produces_four_panels() {
        let figure = run(&tiny_config());
        assert_eq!(figure.panels.len(), 4);
        let names: Vec<&str> = figure.panels.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"Abt-Buy"));
        assert!(names.contains(&"DBLP-ACM"));
        assert_eq!(figure.panels.iter().filter(|p| p.calibrated).count(), 2);
        for panel in &figure.panels {
            assert_eq!(panel.curves.len(), 2);
            assert_eq!(panel.curves[0].label, "IS");
            assert_eq!(panel.curves[1].label, "OASIS 60");
        }
    }

    #[test]
    fn degradation_summary_covers_both_methods() {
        let figure = run(&tiny_config());
        let degradations = figure.calibration_degradation();
        // 2 datasets × 2 methods.
        assert_eq!(degradations.len(), 4);
        for (_, _, delta) in &degradations {
            assert!(delta.is_finite() || delta.is_nan());
        }
    }

    #[test]
    fn render_labels_panels() {
        let figure = run(&tiny_config());
        let text = figure.render();
        assert!(text.contains("Figure 3"));
        assert!(text.contains("uncalibrated"));
        assert!(text.contains("OASIS 60"));
    }
}
