//! Label-efficient samplers for ER evaluation.
//!
//! All samplers implement the [`Sampler`] trait: each call to
//! [`Sampler::step`] selects one record pair from the pool (possibly one that
//! was already labelled — draws are with replacement), queries the oracle, and
//! updates the internal estimate of the F-measure.  The *label budget* is
//! tracked by the oracle, which only charges for the first query of each
//! distinct pair.
//!
//! Implemented samplers, matching the paper's experimental comparison
//! (Section 6.2):
//!
//! | Sampler | Proposal | Estimator | Adaptive |
//! |---|---|---|---|
//! | [`PassiveSampler`] | uniform over the pool | plain F-measure (Eqn. 1) | no |
//! | [`StratifiedSampler`] | proportional to stratum size | stratified F-measure | no |
//! | [`ImportanceSampler`] | static pointwise optimal (scores as probabilities) | AIS (Eqn. 3) | no |
//! | [`OasisSampler`] | ε-greedy stratified optimal, refit each iteration | AIS (Eqn. 3) | yes |

mod importance;
mod oasis_sampler;
mod passive;
mod stratified;

pub use importance::ImportanceSampler;
pub use oasis_sampler::{OasisConfig, OasisSampler, StratifierChoice};
pub use passive::PassiveSampler;
pub use stratified::StratifiedSampler;

use crate::error::Result;
use crate::estimator::Estimate;
use crate::oracle::Oracle;
use crate::pool::ScoredPool;
use rand::Rng;

/// The record of a single sampling iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Index of the sampled pool item.
    pub item: usize,
    /// The ER system's predicted label for the item.
    pub prediction: bool,
    /// The oracle's label for the item.
    pub label: bool,
    /// The importance weight applied to the observation (1 for unbiased
    /// samplers).
    pub weight: f64,
}

/// A sequential sampler that spends oracle labels to estimate the F-measure.
pub trait Sampler {
    /// Perform one sampling iteration: choose an item, query the oracle, and
    /// update the estimate.
    fn step<O: Oracle, R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        oracle: &mut O,
        rng: &mut R,
    ) -> Result<StepOutcome>;

    /// The current estimate of the evaluation measures.
    fn estimate(&self) -> Estimate;

    /// A short human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Run `iterations` steps, returning the final estimate.
    fn run<O: Oracle, R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        oracle: &mut O,
        rng: &mut R,
        iterations: usize,
    ) -> Result<Estimate> {
        for _ in 0..iterations {
            self.step(pool, oracle, rng)?;
        }
        Ok(self.estimate())
    }

    /// Run steps until the oracle has consumed `label_budget` labels (or
    /// `max_iterations` steps have elapsed, whichever comes first), returning
    /// the final estimate.  Because draws are with replacement, several
    /// iterations may be needed per consumed label.
    fn run_until_budget<O: Oracle, R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        oracle: &mut O,
        rng: &mut R,
        label_budget: usize,
        max_iterations: usize,
    ) -> Result<Estimate> {
        let mut iterations = 0usize;
        while oracle.labels_consumed() < label_budget && iterations < max_iterations {
            self.step(pool, oracle, rng)?;
            iterations += 1;
        }
        Ok(self.estimate())
    }
}

/// A wrapper that runs any sampler while also feeding a
/// [`VarianceTracker`](crate::confidence::VarianceTracker), so callers get
/// standard errors and confidence intervals alongside the point estimate.
///
/// ```
/// use oasis::{GroundTruthOracle, OasisConfig, OasisSampler, Sampler, ScoredPool, TrackedSampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let pool = ScoredPool::new(vec![0.9, 0.8, 0.1, 0.05], vec![true, true, false, false]).unwrap();
/// let mut oracle = GroundTruthOracle::new(vec![true, false, false, false]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let inner = OasisSampler::new(&pool, OasisConfig::default().with_strata_count(2)).unwrap();
/// let mut sampler = TrackedSampler::new(inner, 0.5);
/// for _ in 0..20 {
///     sampler.step(&pool, &mut oracle, &mut rng).unwrap();
/// }
/// let interval = sampler.confidence_interval(0.95).unwrap();
/// assert!(interval.lower <= interval.estimate && interval.estimate <= interval.upper);
/// ```
#[derive(Debug, Clone)]
pub struct TrackedSampler<S> {
    inner: S,
    tracker: crate::confidence::VarianceTracker,
}

impl<S: Sampler> TrackedSampler<S> {
    /// Wrap a sampler, tracking variance for the α-weighted F-measure.
    pub fn new(inner: S, alpha: f64) -> Self {
        TrackedSampler {
            inner,
            tracker: crate::confidence::VarianceTracker::new(alpha),
        }
    }

    /// The wrapped sampler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The variance tracker accumulated so far.
    pub fn tracker(&self) -> &crate::confidence::VarianceTracker {
        &self.tracker
    }

    /// A normal-approximation confidence interval at the given level, or
    /// `None` while the estimate is undefined.
    pub fn confidence_interval(&self, level: f64) -> Option<crate::confidence::ConfidenceInterval> {
        self.tracker.confidence_interval(level)
    }
}

impl<S: Sampler> Sampler for TrackedSampler<S> {
    fn step<O: Oracle, R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        oracle: &mut O,
        rng: &mut R,
    ) -> Result<StepOutcome> {
        let outcome = self.inner.step(pool, oracle, rng)?;
        self.tracker
            .observe(outcome.weight, outcome.prediction, outcome.label);
        Ok(outcome)
    }

    fn estimate(&self) -> Estimate {
        self.inner.estimate()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Draw an index from a categorical distribution given by `probabilities`
/// (assumed non-negative; they need not be exactly normalised).  Uses a single
/// uniform variate and a linear scan — the same cost profile as
/// `numpy.random.choice(p=...)` used by the paper's reference implementation,
/// which is what makes the Table 3 runtime comparison meaningful.
pub(crate) fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, probabilities: &[f64]) -> usize {
    debug_assert!(!probabilities.is_empty());
    let total: f64 = probabilities.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // Degenerate distribution: fall back to uniform.
        return rng.gen_range(0..probabilities.len());
    }
    let mut target = rng.gen::<f64>() * total;
    for (index, &p) in probabilities.iter().enumerate() {
        target -= p;
        if target <= 0.0 {
            return index;
        }
    }
    probabilities.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn categorical_sampling_respects_probabilities() {
        let mut rng = StdRng::seed_from_u64(123);
        let probs = [0.1, 0.6, 0.3];
        let mut counts = [0usize; 3];
        let draws = 60_000;
        for _ in 0..draws {
            counts[sample_categorical(&mut rng, &probs)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / draws as f64;
            assert!(
                (freq - probs[i]).abs() < 0.02,
                "index {i}: frequency {freq} vs probability {}",
                probs[i]
            );
        }
    }

    #[test]
    fn categorical_sampling_handles_unnormalised_and_degenerate_input() {
        let mut rng = StdRng::seed_from_u64(9);
        // Unnormalised input is fine.
        let idx = sample_categorical(&mut rng, &[2.0, 0.0, 0.0]);
        assert_eq!(idx, 0);
        // All-zero mass falls back to uniform over the support.
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[sample_categorical(&mut rng, &[0.0, 0.0, 0.0])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn categorical_sampling_single_element() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_categorical(&mut rng, &[1.0]), 0);
    }
}
