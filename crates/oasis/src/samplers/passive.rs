//! Passive (uniform i.i.d.) sampling — the baseline of Section 6.2.

use super::state::{EstimatorState, PassiveState, SamplerMethod, SamplerState};
use super::{unstratified_diagnostics, InteractiveSampler, Proposal, Sampler, SamplerDiagnostics};
use crate::error::Result;
use crate::estimator::{AisEstimator, Estimate};
use crate::pool::ScoredPool;
use rand::Rng;

/// Uniform-with-replacement sampler with the plain (unweighted) F-measure
/// estimator of Eqn. 1.
///
/// This is the statistically sound but label-hungry default: under a class
/// imbalance of `1:r` it needs on the order of `r` labels per match found, so
/// the estimate can remain undefined for thousands of labels (paper
/// Section 6.3.1).
#[derive(Debug, Clone)]
pub struct PassiveSampler {
    estimator: AisEstimator,
}

impl PassiveSampler {
    /// Create a passive sampler estimating the α-weighted F-measure.
    pub fn new(alpha: f64) -> Self {
        PassiveSampler {
            estimator: AisEstimator::new(alpha),
        }
    }

    /// Assemble a sampler from a restored estimator; shared by
    /// [`PassiveState::rebuild`].
    pub(super) fn from_parts(estimator: AisEstimator) -> Self {
        PassiveSampler { estimator }
    }

    /// The AIS estimator's running sums — read by the sharded merge.
    pub(crate) fn estimator(&self) -> &AisEstimator {
        &self.estimator
    }
}

impl InteractiveSampler for PassiveSampler {
    /// Draw one item uniformly; the importance weight is always 1 and the
    /// stratum slot is unused (0).
    fn propose<R: Rng + ?Sized>(&mut self, pool: &ScoredPool, rng: &mut R) -> Proposal {
        let item = rng.gen_range(0..pool.len());
        Proposal {
            item,
            stratum: 0,
            prediction: pool.prediction(item),
            weight: 1.0,
        }
    }

    fn apply_label(&mut self, proposal: &Proposal, label: bool) {
        self.estimator.observe(1.0, proposal.prediction, label);
    }

    fn estimate(&self) -> Estimate {
        self.estimator.estimate()
    }

    fn name(&self) -> &'static str {
        "Passive"
    }

    fn method(&self) -> SamplerMethod {
        SamplerMethod::Passive
    }

    fn diagnostics(&self) -> SamplerDiagnostics {
        unstratified_diagnostics(SamplerMethod::Passive, &self.estimator)
    }

    fn state(&self) -> SamplerState {
        SamplerState::Passive(PassiveState {
            estimator: EstimatorState::capture(&self.estimator),
            tracker: None,
        })
    }

    fn from_state(_pool: &ScoredPool, state: SamplerState) -> Result<Self> {
        match state {
            SamplerState::Passive(state) => state.rebuild(),
            other => Err(other.method_mismatch(SamplerMethod::Passive)),
        }
    }
}

impl Sampler for PassiveSampler {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::exhaustive_measures;
    use crate::oracle::{GroundTruthOracle, Oracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn balanced_pool(n: usize, seed: u64) -> (ScoredPool, Vec<bool>) {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scores = Vec::with_capacity(n);
        let mut predictions = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let is_match = rng.gen_bool(0.4);
            let score: f64 = if is_match {
                0.5 + 0.5 * rng.gen::<f64>()
            } else {
                0.5 * rng.gen::<f64>()
            };
            scores.push(score);
            predictions.push(score > 0.55);
            truth.push(is_match);
        }
        (ScoredPool::new(scores, predictions).unwrap(), truth)
    }

    #[test]
    fn converges_to_true_f_measure_on_balanced_data() {
        let (pool, truth) = balanced_pool(2000, 1);
        let target = exhaustive_measures(pool.predictions(), &truth, 0.5).f_measure;
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(2);
        let mut sampler = PassiveSampler::new(0.5);
        let estimate = sampler.run(&pool, &mut oracle, &mut rng, 4000).unwrap();
        assert!(
            (estimate.f_measure - target).abs() < 0.05,
            "estimate {} vs target {target}",
            estimate.f_measure
        );
    }

    #[test]
    fn step_outcome_is_consistent_with_pool_and_oracle() {
        let (pool, truth) = balanced_pool(50, 3);
        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let mut sampler = PassiveSampler::new(0.5);
        for _ in 0..100 {
            let outcome = sampler.step(&pool, &mut oracle, &mut rng).unwrap();
            assert!(outcome.item < pool.len());
            assert_eq!(outcome.prediction, pool.prediction(outcome.item));
            assert_eq!(outcome.label, truth[outcome.item]);
            assert_eq!(outcome.weight, 1.0);
        }
        assert!(oracle.labels_consumed() <= 100);
        assert_eq!(oracle.queries_issued(), 100);
    }

    #[test]
    fn estimate_undefined_until_a_positive_is_sampled() {
        // A pool of only true/predicted negatives keeps the F-measure undefined.
        let pool = ScoredPool::new(vec![0.1; 10], vec![false; 10]).unwrap();
        let mut oracle = GroundTruthOracle::new(vec![false; 10]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler = PassiveSampler::new(0.5);
        sampler.run(&pool, &mut oracle, &mut rng, 20).unwrap();
        assert!(!sampler.estimate().is_defined());
        assert_eq!(sampler.name(), "Passive");
    }

    #[test]
    fn run_until_budget_stops_at_budget() {
        let (pool, truth) = balanced_pool(500, 7);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(8);
        let mut sampler = PassiveSampler::new(0.5);
        sampler
            .run_until_budget(&pool, &mut oracle, &mut rng, 50, 100_000)
            .unwrap();
        assert!(oracle.labels_consumed() >= 50);
        // With-replacement sampling may overshoot by at most one label per step.
        assert!(oracle.labels_consumed() <= 51);
    }
}
