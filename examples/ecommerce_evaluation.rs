//! End-to-end ER evaluation on a synthetic e-commerce catalogue.
//!
//! This example exercises the full pipeline the paper assumes as its
//! substrate: generate two product catalogues describing an overlapping set of
//! products, extract similarity features, train a linear SVM record-pair
//! classifier, score every candidate pair, and then evaluate the resulting ER
//! system with OASIS against exhaustive ground truth.
//!
//! Run with: `cargo run --release --example ecommerce_evaluation`

use classifiers::{Classifier, LinearSvm, TrainingSet};
use er_core::datasets::corruption::CorruptionConfig;
use er_core::datasets::generator::{GeneratorConfig, SyntheticDataset};
use er_core::datasets::vocabulary::EntityKind;
use er_core::pool_builder::PoolBuilder;
use oasis::measures::exhaustive_measures;
use oasis::oracle::{GroundTruthOracle, Oracle};
use oasis::samplers::{InteractiveSampler, OasisConfig, OasisSampler, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Two product catalogues with 60 shared products (matches).
    let dataset = SyntheticDataset::generate(
        GeneratorConfig {
            kind: EntityKind::Product,
            source_a_size: 300,
            source_b_size: 280,
            match_count: 60,
            corruption: CorruptionConfig::moderate(),
            deduplication: false,
            dedup_cluster_size: 0,
        },
        &mut rng,
    );
    println!(
        "Generated {} x {} records, {} candidate pairs, {} true matches (imbalance 1:{:.0})",
        dataset.source_a.len(),
        dataset.source_b.len(),
        dataset.pair_count(),
        dataset.match_count(),
        dataset.imbalance_ratio().unwrap_or(f64::NAN)
    );

    // 2. Similarity features for every candidate pair.
    let builder = PoolBuilder::fit(&dataset);
    let (features, labels) = builder.feature_matrix(&dataset);

    // 3. Train a linear SVM on a small balanced subsample of labelled pairs
    //    (training data need not be representative — only evaluation must be).
    let training = TrainingSet::new(features, labels).balanced_subsample(60, &mut rng);
    let svm = LinearSvm::train(&training, &mut rng);
    println!(
        "Trained an L-SVM on {} labelled pairs ({} matches)",
        training.len(),
        training.positive_count()
    );

    // 4. Score the whole pool with the classifier.
    let labelled_pool = builder.build_pool(&dataset, |f| svm.score(f), 0.0);
    let truth = labelled_pool.truth.clone();
    let target = exhaustive_measures(labelled_pool.pool.predictions(), &truth, 0.5);
    println!(
        "Exhaustive evaluation (needs {} labels): precision {:.3}, recall {:.3}, F1/2 {:.3}",
        truth.len(),
        target.precision,
        target.recall,
        target.f_measure
    );

    // 5. Evaluate with OASIS using a small label budget.
    let budget = 400;
    let mut oracle = GroundTruthOracle::new(truth);
    let mut sampler = OasisSampler::new(
        &labelled_pool.pool,
        OasisConfig::default().with_strata_count(30),
    )
    .expect("valid configuration");
    sampler
        .run_until_budget(
            &labelled_pool.pool,
            &mut oracle,
            &mut rng,
            budget,
            1_000_000,
        )
        .expect("sampling succeeds");
    let estimate = sampler.estimate();
    println!(
        "OASIS evaluation (used {} labels, {:.1}% of the pool): F1/2 ≈ {:.3} (true {:.3})",
        oracle.labels_consumed(),
        100.0 * oracle.labels_consumed() as f64 / labelled_pool.pool.len() as f64,
        estimate.f_measure,
        target.f_measure
    );
    println!(
        "Absolute error: {:.3}",
        (estimate.f_measure - target.f_measure).abs()
    );
}
