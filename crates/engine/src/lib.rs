//! # oasis-engine — a concurrent, checkpointable multi-session evaluation engine
//!
//! The `oasis` crate implements the paper's samplers as a library: one
//! sampler, one in-process oracle callback, run to completion.  This crate
//! turns them into a *serving subsystem* for interactive, production-style
//! evaluation — method-agnostic, because everything is built on the
//! [`InteractiveSampler`](oasis::InteractiveSampler) contract rather than a
//! concrete sampler type:
//!
//! * **Sessions** ([`Session`]) — many concurrent, independently seeded
//!   sampler runs (any [`SamplerMethod`](oasis::SamplerMethod): OASIS,
//!   passive, importance, stratified) over shared
//!   [`Arc<ScoredPool>`](oasis::ScoredPool)s, managed by an [`Engine`] and
//!   driven by a worker pool on vendored-crossbeam scoped threads
//!   ([`Engine::run_parallel`]).  Sessions are independent, so concurrency
//!   never changes results: estimates are bit-identical to sequential
//!   library runs with the same seeds, whatever the method.
//! * **Suspend/resume oracle boundary** — a session proposes pairs to label
//!   ([`Session::propose`] → [`Ticket`]s) and suspends; labels arrive later,
//!   possibly batched and out of order ([`Session::apply_labels`]).  Human
//!   and remote oracles are first-class instead of in-process callbacks; an
//!   in-process ground-truth oracle remains available for simulation
//!   ([`LabelSource::GroundTruth`], [`Session::step`]).
//! * **Checkpoints** ([`SessionCheckpoint`]) — the method-tagged sampler
//!   state ([`oasis::SamplerState`]), variance-tracker sums, RNG state
//!   words, pending tickets and oracle/budget state snapshot to JSON with
//!   *exact-resume* semantics: an interrupted-and-restored run is
//!   bit-identical to an uninterrupted one — estimates *and* confidence
//!   intervals — for every method.
//! * **Durability** ([`store`], [`wal`]) — a pluggable [`CheckpointStore`]
//!   (filesystem backend: [`FsCheckpointStore`]) plus an append-only
//!   write-ahead log of every mutating request.  A restart replays
//!   `latest checkpoint + WAL suffix` to the exact pre-crash state; an LRU
//!   cap ([`Engine::with_max_resident`]) evicts idle sessions through the
//!   store and rehydrates them transparently on next access.
//! * **`oasis-serve`** — a binary speaking a line-delimited JSON protocol
//!   ([`protocol`]) over stdin/stdout or TCP ([`server`]): `load_pool`,
//!   `create_session` (with a `method` field), `propose`, `label`, `step`,
//!   `run_budget`, `estimate`, `checkpoint`, `restore`, `checkpoint_to`,
//!   `restore_from`, `sessions`, `delete_session`, `metrics`,
//!   `diagnostics`, `shutdown`.  TCP mode is thread-per-connection by
//!   default; `--evented` swaps in a single-threaded epoll reactor
//!   ([`reactor`], Linux only) with byte-identical wire semantics that
//!   scales to thousands of mostly-idle connections under bounded
//!   memory — bounded line buffers, write-side backpressure, a
//!   connection cap, and accept-error backoff.
//! * **Robustness** ([`guard`], [`fault`]) — propose-lease timeouts and
//!   pending-ticket caps ([`SessionLimits`]) reclaim tickets from vanished
//!   clients deterministically (the lease clock is WAL-logged, so replay
//!   expires exactly what the live run expired); a connection guard
//!   ([`ClientPolicy`]) screens untrusted clients with auth tokens and
//!   per-session rate limits; transient store faults are retried with
//!   bounded backoff ([`RetryPolicy`]) and torn trailing WAL records are
//!   truncated-and-scrubbed on replay.  [`FaultyStore`] injects scripted
//!   faults to rehearse all of it.
//! * **Observability** ([`metrics`], [`log`]) — a [`MetricsRegistry`] of
//!   atomic counters and log-bucketed latency histograms instrumented at
//!   every hot path, a per-session ground-truth-free
//!   [`diagnostics`](Session::diagnostics) report (ESS, weight variance,
//!   label allocation), and a structured JSONL [`EventLog`]
//!   (`oasis-serve --log-json`).
//!
//! ## Quick example
//!
//! ```
//! use oasis::{OasisConfig, SamplerMethod, ScoredPool};
//! use oasis_engine::{Engine, LabelSource};
//!
//! let engine = Engine::new();
//! engine
//!     .load_pool(
//!         "demo",
//!         ScoredPool::new(vec![0.9, 0.8, 0.2, 0.1], vec![true, true, false, false]).unwrap(),
//!     )
//!     .unwrap();
//! engine
//!     .create_session(
//!         "s1",
//!         "demo",
//!         SamplerMethod::Oasis,
//!         OasisConfig::default().with_strata_count(2),
//!         42,
//!         LabelSource::external(4),
//!     )
//!     .unwrap();
//!
//! // Suspend at a label request…
//! let session = engine.session("s1").unwrap();
//! let tickets = session.lock().propose(1).unwrap();
//! // …a human labels the pair out of band…
//! let answers: Vec<(u64, bool)> = tickets.iter().map(|t| (t.id, true)).collect();
//! // …and the session resumes.
//! session.lock().apply_labels(&answers).unwrap();
//! assert_eq!(session.lock().estimate().iterations, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod checkpoint;
mod engine;
pub mod error;
pub mod fault;
pub mod guard;
pub mod log;
pub mod metrics;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
mod session;
pub mod store;
pub mod wal;

pub use checkpoint::{pool_fingerprint, OracleCheckpoint, SessionCheckpoint, CHECKPOINT_FORMAT};
pub use engine::{Engine, ReplayReport, RetryPolicy, SessionJob, SessionOverview};
pub use error::{EngineError, EngineResult};
pub use fault::{FaultKind, FaultyStore, StoreOp};
pub use guard::{ClientPolicy, ConnState};
pub use log::{EventLog, LogFormat};
pub use metrics::{Clock, Counter, LatencyHistogram, ManualClock, MetricsRegistry, MonotonicClock};
#[cfg(target_os = "linux")]
pub use reactor::{
    serve_listener_evented, serve_listener_evented_with_config, serve_tcp_evented,
    serve_tcp_evented_guarded, ReactorConfig,
};
pub use session::{LabelSource, Session, SessionLimits, Ticket};
pub use store::{CheckpointStore, FsCheckpointStore, STORE_FORMAT};
pub use wal::{WalEntry, WalParseOutcome, WalRecord};

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for the crate's unit tests — a thin Arc-wrapping shim
    //! over `oasis::test_fixtures` (pulled in through the `test-util`
    //! dev-dependency feature), so the synthetic pool generator lives in
    //! exactly one place.

    use oasis::ScoredPool;
    use std::sync::Arc;

    /// A deterministic imbalanced pool plus its hidden truth: scores
    /// correlate with (but don't perfectly predict) the labels, the regime
    /// OASIS targets.  Same stream as `oasis::test_fixtures::pool_and_truth`.
    pub(crate) fn pool_and_truth(
        n: usize,
        seed: u64,
        match_rate: f64,
    ) -> (Arc<ScoredPool>, Vec<bool>) {
        let (pool, truth) = oasis::test_fixtures::pool_and_truth(n, seed, match_rate);
        (Arc::new(pool), truth)
    }
}
