//! Property-based tests of the ER substrate's invariants.

use er_core::datasets::corruption::{corrupt_text, corrupt_values, CorruptionConfig};
use er_core::datasets::score_model::{DirectPoolConfig, DirectPoolModel};
use er_core::normalize::normalize_text;
use er_core::record::FieldValue;
use er_core::similarity::{
    jaro_similarity, jaro_winkler_similarity, levenshtein_distance, levenshtein_similarity,
    ngram_jaccard, normalized_numeric_similarity, token_jaccard, TfIdfVectorizer,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named string-similarity measure under test.
type NamedMeasure = (&'static str, fn(&str, &str) -> f64);

/// A strategy over short "record-field-like" strings: words of lowercase
/// letters and digits separated by spaces.
fn field_text() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-z0-9]{1,8}", 0..6).prop_map(|words| words.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ----- similarity measures -----

    #[test]
    fn similarities_are_bounded_symmetric_and_reflexive(a in field_text(), b in field_text()) {
        let measures: Vec<NamedMeasure> = vec![
            ("levenshtein", levenshtein_similarity),
            ("jaro", jaro_similarity),
            ("jaro_winkler", jaro_winkler_similarity),
            ("token_jaccard", token_jaccard),
        ];
        for (name, f) in measures {
            let ab = f(&a, &b);
            let ba = f(&b, &a);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ab), "{name}({a:?},{b:?}) = {ab}");
            prop_assert!((ab - ba).abs() < 1e-9, "{name} asymmetric on ({a:?},{b:?})");
            let aa = f(&a, &a);
            prop_assert!((aa - 1.0).abs() < 1e-9, "{name}({a:?},{a:?}) = {aa}");
        }
        for n in 1..=4usize {
            let ab = ngram_jaccard(&a, &b, n);
            prop_assert!((0.0..=1.0).contains(&ab));
            prop_assert!((ngram_jaccard(&a, &a, n) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn levenshtein_is_a_metric_on_small_strings(
        a in "[a-c]{0,6}", b in "[a-c]{0,6}", c in "[a-c]{0,6}",
    ) {
        let dab = levenshtein_distance(&a, &b);
        let dba = levenshtein_distance(&b, &a);
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(levenshtein_distance(&a, &a), 0);
        // Triangle inequality.
        let dac = levenshtein_distance(&a, &c);
        let dcb = levenshtein_distance(&c, &b);
        prop_assert!(dab <= dac + dcb);
        // Upper bound by the longer string length.
        prop_assert!(dab <= a.chars().count().max(b.chars().count()));
    }

    #[test]
    fn numeric_similarity_bounded_and_symmetric(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let s = normalized_numeric_similarity(a, b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - normalized_numeric_similarity(b, a)).abs() < 1e-12);
        prop_assert_eq!(normalized_numeric_similarity(a, a), 1.0);
    }

    #[test]
    fn tfidf_cosine_bounded_and_reflexive(docs in prop::collection::vec(field_text(), 1..8)) {
        let vectorizer = TfIdfVectorizer::fit(&docs);
        for a in &docs {
            for b in &docs {
                let sim = vectorizer.cosine_similarity(a, b);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&sim));
                prop_assert!((sim - vectorizer.cosine_similarity(b, a)).abs() < 1e-9);
            }
            prop_assert!(vectorizer.cosine_similarity(a, a) > 1.0 - 1e-9);
        }
    }

    // ----- normalisation -----

    #[test]
    fn normalised_text_is_idempotent_and_clean(input in ".{0,60}") {
        let once = normalize_text(&input);
        let twice = normalize_text(&once);
        prop_assert_eq!(&once, &twice, "normalisation must be idempotent");
        prop_assert!(!once.starts_with(' ') && !once.ends_with(' '));
        prop_assert!(!once.contains("  "), "no double spaces in {once:?}");
        for c in once.chars() {
            prop_assert!(c.is_alphanumeric() || c == ' ', "unexpected char {c:?} in {once:?}");
            prop_assert!(!c.is_uppercase());
        }
    }

    // ----- corruption -----

    #[test]
    fn corruption_never_produces_empty_text_and_respects_field_kinds(
        text in prop::collection::vec("[a-z]{2,8}", 1..6).prop_map(|w| w.join(" ")),
        price in 1.0f64..1000.0,
        intensity in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = CorruptionConfig::with_intensity(intensity);
        let corrupted_text = corrupt_text(&text, &config, &mut rng);
        prop_assert!(!corrupted_text.is_empty());

        let values = vec![FieldValue::Text(text.clone()), FieldValue::Number(price)];
        let corrupted = corrupt_values(&values, &config, &mut rng);
        prop_assert_eq!(corrupted.len(), 2);
        match &corrupted[1] {
            FieldValue::Number(x) => {
                // Numeric noise is bounded by the configured relative amount.
                prop_assert!((x - price).abs() <= price * config.numeric_noise + 1e-9);
            }
            FieldValue::Missing => {}
            FieldValue::Text(_) => prop_assert!(false, "numbers never become text"),
        }
    }

    // ----- direct pool model -----

    #[test]
    fn direct_pools_always_have_exact_match_counts_and_valid_scores(
        pool_size in 10usize..2000,
        match_fraction in 0.0f64..=0.5,
        uncalibrated in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let match_count = ((pool_size as f64 * match_fraction) as usize).min(pool_size);
        let config = DirectPoolConfig {
            pool_size,
            match_count,
            match_logit_mean: 1.0,
            non_match_logit_mean: -3.0,
            logit_noise: 1.5,
            decision_threshold: 0.5,
            uncalibrated_scores: uncalibrated,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let (pool, truth) = DirectPoolModel::new(config).generate(&mut rng);
        prop_assert_eq!(pool.len(), pool_size);
        prop_assert_eq!(truth.iter().filter(|&&t| t).count(), match_count);
        prop_assert!(pool.scores().iter().all(|s| s.is_finite()));
        if !uncalibrated {
            prop_assert!(pool.scores_are_probabilities());
        }
    }
}
