//! Comparing ER classifiers with a fixed labelling budget.
//!
//! A common question for practitioners: "which of my candidate matchers is
//! better, and can I tell without labelling the whole pool?"  This example
//! trains all five classifier families of the paper's Figure 5 on the same
//! synthetic Abt-Buy-style dataset, evaluates each with OASIS under a fixed
//! label budget, and compares the estimates with the exhaustive truth.
//!
//! Run with: `cargo run --release --example classifier_comparison`

use er_core::datasets::DatasetProfile;
use experiments::pools::{pipeline_pool, ClassifierKind};
use oasis::oracle::{GroundTruthOracle, Oracle};
use oasis::samplers::{InteractiveSampler, OasisConfig, OasisSampler, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let profile = DatasetProfile::abt_buy();
    let scale = 0.05; // ~2,700 candidate pairs; raise towards 1.0 for the full pool
    let budget = 250;
    println!(
        "Comparing classifiers on a synthetic {} pool at scale {scale} with {budget} labels each\n",
        profile.name
    );
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12}",
        "Model", "true F1/2", "OASIS est.", "abs. error", "labels used"
    );

    for (index, kind) in ClassifierKind::all().into_iter().enumerate() {
        let result = pipeline_pool(&profile, scale, kind, true, 100 + index as u64)
            .expect("Abt-Buy has a record-level generator");
        let pool = result.experiment_pool;
        let mut rng = StdRng::seed_from_u64(7 + index as u64);
        let mut oracle = GroundTruthOracle::new(pool.truth.clone());
        let mut sampler = OasisSampler::new(
            &pool.pool,
            OasisConfig::default()
                .with_strata_count(30)
                .with_score_threshold(pool.score_threshold),
        )
        .expect("valid configuration");
        sampler
            .run_until_budget(&pool.pool, &mut oracle, &mut rng, budget, 1_000_000)
            .expect("sampling succeeds");
        let estimate = sampler.estimate().to_measures();
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>12.3} {:>12}",
            kind.label(),
            pool.true_f_measure,
            estimate.f_measure,
            (estimate.f_measure - pool.true_f_measure).abs(),
            oracle.labels_consumed()
        );
    }

    println!(
        "\nEach evaluation used {budget} labels instead of the thousands an exhaustive pass would need."
    );
}
