//! Property-based tests of the OASIS crate's core invariants.

use oasis::bayes::BetaBernoulliModel;
use oasis::diagnostics::kl_divergence;
use oasis::estimator::AisEstimator;
use oasis::instrumental::{
    epsilon_greedy, normalise_or_uniform, optimal_mass, pointwise_optimal, stratified_optimal,
};
use oasis::measures::{exhaustive_measures, ConfusionCounts};
use oasis::oracle::{GroundTruthOracle, Oracle};
use oasis::pool::ScoredPool;
use oasis::samplers::{
    AnySampler, InteractiveSampler, OasisConfig, OasisSampler, PassiveSampler, Sampler,
    SamplerMethod, SamplerState, StratifiedSampler, TrackedSampler,
};
use oasis::strata::{CsfStratifier, EqualSizeStratifier, Stratifier};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::{FromJson, Json, ToJson};

/// Strategy: a pool of (score, prediction, truth) triples with scores in [0, 1].
fn pool_strategy(
    min_len: usize,
    max_len: usize,
) -> impl Strategy<Value = (Vec<f64>, Vec<bool>, Vec<bool>)> {
    prop::collection::vec(
        (0.0f64..=1.0, any::<bool>(), any::<bool>()),
        min_len..max_len,
    )
    .prop_map(|items| {
        let scores = items.iter().map(|(s, _, _)| *s).collect();
        let predictions = items.iter().map(|(_, p, _)| *p).collect();
        let truth = items.iter().map(|(_, _, t)| *t).collect();
        (scores, predictions, truth)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----- measures -----

    #[test]
    fn f_measure_always_within_unit_interval(
        (scores, predictions, truth) in pool_strategy(1, 200),
        alpha in 0.0f64..=1.0,
    ) {
        let _ = scores;
        let m = exhaustive_measures(&predictions, &truth, alpha);
        prop_assert!((0.0..=1.0).contains(&m.f_measure));
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
    }

    #[test]
    fn f_measure_is_between_precision_and_recall(
        (_, predictions, truth) in pool_strategy(1, 200),
    ) {
        let m = exhaustive_measures(&predictions, &truth, 0.5);
        let lo = m.precision.min(m.recall);
        let hi = m.precision.max(m.recall);
        // F_{1/2} is the harmonic mean, hence between precision and recall
        // (when both are defined; undefined values map to 0 and the bound
        // still holds with slack for that edge case).
        prop_assert!(m.f_measure <= hi + 1e-12);
        if m.precision > 0.0 && m.recall > 0.0 {
            prop_assert!(m.f_measure >= lo - 1e-12);
        }
    }

    #[test]
    fn confusion_counts_scale_invariance(
        tp in 0.0f64..100.0, fp in 0.0f64..100.0, fn_ in 0.0f64..100.0,
        scale in 0.1f64..10.0, alpha in 0.0f64..=1.0,
    ) {
        let counts = ConfusionCounts { tp, fp, fn_, tn: 5.0 };
        let scaled = ConfusionCounts { tp: tp * scale, fp: fp * scale, fn_: fn_ * scale, tn: 5.0 * scale };
        match (counts.f_measure(alpha), scaled.f_measure(alpha)) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "definedness must be scale-invariant"),
        }
    }

    // ----- estimator -----

    #[test]
    fn ais_estimator_with_unit_weights_matches_exhaustive(
        (_, predictions, truth) in pool_strategy(1, 200),
        alpha in 0.0f64..=1.0,
    ) {
        let mut est = AisEstimator::new(alpha);
        for (&p, &t) in predictions.iter().zip(truth.iter()) {
            est.observe(1.0, p, t);
        }
        let expected = exhaustive_measures(&predictions, &truth, alpha);
        if let Some(f) = est.f_measure() {
            prop_assert!((f - expected.f_measure).abs() < 1e-9);
        }
    }

    #[test]
    fn ais_estimate_stays_in_unit_interval_for_positive_weights(
        observations in prop::collection::vec((0.001f64..100.0, any::<bool>(), any::<bool>()), 1..300),
        alpha in 0.0f64..=1.0,
    ) {
        let mut est = AisEstimator::new(alpha);
        for &(w, p, t) in &observations {
            est.observe(w, p, t);
        }
        if let Some(f) = est.f_measure() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&f), "f = {f}");
        }
        if let Some(p) = est.precision() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
        }
        if let Some(r) = est.recall() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r));
        }
    }

    // ----- instrumental distributions -----

    #[test]
    fn optimal_mass_is_nonnegative_and_finite(
        prediction in any::<bool>(),
        p in -0.5f64..1.5,
        f in -0.5f64..1.5,
        alpha in 0.0f64..=1.0,
    ) {
        let mass = optimal_mass(prediction, p, f, alpha);
        prop_assert!(mass.is_finite());
        prop_assert!(mass >= 0.0);
    }

    #[test]
    fn stratified_optimal_is_normalised(
        strata in prop::collection::vec((0.01f64..1.0, 0.0f64..=1.0, 0.0f64..=1.0), 1..50),
        f in 0.0f64..=1.0,
        alpha in 0.0f64..=1.0,
    ) {
        let raw_weights: Vec<f64> = strata.iter().map(|(w, _, _)| *w).collect();
        let weights = normalise_or_uniform(&raw_weights);
        let lambdas: Vec<f64> = strata.iter().map(|(_, l, _)| *l).collect();
        let pis: Vec<f64> = strata.iter().map(|(_, _, p)| *p).collect();
        let v = stratified_optimal(&weights, &lambdas, &pis, f, alpha);
        let total: f64 = v.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        prop_assert!(v.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn epsilon_greedy_lower_bounds_every_entry(
        weights in prop::collection::vec(0.01f64..1.0, 1..50),
        epsilon in 0.0001f64..=1.0,
    ) {
        let underlying = normalise_or_uniform(&weights);
        // Adversarial optimal distribution: all mass on index 0.
        let mut optimal = vec![0.0; underlying.len()];
        optimal[0] = 1.0;
        let mixed = epsilon_greedy(&underlying, &optimal, epsilon);
        for (i, (&m, &u)) in mixed.iter().zip(underlying.iter()).enumerate() {
            prop_assert!(m >= epsilon * u - 1e-15, "entry {i} starved");
        }
        let total: f64 = mixed.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pointwise_optimal_is_normalised(
        items in prop::collection::vec((any::<bool>(), 0.0f64..=1.0), 1..200),
        f in 0.0f64..=1.0,
    ) {
        let predictions: Vec<bool> = items.iter().map(|(p, _)| *p).collect();
        let probabilities: Vec<f64> = items.iter().map(|(_, q)| *q).collect();
        let q = pointwise_optimal(&predictions, &probabilities, f, 0.5);
        let total: f64 = q.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    // ----- KL divergence -----

    #[test]
    fn kl_divergence_nonnegative_and_zero_on_self(
        weights in prop::collection::vec(0.01f64..1.0, 1..50),
    ) {
        let p = normalise_or_uniform(&weights);
        prop_assert!(kl_divergence(&p, &p).abs() < 1e-12);
        let q = normalise_or_uniform(&weights.iter().rev().cloned().collect::<Vec<_>>());
        prop_assert!(kl_divergence(&p, &q) >= -1e-12);
    }

    // ----- Bayesian model -----

    #[test]
    fn posterior_means_stay_in_unit_interval(
        guesses in prop::collection::vec(0.0f64..=1.0, 1..30),
        eta in 0.1f64..100.0,
        observations in prop::collection::vec((0usize..30, any::<bool>()), 0..200),
        decay in any::<bool>(),
    ) {
        let mut model = BetaBernoulliModel::from_prior_guess(&guesses, eta, decay).unwrap();
        for &(stratum, label) in &observations {
            if stratum < guesses.len() {
                model.observe(stratum, label);
            }
        }
        for k in 0..model.strata_count() {
            let mean = model.posterior_mean(k);
            prop_assert!((0.0..=1.0).contains(&mean), "stratum {k} mean {mean}");
            prop_assert!(model.posterior_variance(k) >= 0.0);
        }
    }

    #[test]
    fn posterior_mean_converges_to_empirical_rate(
        rate_num in 0usize..=20,
        observations in 50usize..200,
    ) {
        let rate = rate_num as f64 / 20.0;
        let mut model = BetaBernoulliModel::from_prior_guess(&[0.5], 2.0, false).unwrap();
        let positives = (observations as f64 * rate).round() as usize;
        for i in 0..observations {
            model.observe(0, i < positives);
        }
        let empirical = positives as f64 / observations as f64;
        prop_assert!((model.posterior_mean(0) - empirical).abs() < 0.05);
    }

    // ----- stratification -----

    #[test]
    fn csf_stratification_is_a_partition(
        (scores, predictions, _) in pool_strategy(2, 300),
        k in 1usize..40,
    ) {
        let pool = ScoredPool::new(scores, predictions).unwrap();
        let strata = CsfStratifier::new(k).stratify(&pool).unwrap();
        let mut seen = vec![false; pool.len()];
        for s in 0..strata.len() {
            for &i in strata.members(s) {
                prop_assert!(!seen[i], "item {i} in two strata");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some item unallocated");
        prop_assert!(strata.len() <= k);
        let weight_sum: f64 = strata.weights().iter().sum();
        prop_assert!((weight_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equal_size_stratification_is_balanced_partition(
        (scores, predictions, _) in pool_strategy(2, 300),
        k in 1usize..40,
    ) {
        let pool = ScoredPool::new(scores, predictions).unwrap();
        let strata = EqualSizeStratifier::new(k).stratify(&pool).unwrap();
        let sizes: Vec<usize> = (0..strata.len()).map(|s| strata.size(s)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes {sizes:?}");
        prop_assert_eq!(sizes.iter().sum::<usize>(), pool.len());
    }

    // ----- samplers -----

    #[test]
    fn oasis_importance_weights_are_bounded_by_one_over_epsilon(
        (scores, predictions, truth) in pool_strategy(5, 150),
        epsilon in 0.01f64..=1.0,
        seed in any::<u64>(),
    ) {
        let pool = ScoredPool::new(scores, predictions).unwrap();
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(seed);
        let config = OasisConfig::default()
            .with_strata_count(5)
            .with_epsilon(epsilon);
        let mut sampler = OasisSampler::new(&pool, config).unwrap();
        for _ in 0..30 {
            let outcome = sampler.step(&pool, &mut oracle, &mut rng).unwrap();
            // w = ω_k / v_k ≤ ω_k / (ε ω_k) = 1/ε  (paper, proof of Theorem 3)
            prop_assert!(outcome.weight <= 1.0 / epsilon + 1e-9,
                "weight {} exceeds 1/ε = {}", outcome.weight, 1.0 / epsilon);
            prop_assert!(outcome.weight > 0.0);
        }
    }

    #[test]
    fn samplers_never_exceed_pool_bounds_and_respect_budget_accounting(
        (scores, predictions, truth) in pool_strategy(3, 100),
        seed in any::<u64>(),
    ) {
        let pool = ScoredPool::new(scores, predictions).unwrap();
        let n = pool.len();
        let mut rng = StdRng::seed_from_u64(seed);

        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut passive = PassiveSampler::new(0.5);
        let mut stratified = StratifiedSampler::new(&pool, 0.5, 5).unwrap();
        let mut oasis = OasisSampler::new(&pool, OasisConfig::default().with_strata_count(5)).unwrap();
        for _ in 0..40 {
            let a = passive.step(&pool, &mut oracle, &mut rng).unwrap();
            let b = stratified.step(&pool, &mut oracle, &mut rng).unwrap();
            let c = oasis.step(&pool, &mut oracle, &mut rng).unwrap();
            prop_assert!(a.item < n && b.item < n && c.item < n);
        }
        // Budget accounting: distinct labels ≤ min(pool size, total queries).
        prop_assert!(oracle.labels_consumed() <= n);
        prop_assert!(oracle.labels_consumed() <= oracle.queries_issued());
        prop_assert_eq!(oracle.queries_issued(), 120);
    }

    #[test]
    fn exhausting_the_pool_recovers_exact_measures_for_oasis(
        (scores, predictions, truth) in pool_strategy(3, 60),
        seed in any::<u64>(),
    ) {
        // With enough iterations on a small pool every item gets labelled; the
        // OASIS estimate must then be close to the exact pool F-measure
        // (consistency, Theorem 3, in its finite-pool form).
        let pool = ScoredPool::new(scores, predictions.clone()).unwrap();
        let target = exhaustive_measures(&predictions, &truth, 0.5);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(seed);
        let config = OasisConfig::default().with_strata_count(4).with_epsilon(0.2);
        let mut sampler = OasisSampler::new(&pool, config).unwrap();
        let iterations = pool.len() * 400;
        let est = sampler.run(&pool, &mut oracle, &mut rng, iterations).unwrap();
        if target.f_measure > 0.0 {
            prop_assert!((est.to_measures().f_measure - target.f_measure).abs() < 0.25,
                "estimate {} vs target {}", est.to_measures().f_measure, target.f_measure);
        }
    }

    // ----- the InteractiveSampler contract, for all four methods -----

    /// Same seed ⇒ a `Sampler::step` loop and a propose/apply-label driver
    /// produce bit-identical draws, weights and estimates.  This is the
    /// invariant the engine's session layer (and therefore `oasis-serve`)
    /// rests on, checked for every method.
    #[test]
    fn propose_apply_matches_step_bitwise_for_every_method(
        (scores, predictions, truth) in pool_strategy(20, 120),
        seed in any::<u64>(),
        steps in 1usize..60,
    ) {
        let pool = ScoredPool::new(scores, predictions).unwrap();
        let config = OasisConfig::default().with_strata_count(4);
        for method in SamplerMethod::ALL {
            let mut stepped = AnySampler::build(method, &pool, &config).unwrap();
            let mut driven = AnySampler::build(method, &pool, &config).unwrap();
            let mut rng_step = StdRng::seed_from_u64(seed);
            let mut rng_drive = StdRng::seed_from_u64(seed);
            let mut oracle = GroundTruthOracle::new(truth.clone());
            for _ in 0..steps {
                let outcome = stepped.step(&pool, &mut oracle, &mut rng_step).unwrap();
                let proposal = driven.propose(&pool, &mut rng_drive);
                prop_assert_eq!(outcome.item, proposal.item, "{}", method);
                prop_assert_eq!(
                    outcome.weight.to_bits(), proposal.weight.to_bits(), "{}", method
                );
                // The oracle consumed one extra RNG-free query on the step
                // side; mirror its label without touching the drive stream.
                driven.apply_label(&proposal, truth[proposal.item]);
                // Keep the two RNG streams aligned: GroundTruthOracle does
                // not draw from the RNG, so nothing else to consume.
            }
            let a = stepped.estimate();
            let b = driven.estimate();
            prop_assert_eq!(a.f_measure.to_bits(), b.f_measure.to_bits(), "{}", method);
            prop_assert_eq!(a.precision.to_bits(), b.precision.to_bits(), "{}", method);
            prop_assert_eq!(a.recall.to_bits(), b.recall.to_bits(), "{}", method);
            prop_assert_eq!(a.iterations, b.iterations, "{}", method);
        }
    }

    /// `propose_batch` is bit-identical to repeated `propose` on the same
    /// RNG stream, for every method (the adaptive sampler refreshes its
    /// distribution once per batch; the static ones trivially agree).
    #[test]
    fn propose_batch_matches_singles_bitwise_for_every_method(
        (scores, predictions, _) in pool_strategy(20, 120),
        seed in any::<u64>(),
        count in 0usize..40,
    ) {
        let pool = ScoredPool::new(scores, predictions).unwrap();
        let config = OasisConfig::default().with_strata_count(4);
        for method in SamplerMethod::ALL {
            let mut batched = AnySampler::build(method, &pool, &config).unwrap();
            let mut single = AnySampler::build(method, &pool, &config).unwrap();
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let batch = batched.propose_batch(&pool, &mut rng_a, count);
            prop_assert_eq!(batch.len(), count);
            for proposal in batch {
                let reference = single.propose(&pool, &mut rng_b);
                prop_assert_eq!(proposal.item, reference.item, "{}", method);
                prop_assert_eq!(proposal.stratum, reference.stratum, "{}", method);
                prop_assert_eq!(
                    proposal.weight.to_bits(), reference.weight.to_bits(), "{}", method
                );
            }
        }
    }

    /// Checkpoint/restore round trip through the tagged state's JSON text:
    /// the restored sampler continues bit-identically to one that never
    /// stopped, for every method.
    #[test]
    fn tagged_state_json_round_trip_resumes_bitwise_for_every_method(
        (scores, predictions, truth) in pool_strategy(20, 120),
        seed in any::<u64>(),
        cut in 1usize..40,
    ) {
        let pool = ScoredPool::new(scores, predictions).unwrap();
        let config = OasisConfig::default().with_strata_count(4);
        for method in SamplerMethod::ALL {
            let mut sampler = AnySampler::build(method, &pool, &config).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut oracle = GroundTruthOracle::new(truth.clone());
            for _ in 0..cut {
                sampler.step(&pool, &mut oracle, &mut rng).unwrap();
            }
            let text = sampler.state().to_json().render();
            let parsed = SamplerState::from_json(&Json::parse(&text).unwrap()).unwrap();
            prop_assert_eq!(parsed.method(), method);
            let mut restored = AnySampler::from_state(&pool, parsed).unwrap();

            // Continue both with identical RNG streams and oracles.
            let mut rng_a = StdRng::seed_from_u64(seed ^ 0x5eed);
            let mut rng_b = StdRng::seed_from_u64(seed ^ 0x5eed);
            let mut oracle_a = GroundTruthOracle::new(truth.clone());
            let mut oracle_b = GroundTruthOracle::new(truth.clone());
            for _ in 0..20 {
                let a = sampler.step(&pool, &mut oracle_a, &mut rng_a).unwrap();
                let b = restored.step(&pool, &mut oracle_b, &mut rng_b).unwrap();
                prop_assert_eq!(a.item, b.item, "{}", method);
                prop_assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{}", method);
            }
            let ea = sampler.estimate();
            let eb = restored.estimate();
            prop_assert_eq!(ea.f_measure.to_bits(), eb.f_measure.to_bits(), "{}", method);
            prop_assert_eq!(ea.iterations, eb.iterations, "{}", method);
        }
    }

    /// Confidence intervals survive resume: for every method, the
    /// `confidence_interval(0.95)` of a tracked sampler that is checkpointed
    /// mid-run, serialized to JSON text, restored and continued is
    /// bit-identical to the interval of a run that never stopped.
    #[test]
    fn confidence_interval_survives_checkpoint_restore_for_every_method(
        (scores, predictions, truth) in pool_strategy(20, 120),
        seed in any::<u64>(),
        cut in 1usize..40,
        tail in 2usize..30,
    ) {
        let pool = ScoredPool::new(scores, predictions).unwrap();
        let config = OasisConfig::default().with_strata_count(4);
        for method in SamplerMethod::ALL {
            let inner = AnySampler::build(method, &pool, &config).unwrap();
            let mut uninterrupted = TrackedSampler::new(inner, config.alpha);
            let inner = AnySampler::build(method, &pool, &config).unwrap();
            let mut resumed = TrackedSampler::new(inner, config.alpha);

            // Both runs share one RNG stream per arm, seeded identically; the
            // resumed arm crosses a JSON checkpoint boundary at `cut`.
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut oracle_a = GroundTruthOracle::new(truth.clone());
            let mut oracle_b = GroundTruthOracle::new(truth.clone());
            for _ in 0..cut {
                uninterrupted.step(&pool, &mut oracle_a, &mut rng_a).unwrap();
                resumed.step(&pool, &mut oracle_b, &mut rng_b).unwrap();
            }

            let text = resumed.state().to_json().render();
            let parsed = SamplerState::from_json(&Json::parse(&text).unwrap()).unwrap();
            let mut resumed = TrackedSampler::<AnySampler>::from_state(&pool, parsed).unwrap();
            prop_assert!(resumed.tracker_complete(), "{}", method);

            for _ in 0..tail {
                uninterrupted.step(&pool, &mut oracle_a, &mut rng_a).unwrap();
                resumed.step(&pool, &mut oracle_b, &mut rng_b).unwrap();
            }
            prop_assert_eq!(
                uninterrupted.tracker().count(), resumed.tracker().count(), "{}", method
            );
            match (
                uninterrupted.confidence_interval(0.95),
                resumed.confidence_interval(0.95),
            ) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "{}", method);
                    prop_assert_eq!(a.lower.to_bits(), b.lower.to_bits(), "{}", method);
                    prop_assert_eq!(a.upper.to_bits(), b.upper.to_bits(), "{}", method);
                    prop_assert_eq!(
                        a.standard_error.to_bits(), b.standard_error.to_bits(), "{}", method
                    );
                }
                (None, None) => {}
                (a, b) => prop_assert!(
                    false, "{}: interval definedness diverged: {:?} vs {:?}", method, a, b
                ),
            }
        }
    }
}
