//! Deterministic-seed regression tests: a fixed seed on a fixed pool must
//! reproduce the same estimates run after run, guarding against silent
//! RNG-stream drift (a re-seeded generator, a reordered draw, a changed
//! stratification tie-break all show up here as a loud failure).

use er_core::datasets::score_model::{DirectPoolConfig, DirectPoolModel};
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::{OasisConfig, OasisSampler, Sampler};
use oasis::Estimate;
use oasis_engine::{LabelSource, Session, SessionCheckpoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The fixed synthetic pool every run of these tests evaluates against.
fn fixed_pool() -> (oasis::ScoredPool, Vec<bool>) {
    let config = DirectPoolConfig {
        pool_size: 4000,
        match_count: 60,
        match_logit_mean: 1.2,
        non_match_logit_mean: -3.0,
        logit_noise: 1.4,
        decision_threshold: 0.5,
        uncalibrated_scores: false,
    };
    let mut rng = StdRng::seed_from_u64(90210);
    DirectPoolModel::new(config).generate(&mut rng)
}

/// One complete OASIS run with a fixed sampling seed.
fn run_oasis(seed: u64) -> Estimate {
    let (pool, truth) = fixed_pool();
    let mut oracle = GroundTruthOracle::new(truth);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler =
        OasisSampler::new(&pool, OasisConfig::default().with_strata_count(25)).unwrap();
    sampler
        .run_until_budget(&pool, &mut oracle, &mut rng, 700, 1_000_000)
        .unwrap()
}

#[test]
fn same_seed_reproduces_the_estimate_exactly() {
    let first = run_oasis(42);
    let second = run_oasis(42);
    assert!(first.is_defined());
    assert!(
        (first.f_measure - second.f_measure).abs() <= 1e-9,
        "same-seed F-measure drifted: {} vs {}",
        first.f_measure,
        second.f_measure
    );
    assert!((first.precision - second.precision).abs() <= 1e-9);
    assert!((first.recall - second.recall).abs() <= 1e-9);
}

#[test]
fn different_seeds_explore_different_streams() {
    // Complements the reproducibility check: the seed genuinely steers the
    // sampling path, so identical estimates cannot come from a sampler that
    // ignores its RNG.
    let a = run_oasis(42);
    let b = run_oasis(43);
    assert!(
        (a.f_measure - b.f_measure).abs() > 0.0,
        "two seeds produced bit-identical estimates; is the RNG being used?"
    );
}

/// An engine session on the fixed pool with the given seed.
fn engine_session(seed: u64) -> Session {
    let (pool, truth) = fixed_pool();
    Session::new(
        "determinism",
        "fixed",
        Arc::new(pool),
        oasis::SamplerMethod::Oasis,
        OasisConfig::default().with_strata_count(25),
        seed,
        LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
    )
    .unwrap()
}

#[test]
fn engine_session_reproduces_the_library_run_exactly() {
    // The engine's session layer must not perturb the RNG stream: a session
    // with seed s lands on the very same bits as the library loop with seed s.
    let library = run_oasis(42);
    let mut session = engine_session(42);
    let estimate = session
        .run_until_budget(700, 1_000_000)
        .expect("session run");
    assert_eq!(estimate.f_measure.to_bits(), library.f_measure.to_bits());
    assert_eq!(estimate.precision.to_bits(), library.precision.to_bits());
    assert_eq!(estimate.recall.to_bits(), library.recall.to_bits());
    assert_eq!(estimate.iterations, library.iterations);
}

#[test]
fn interrupted_checkpoint_resume_is_bit_identical_to_uninterrupted() {
    // Uninterrupted reference: 600 steps straight through.
    let mut straight = engine_session(2017);
    let expected = straight.step(600).expect("straight run");

    // Interrupted at step 217 (deliberately not a round number): snapshot to
    // JSON text, drop everything, restore, continue.
    let mut interrupted = engine_session(2017);
    interrupted.step(217).expect("first leg");
    let checkpoint_text = interrupted.checkpoint().to_json_string();
    drop(interrupted);

    let (pool, _) = fixed_pool();
    let checkpoint = SessionCheckpoint::from_json_string(&checkpoint_text).expect("parse");
    let mut resumed = Session::restore(checkpoint, Arc::new(pool)).expect("restore");
    let estimate = resumed.step(600 - 217).expect("second leg");

    assert_eq!(
        estimate.f_measure.to_bits(),
        expected.f_measure.to_bits(),
        "resumed F-measure drifted: {} vs {}",
        estimate.f_measure,
        expected.f_measure
    );
    assert_eq!(estimate.precision.to_bits(), expected.precision.to_bits());
    assert_eq!(estimate.recall.to_bits(), expected.recall.to_bits());
    assert_eq!(estimate.iterations, expected.iterations);
    assert_eq!(resumed.labels_consumed(), straight.labels_consumed());
}

#[test]
fn double_checkpointing_changes_nothing() {
    // Checkpointing is read-only: snapshot twice, interleaved with a resumed
    // copy, and all three runs land on the same bits.
    let mut session = engine_session(9);
    session.step(100).unwrap();
    let first = session.checkpoint().to_json_string();
    let second = session.checkpoint().to_json_string();
    assert_eq!(first, second, "checkpoint must not mutate the session");
    let continued = session.step(100).unwrap();

    let (pool, _) = fixed_pool();
    let mut resumed = Session::restore(
        SessionCheckpoint::from_json_string(&first).unwrap(),
        Arc::new(pool),
    )
    .unwrap();
    let resumed_estimate = resumed.step(100).unwrap();
    assert_eq!(
        continued.f_measure.to_bits(),
        resumed_estimate.f_measure.to_bits()
    );
}

#[test]
fn pinned_seed_reproduces_the_golden_estimate() {
    // Golden value recorded when the workspace was bootstrapped. It changes
    // only if the RNG stream, the stratification, or the sampling logic
    // changes — all of which must be deliberate, reviewed decisions. Update
    // the constant (and say why in the commit) if such a change is intended.
    const GOLDEN_F_MEASURE: f64 = 0.510022036087039;
    let estimate = run_oasis(2017);
    assert!(
        (estimate.f_measure - GOLDEN_F_MEASURE).abs() <= 1e-9,
        "RNG-stream drift: golden {GOLDEN_F_MEASURE:.12} vs observed {:.12}",
        estimate.f_measure
    );
}
