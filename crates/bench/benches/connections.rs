//! Bench: evented-server connection scaling — steps/sec and p99 request
//! latency for a fixed pool of active clients while 1k / 10k *additional*
//! idle connections are parked on the reactor.
//!
//! The container's fd limit cannot hold both ends of 10k connections in
//! one process, so the client side runs in a child process: this binary
//! re-executes itself (`OASIS_CONNECTIONS_CLIENT=<addr>`) as a traffic
//! generator that parks the idle connections, drives `create_session` /
//! `step` traffic over the active ones, and prints one JSON line of
//! results on stdout.  The parent merges the headline numbers into
//! `BENCH_engine.json` (path overridable via `BENCH_ENGINE_JSON`) next to
//! the `engine_throughput` keys, preserving whatever is already there.
//!
//! Scales: 1_000 idle connections always; 10_000 when the fd limits
//! allow (both processes raise their soft limit to the hard limit first).

#[cfg(not(target_os = "linux"))]
fn main() {
    println!("connections bench requires Linux (epoll reactor); skipping");
}

#[cfg(target_os = "linux")]
fn main() {
    linux::main()
}

#[cfg(target_os = "linux")]
mod linux {
    use oasis_engine::reactor::{serve_listener_evented_with_config, ReactorConfig};
    use oasis_engine::Engine;
    use serde::json::Json;
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    /// Active connections driving traffic at every idle scale.
    const ACTIVE: usize = 64;
    /// `step` requests issued per active connection.
    const REQUESTS_PER_CONN: usize = 50;
    /// Steps per `step` request.
    const STEPS_PER_REQUEST: usize = 10;

    const LOAD_POOL: &str = r#"{"cmd":"load_pool","pool":"demo","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1,0.05,0.02],"predictions":[true,true,true,true,false,false,false,false,false,false]}"#;

    pub fn main() {
        if let Ok(addr) = std::env::var("OASIS_CONNECTIONS_CLIENT") {
            client_main(&addr);
            return;
        }
        server_main();
    }

    fn connect(addr: &str) -> TcpStream {
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(_) => std::thread::yield_now(),
            }
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream
    }

    fn round_trip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(
            response.contains(r#""ok":true"#),
            "request failed: {line} -> {response}"
        );
        response
    }

    /// Child process: park the idle connections, then hammer the server
    /// over the active ones and report steps/sec + p99 request latency.
    fn client_main(addr: &str) {
        let _ = epoll::raise_nofile_limit();
        let idle_count: usize = std::env::var("OASIS_CONNECTIONS_IDLE")
            .unwrap()
            .parse()
            .unwrap();

        // Parked connections: connected, registered with the reactor,
        // never sending a byte.  They must cost the server nothing.
        let mut idle = Vec::with_capacity(idle_count);
        for _ in 0..idle_count {
            idle.push(connect(addr));
        }

        {
            let mut setup = connect(addr);
            let mut reader = BufReader::new(setup.try_clone().unwrap());
            round_trip(&mut setup, &mut reader, LOAD_POOL);
        }

        let started = Instant::now();
        let mut latencies: Vec<u64> = std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(ACTIVE);
            for worker in 0..ACTIVE {
                workers.push(scope.spawn(move || {
                    let mut stream = connect(addr);
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let create = format!(
                        r#"{{"cmd":"create_session","session":"c{worker}","pool":"demo","seed":{seed},"truth":[true,true,false,true,false,false,false,false,false,false]}}"#,
                        seed = 42 + worker
                    );
                    round_trip(&mut stream, &mut reader, &create);
                    let step = format!(
                        r#"{{"cmd":"step","session":"c{worker}","steps":{STEPS_PER_REQUEST}}}"#
                    );
                    let mut latencies = Vec::with_capacity(REQUESTS_PER_CONN);
                    for _ in 0..REQUESTS_PER_CONN {
                        let sent = Instant::now();
                        round_trip(&mut stream, &mut reader, &step);
                        latencies.push(sent.elapsed().as_micros() as u64);
                    }
                    latencies
                }));
            }
            workers
                .into_iter()
                .flat_map(|w| w.join().unwrap())
                .collect()
        });
        let elapsed = started.elapsed().as_secs_f64();
        drop(idle);

        latencies.sort_unstable();
        let p99 = latencies[(latencies.len() - 1).min(latencies.len() * 99 / 100)];
        let total_steps = ACTIVE * REQUESTS_PER_CONN * STEPS_PER_REQUEST;
        let steps_per_sec = total_steps as f64 / elapsed;
        println!(
            r#"{{"steps_per_sec":{steps_per_sec:.1},"p99_us":{p99},"requests":{}}}"#,
            ACTIVE * REQUESTS_PER_CONN
        );
    }

    /// Parent process: run the evented server, re-exec this binary as the
    /// traffic generator at each idle scale, merge headlines into
    /// `BENCH_engine.json`.
    fn server_main() {
        let nofile = epoll::raise_nofile_limit().unwrap_or(1024);
        let mut scales = vec![1_000usize];
        // Both processes need their side of the sockets plus headroom.
        if nofile >= 12_000 {
            scales.push(10_000);
        } else {
            println!("fd limit {nofile} too low for the 10k-connection scale; skipping");
        }

        let mut headline_fields = Vec::new();
        for idle in scales {
            let engine = Engine::new();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let config = ReactorConfig::default();
            let result = crossbeam::thread::scope(|scope| {
                let engine = &engine;
                let config = &config;
                let server = scope.spawn(move |_| {
                    serve_listener_evented_with_config(engine, listener, None, None, config)
                });

                let output =
                    std::process::Command::new(std::env::current_exe().expect("current_exe"))
                        .env("OASIS_CONNECTIONS_CLIENT", addr.to_string())
                        .env("OASIS_CONNECTIONS_IDLE", idle.to_string())
                        .output()
                        .expect("spawn client process");
                assert!(
                    output.status.success(),
                    "client process failed:\n{}\n{}",
                    String::from_utf8_lossy(&output.stdout),
                    String::from_utf8_lossy(&output.stderr),
                );
                let stdout = String::from_utf8_lossy(&output.stdout);
                let result = stdout
                    .lines()
                    .last()
                    .expect("client result line")
                    .to_string();

                let mut stop = connect(&addr.to_string());
                stop.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
                let mut ack = String::new();
                let _ = BufReader::new(stop).read_line(&mut ack);
                server.join().unwrap().unwrap();
                result
            })
            .unwrap();

            Json::parse(&result).expect("client result must be JSON");
            println!("connections: {idle} idle + {ACTIVE} active -> {result}",);
            headline_fields.push(format!(r#""idle_{idle}":{result}"#));
        }

        let connections = format!(
            r#"{{"active":{ACTIVE},"steps_per_request":{STEPS_PER_REQUEST},{}}}"#,
            headline_fields.join(",")
        );
        merge_headline("connections", &connections);
    }

    /// Insert `key` into `BENCH_engine.json`, preserving the keys the
    /// `engine_throughput` bench (or an earlier run) already wrote.
    fn merge_headline(key: &str, raw_value: &str) {
        let path =
            std::env::var("BENCH_ENGINE_JSON").unwrap_or_else(|_| "BENCH_engine.json".into());
        let mut doc = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .unwrap_or_else(|| Json::parse("{}").unwrap());
        doc.set(key, Json::parse(raw_value).expect("headline must be JSON"));
        std::fs::write(&path, format!("{}\n", doc.render())).expect("write bench json");
        println!("bench headline numbers merged into {path}");
    }
}
