//! # classifiers — record-pair classifiers built from scratch
//!
//! The scoring stage of the paper's ER pipeline (Section 6.1.2) and the five
//! classifier families used in its Figure 5 comparison: a linear SVM, logistic
//! regression, a one-hidden-layer neural network, AdaBoost over decision
//! stumps, and an RBF-kernel SVM approximated with random Fourier features.
//! Platt scaling provides the calibrated scores of Section 6.3.2.
//!
//! All classifiers implement the [`Classifier`] trait: they are trained on a
//! labelled [`TrainingSet`] of similarity feature vectors and then emit a
//! real-valued score per pair; higher means "more likely a match".

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod adaboost;
pub mod calibration;
pub mod dataset;
pub mod linalg;
pub mod linear_svm;
pub mod logistic;
pub mod metrics;
pub mod mlp;
pub mod rbf_svm;

pub use adaboost::AdaBoostClassifier;
pub use calibration::PlattScaler;
pub use dataset::{train_test_split, TrainingSet};
pub use linear_svm::LinearSvm;
pub use logistic::LogisticRegression;
pub use mlp::MlpClassifier;
pub use rbf_svm::RbfSvm;

/// A trained record-pair classifier producing real-valued match scores.
pub trait Classifier {
    /// Score a feature vector; higher scores mean "more likely a match".
    fn score(&self, features: &[f64]) -> f64;

    /// Predict a label by thresholding the score at the classifier's natural
    /// decision boundary (0 for margin-based scores, 0.5 for probabilities).
    fn predict(&self, features: &[f64]) -> bool {
        self.score(features) > self.decision_threshold()
    }

    /// The classifier's natural decision threshold on its score scale.
    fn decision_threshold(&self) -> f64;

    /// A short human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Whether the scores are probabilities in `[0, 1]` (calibrated-ish) or
    /// unbounded margins.
    fn scores_are_probabilities(&self) -> bool;
}
