//! A single interactive evaluation session, whatever the sampling method.
//!
//! A [`Session`] wraps one sampler run — any [`SamplerMethod`], dispatched
//! through [`AnySampler`] — over a shared [`Arc<ScoredPool>`] with its own
//! independently seeded RNG.  Unlike the library's
//! [`Sampler::run`](oasis::Sampler::run) loop, a session is an *interactive*
//! state machine built on the
//! [`InteractiveSampler`] propose/apply-label contract:
//!
//! * [`Session::propose`] draws one or more items and returns [`Ticket`]s —
//!   the session then *suspends*, holding the tickets as pending;
//! * [`Session::apply_labels`] resumes it when labels arrive (possibly out of
//!   order, possibly in batches);
//! * with an in-process oracle attached ([`LabelSource::GroundTruth`]),
//!   [`Session::step`] runs the classic propose→query→apply loop and is
//!   bit-identical to the library's `Sampler::step` with the same seed —
//!   for every method, not just OASIS.
//!
//! Sessions are checkpointable: [`Session::checkpoint`] captures the
//! method-tagged sampler state, RNG words, pending tickets and oracle state,
//! and [`Session::restore`] resumes exactly (see `crate::checkpoint`).

use crate::checkpoint::{OracleCheckpoint, SessionCheckpoint};
use crate::error::{EngineError, EngineResult};
use oasis::{
    AnySampler, ConfidenceInterval, Estimate, GroundTruthOracle, InteractiveSampler, OasisConfig,
    Oracle, Proposal, SamplerDiagnostics, SamplerMethod, ScoredPool, TrackedSampler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// A pending label request: a proposal plus the ticket id the eventual label
/// must quote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ticket {
    /// Monotonically increasing ticket id, unique within the session.
    pub id: u64,
    /// The proposed query (item, stratum, prediction, locked-in weight).
    pub proposal: Proposal,
    /// Logical lease timestamp the ticket was issued at (the session's lease
    /// clock, microseconds).  0 on sessions that never saw a timestamp.
    pub issued_at_us: u64,
}

/// Optional per-session robustness limits.
///
/// Both limits default to off, which is bit-identical to pre-lease engine
/// behaviour: tickets never expire and the pending queue is unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionLimits {
    /// Drop a pending ticket once the session's lease clock passes
    /// `issued_at_us + lease_timeout_us`.  Because sampling is with
    /// replacement, the item itself never left the proposable pool —
    /// expiry frees the queue slot and makes a late label for the ticket a
    /// deterministic [`EngineError::UnknownTicket`].
    pub lease_timeout_us: Option<u64>,
    /// Reject proposals that would grow the pending queue past this cap
    /// with [`EngineError::Backpressure`].
    pub max_pending: Option<usize>,
}

/// Where a session's labels come from.
#[derive(Debug, Clone)]
pub enum LabelSource {
    /// Labels arrive from outside (human annotators, a remote client) via
    /// [`Session::apply_labels`].  The session tracks the footnote-5 budget
    /// itself: repeated labels for the same item charge once.
    External {
        /// Which pool items have been labelled at least once.
        labelled: Vec<bool>,
        /// Number of distinct items labelled (the consumed budget).
        distinct: usize,
    },
    /// A deterministic in-process oracle; enables [`Session::step`] and
    /// simulation-style runs inside the engine.
    GroundTruth(GroundTruthOracle),
}

impl LabelSource {
    /// An external source for a pool of `pool_len` items.
    pub fn external(pool_len: usize) -> Self {
        LabelSource::External {
            labelled: vec![false; pool_len],
            distinct: 0,
        }
    }
}

/// One concurrent, independently seeded, checkpointable evaluation run of
/// any sampling method.
#[derive(Debug, Clone)]
pub struct Session {
    id: String,
    pool_id: String,
    pool: Arc<ScoredPool>,
    sampler: TrackedSampler<AnySampler>,
    rng: StdRng,
    seed: u64,
    pending: VecDeque<Ticket>,
    next_ticket: u64,
    source: LabelSource,
    limits: SessionLimits,
    /// Logical lease clock: the largest timestamp ever observed via
    /// [`Session::expire_leases`].  Advanced only by WAL-logged values, so
    /// replay reproduces every expiry decision bit for bit.
    lease_now_us: u64,
}

impl Session {
    /// Create a session over `pool` running the given sampling method, with
    /// its own RNG seeded from `seed`.  All methods draw their
    /// hyperparameters from the one `config` (see [`AnySampler::build`]).
    ///
    /// # Errors
    /// Propagates sampler construction failures (invalid config, degenerate
    /// pool) and rejects a label source that does not cover the pool (a
    /// ground truth or `External` bitmap of the wrong length).
    pub fn new(
        id: impl Into<String>,
        pool_id: impl Into<String>,
        pool: Arc<ScoredPool>,
        method: SamplerMethod,
        config: OasisConfig,
        seed: u64,
        source: LabelSource,
    ) -> EngineResult<Self> {
        Session::new_sharded(id, pool_id, pool, method, config, None, seed, source)
    }

    /// Create a session like [`Session::new`], optionally sharding the pool
    /// into `shards` partitions, each with its own strata and inner sampler
    /// (see [`oasis::ShardedSampler`]).  `None` (and `Some(1)` up to the
    /// shard-selection draw) behaves exactly like the flat constructor;
    /// shard `s` seeds its own RNG from `seed.wrapping_add(s)`, while the
    /// session RNG (seeded from `seed`) is consumed only for shard
    /// selection.
    ///
    /// # Errors
    /// As [`Session::new`], plus rejection of `Some(0)` and of more shards
    /// than pool items.
    #[allow(clippy::too_many_arguments)]
    pub fn new_sharded(
        id: impl Into<String>,
        pool_id: impl Into<String>,
        pool: Arc<ScoredPool>,
        method: SamplerMethod,
        config: OasisConfig,
        shards: Option<usize>,
        seed: u64,
        source: LabelSource,
    ) -> EngineResult<Self> {
        Session::new_with_limits(
            id,
            pool_id,
            pool,
            method,
            config,
            shards,
            seed,
            source,
            SessionLimits::default(),
        )
    }

    /// Create a session like [`Session::new_sharded`], with explicit
    /// robustness limits (propose-lease timeout, pending-queue cap).
    ///
    /// # Errors
    /// As [`Session::new_sharded`].
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_limits(
        id: impl Into<String>,
        pool_id: impl Into<String>,
        pool: Arc<ScoredPool>,
        method: SamplerMethod,
        config: OasisConfig,
        shards: Option<usize>,
        seed: u64,
        source: LabelSource,
        limits: SessionLimits,
    ) -> EngineResult<Self> {
        validate_source(&source, pool.len())?;
        let sampler = match shards {
            Some(k) => AnySampler::build_sharded(method, &pool, &config, k, seed)?,
            None => AnySampler::build(method, &pool, &config)?,
        };
        let sampler = TrackedSampler::new(sampler, config.alpha);
        Ok(Session {
            id: id.into(),
            pool_id: pool_id.into(),
            pool,
            sampler,
            rng: StdRng::seed_from_u64(seed),
            seed,
            pending: VecDeque::new(),
            next_ticket: 0,
            source,
            limits,
            lease_now_us: 0,
        })
    }

    /// The session id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The sampling method the session runs.
    pub fn method(&self) -> SamplerMethod {
        self.sampler.method()
    }

    /// The id of the pool the session evaluates.
    pub fn pool_id(&self) -> &str {
        &self.pool_id
    }

    /// The seed the session RNG was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared pool.
    pub fn pool(&self) -> &Arc<ScoredPool> {
        &self.pool
    }

    /// The current estimate.
    pub fn estimate(&self) -> Estimate {
        self.sampler.estimate()
    }

    /// The underlying sampler (method-agnostic introspection lives on the
    /// [`InteractiveSampler`] trait, e.g.
    /// [`instrumental_snapshot`](InteractiveSampler::instrumental_snapshot)).
    pub fn sampler(&self) -> &AnySampler {
        self.sampler.inner()
    }

    /// Number of pool shards the session's sampler runs over (1 for a flat,
    /// unsharded sampler).
    pub fn shard_count(&self) -> usize {
        self.sampler.inner().shard_count()
    }

    /// Ground-truth-free sampler health diagnostics — ESS, weight variance,
    /// per-stratum label allocation, instrumental distribution, CDF-rebuild
    /// count — method-agnostic via
    /// [`InteractiveSampler::diagnostics`](oasis::InteractiveSampler::diagnostics).
    pub fn diagnostics(&self) -> SamplerDiagnostics {
        self.sampler.diagnostics()
    }

    /// A normal-approximation confidence interval on the F-measure at the
    /// given level, or `None` while the estimate is undefined — or while the
    /// variance history is incomplete (see [`Session::variance_tracked`]).
    pub fn confidence_interval(&self, level: f64) -> Option<ConfidenceInterval> {
        self.sampler.confidence_interval(level)
    }

    /// Whether the session's variance tracker covers the whole run.  `false`
    /// only after restoring a checkpoint written before tracker state was
    /// serialized: the estimate is still exact, but intervals are suppressed
    /// rather than reported from a truncated history.
    pub fn variance_tracked(&self) -> bool {
        self.sampler.tracker_complete()
    }

    /// Pending (proposed but unlabelled) tickets, oldest first.
    pub fn pending(&self) -> impl Iterator<Item = &Ticket> {
        self.pending.iter()
    }

    /// Number of pending tickets.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Distinct items labelled so far — the footnote-5 label budget.
    pub fn labels_consumed(&self) -> usize {
        match &self.source {
            LabelSource::External { distinct, .. } => *distinct,
            LabelSource::GroundTruth(oracle) => oracle.labels_consumed(),
        }
    }

    /// Whether the session has an in-process oracle attached.
    pub fn has_oracle(&self) -> bool {
        matches!(self.source, LabelSource::GroundTruth(_))
    }

    /// Propose `count` items to label, suspending the session until the
    /// labels come back through [`Session::apply_labels`].
    ///
    /// All draws in one batch use the same instrumental distribution (no
    /// labels can intervene inside the batch), matching the
    /// batched-annotation semantics of
    /// [`InteractiveSampler::propose_batch`].
    ///
    /// Tickets are stamped with the session's current lease clock; callers
    /// that enforce leases advance it first via [`Session::expire_leases`].
    ///
    /// # Errors
    /// [`EngineError::Backpressure`] when a configured `max_pending` cap
    /// would be exceeded; the sampler and RNG are untouched, so a rejected
    /// propose is invisible to replay.
    pub fn propose(&mut self, count: usize) -> EngineResult<Vec<Ticket>> {
        if let Some(cap) = self.limits.max_pending {
            let would_hold = self.pending.len().saturating_add(count);
            if would_hold > cap {
                return Err(EngineError::Backpressure(format!(
                    "propose of {count} would hold {would_hold} pending tickets, cap is {cap}; \
                     label or expire pending tickets first"
                )));
            }
        }
        let proposals = self.sampler.propose_batch(&self.pool, &mut self.rng, count);
        let mut tickets = Vec::with_capacity(count);
        for proposal in proposals {
            let ticket = Ticket {
                id: self.next_ticket,
                proposal,
                issued_at_us: self.lease_now_us,
            };
            self.next_ticket += 1;
            self.pending.push_back(ticket);
            tickets.push(ticket);
        }
        Ok(tickets)
    }

    /// Advance the session's logical lease clock to `now_us` (it never moves
    /// backwards) and drop every pending ticket whose lease has expired,
    /// returning the dropped ids oldest-first.
    ///
    /// Sampling is with replacement, so an expired item was never removed
    /// from the proposable pool: expiry only frees the queue slot.  A later
    /// label quoting a dropped id fails with the same
    /// [`EngineError::UnknownTicket`] a replay reproduces.  Without a
    /// configured lease timeout this only advances the clock.
    pub fn expire_leases(&mut self, now_us: u64) -> Vec<u64> {
        self.lease_now_us = self.lease_now_us.max(now_us);
        let Some(timeout) = self.limits.lease_timeout_us else {
            return Vec::new();
        };
        let mut expired = Vec::new();
        // Pending is issue-ordered, so issued_at_us is non-decreasing and
        // expired tickets form a prefix of the queue.
        while let Some(front) = self.pending.front() {
            if front.issued_at_us.saturating_add(timeout) <= self.lease_now_us {
                expired.push(front.id);
                self.pending.pop_front();
            } else {
                break;
            }
        }
        expired
    }

    /// The session's robustness limits.
    pub fn limits(&self) -> SessionLimits {
        self.limits
    }

    /// The logical lease clock (largest timestamp ever observed).
    pub fn lease_now_us(&self) -> u64 {
        self.lease_now_us
    }

    /// Resume the session with a batch of labels, each quoting a pending
    /// ticket id.  Labels are applied in ascending ticket order (so a client
    /// replying in order reproduces the sequential run bit-for-bit), and any
    /// subset of pending tickets may be answered — stragglers stay pending.
    ///
    /// Every applied label charges the footnote-5 budget (distinct items
    /// only), whatever the label source: externally labelled sessions update
    /// their own bitmap, and sessions with an attached oracle mark the item
    /// as queried there, so `labels_consumed` and later `run_until_budget`
    /// calls stay consistent with the estimator.
    ///
    /// Returns the number of labels applied.
    ///
    /// # Errors
    /// [`EngineError::UnknownTicket`] if an id is not pending (already
    /// answered, or never issued) and [`EngineError::DuplicateTicket`] if the
    /// batch names one ticket twice; no labels are applied in either case.
    pub fn apply_labels(&mut self, labels: &[(u64, bool)]) -> EngineResult<usize> {
        // Validate the whole batch first so errors leave the session intact.
        // Batches and pending queues are both unbounded over the protocol, so
        // everything here is O(B + P) — no per-label rescans.
        let mut by_ticket: std::collections::HashMap<u64, bool> =
            std::collections::HashMap::with_capacity(labels.len());
        for &(ticket_id, label) in labels {
            if by_ticket.insert(ticket_id, label).is_some() {
                return Err(EngineError::DuplicateTicket(ticket_id));
            }
        }
        let pending_ids: std::collections::HashSet<u64> =
            self.pending.iter().map(|t| t.id).collect();
        for &(ticket_id, _) in labels {
            if !pending_ids.contains(&ticket_id) {
                return Err(EngineError::UnknownTicket(ticket_id));
            }
        }
        // One pass over the deque: answered tickets come out in queue order,
        // which is ascending ticket id — the order labels are applied in.
        let mut answered = Vec::with_capacity(by_ticket.len());
        self.pending.retain(|ticket| {
            if by_ticket.contains_key(&ticket.id) {
                answered.push(*ticket);
                false
            } else {
                true
            }
        });
        for ticket in &answered {
            let label = by_ticket[&ticket.id];
            self.sampler.apply_label(&ticket.proposal, label);
            self.charge_label_budget(ticket.proposal.item);
        }
        Ok(answered.len())
    }

    fn charge_label_budget(&mut self, item: usize) {
        match &mut self.source {
            LabelSource::External { labelled, distinct } => {
                if !labelled[item] {
                    labelled[item] = true;
                    *distinct += 1;
                }
            }
            LabelSource::GroundTruth(oracle) => {
                // Budget accounting only: the client's label was already
                // applied above.  `mark_queried` charges once per distinct
                // item without inflating `queries_issued` (the oracle never
                // answered) or touching the session's RNG stream.
                let _ = oracle.mark_queried(item);
            }
        }
    }

    /// Run `steps` complete propose→query→apply iterations against the
    /// attached oracle.  Bit-identical to the library's `Sampler::run` with
    /// the same seed and pool.
    ///
    /// # Errors
    /// [`EngineError::WrongLabelSource`] if the session labels externally, or
    /// if proposals are still pending (labels must not leapfrog them).
    pub fn step(&mut self, steps: usize) -> EngineResult<Estimate> {
        self.ensure_steppable()?;
        for _ in 0..steps {
            self.step_once()?;
        }
        Ok(self.estimate())
    }

    /// Run steps until the oracle has consumed `label_budget` distinct labels
    /// or `max_steps` iterations have elapsed, mirroring the library's
    /// `run_until_budget`.
    pub fn run_until_budget(
        &mut self,
        label_budget: usize,
        max_steps: usize,
    ) -> EngineResult<Estimate> {
        self.ensure_steppable()?;
        let mut steps = 0;
        while self.labels_consumed() < label_budget && steps < max_steps {
            self.step_once()?;
            steps += 1;
        }
        Ok(self.estimate())
    }

    fn ensure_steppable(&self) -> EngineResult<()> {
        if !self.has_oracle() {
            return Err(EngineError::WrongLabelSource(
                "session labels externally; use propose/label instead of step",
            ));
        }
        if !self.pending.is_empty() {
            return Err(EngineError::WrongLabelSource(
                "session has pending tickets; label them before stepping",
            ));
        }
        Ok(())
    }

    fn step_once(&mut self) -> EngineResult<()> {
        // Identical draw/query/update order to `Sampler::step`, so a session
        // with seed s reproduces the library run with seed s bit-for-bit.
        let proposal = self.sampler.propose(&self.pool, &mut self.rng);
        let label = match &mut self.source {
            LabelSource::GroundTruth(oracle) => oracle.query(proposal.item, &mut self.rng)?,
            LabelSource::External { .. } => unreachable!("checked by ensure_steppable"),
        };
        self.sampler.apply_label(&proposal, label);
        Ok(())
    }

    /// Capture a full checkpoint: sampler state, RNG words, pending tickets
    /// and oracle state.  Restoring it with [`Session::restore`] resumes the
    /// run exactly.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            session_id: self.id.clone(),
            pool_id: self.pool_id.clone(),
            pool_len: self.pool.len(),
            pool_fingerprint: crate::checkpoint::pool_fingerprint(&self.pool),
            seed: self.seed,
            rng_words: self.rng.state_words(),
            sampler: self.sampler.state(),
            pending: self.pending.iter().copied().collect(),
            next_ticket: self.next_ticket,
            limits: self.limits,
            lease_now_us: self.lease_now_us,
            oracle: match &self.source {
                LabelSource::External { labelled, distinct } => OracleCheckpoint::External {
                    labelled: labelled.clone(),
                    distinct: *distinct,
                },
                LabelSource::GroundTruth(oracle) => OracleCheckpoint::GroundTruth {
                    truth: oracle.ground_truth().to_vec(),
                    queried: oracle.queried_mask().to_vec(),
                    queries_issued: oracle.queries_issued(),
                },
            },
        }
    }

    /// Rebuild a session from a checkpoint against the (already loaded) pool
    /// it was captured on.
    ///
    /// # Errors
    /// [`EngineError::CheckpointMismatch`] if the pool's length or
    /// fingerprint differs from the checkpointed one, plus any sampler
    /// reconstruction failure.
    pub fn restore(checkpoint: SessionCheckpoint, pool: Arc<ScoredPool>) -> EngineResult<Self> {
        if pool.len() != checkpoint.pool_len {
            return Err(EngineError::CheckpointMismatch(format!(
                "pool has {} items, checkpoint expects {}",
                pool.len(),
                checkpoint.pool_len
            )));
        }
        let fingerprint = crate::checkpoint::pool_fingerprint(&pool);
        if fingerprint != checkpoint.pool_fingerprint {
            return Err(EngineError::CheckpointMismatch(format!(
                "pool fingerprint {fingerprint:#x} != checkpointed {:#x}",
                checkpoint.pool_fingerprint
            )));
        }
        let sampler = TrackedSampler::<AnySampler>::from_state(&pool, checkpoint.sampler)?;
        let source = match checkpoint.oracle {
            OracleCheckpoint::External { labelled, .. } => {
                if labelled.len() != pool.len() {
                    return Err(EngineError::CheckpointMismatch(
                        "labelled bitmap does not cover the pool".to_string(),
                    ));
                }
                // Recompute the budget from the bitmap (as the oracle path
                // does) so a hand-edited `distinct` cannot misreport it.
                let distinct = labelled.iter().filter(|&&l| l).count();
                LabelSource::External { labelled, distinct }
            }
            OracleCheckpoint::GroundTruth {
                truth,
                queried,
                queries_issued,
            } => {
                if truth.len() != pool.len() {
                    return Err(EngineError::CheckpointMismatch(
                        "ground truth does not cover the pool".to_string(),
                    ));
                }
                LabelSource::GroundTruth(GroundTruthOracle::from_state(
                    truth,
                    queried,
                    queries_issued,
                )?)
            }
        };
        // Pending tickets come verbatim from the document; a crafted
        // checkpoint must not be able to smuggle out-of-range indices past
        // restore and panic a later apply_labels.
        let strata_count = sampler.strata_len();
        let mut seen_tickets = std::collections::HashSet::new();
        for ticket in &checkpoint.pending {
            if ticket.id >= checkpoint.next_ticket || !seen_tickets.insert(ticket.id) {
                return Err(EngineError::CheckpointMismatch(format!(
                    "pending ticket id {} is duplicated or not below next_ticket {}",
                    ticket.id, checkpoint.next_ticket
                )));
            }
            if !(ticket.proposal.weight.is_finite() && ticket.proposal.weight >= 0.0) {
                return Err(EngineError::CheckpointMismatch(format!(
                    "pending ticket {} has invalid weight {}",
                    ticket.id, ticket.proposal.weight
                )));
            }
            if ticket.proposal.item >= pool.len() || ticket.proposal.stratum >= strata_count {
                return Err(EngineError::CheckpointMismatch(format!(
                    "pending ticket {} references item {} / stratum {} outside the pool \
                     ({} items, {} strata)",
                    ticket.id,
                    ticket.proposal.item,
                    ticket.proposal.stratum,
                    pool.len(),
                    strata_count
                )));
            }
        }
        Ok(Session {
            id: checkpoint.session_id,
            pool_id: checkpoint.pool_id,
            pool,
            sampler,
            rng: StdRng::from_state_words(checkpoint.rng_words),
            seed: checkpoint.seed,
            pending: checkpoint.pending.into(),
            next_ticket: checkpoint.next_ticket,
            source,
            limits: checkpoint.limits,
            lease_now_us: checkpoint.lease_now_us,
        })
    }
}

/// Reject label sources whose coverage does not match the pool, so indexing
/// by pool item can never panic later.
fn validate_source(source: &LabelSource, pool_len: usize) -> EngineResult<()> {
    let covered = match source {
        LabelSource::External { labelled, .. } => labelled.len(),
        LabelSource::GroundTruth(oracle) => oracle.len(),
    };
    if covered != pool_len {
        return Err(EngineError::InvalidLabelSource(format!(
            "label source covers {covered} items but the pool has {pool_len}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis::{OasisSampler, Sampler};

    fn pool_and_truth(n: usize, seed: u64) -> (Arc<ScoredPool>, Vec<bool>) {
        crate::test_support::pool_and_truth(n, seed, 0.06)
    }

    fn library_run(pool: &ScoredPool, truth: &[bool], seed: u64, steps: usize) -> Estimate {
        let mut oracle = GroundTruthOracle::new(truth.to_vec());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler =
            OasisSampler::new(pool, OasisConfig::default().with_strata_count(12)).unwrap();
        sampler.run(pool, &mut oracle, &mut rng, steps).unwrap()
    }

    fn assert_bit_identical(a: &Estimate, b: &Estimate) {
        assert_eq!(a.f_measure.to_bits(), b.f_measure.to_bits());
        assert_eq!(a.precision.to_bits(), b.precision.to_bits());
        assert_eq!(a.recall.to_bits(), b.recall.to_bits());
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn oracle_session_is_bit_identical_to_library_run() {
        let (pool, truth) = pool_and_truth(2000, 1);
        let expected = library_run(&pool, &truth, 7, 400);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(12),
            7,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
        )
        .unwrap();
        let estimate = session.step(400).unwrap();
        assert_bit_identical(&estimate, &expected);
    }

    #[test]
    fn external_session_fed_true_labels_matches_library_run() {
        let (pool, truth) = pool_and_truth(1200, 2);
        let expected = library_run(&pool, &truth, 11, 300);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(12),
            11,
            LabelSource::external(pool.len()),
        )
        .unwrap();
        // Suspend/resume one ticket at a time, the client answering from the
        // hidden truth — exactly what a human-annotator driver would do.
        for _ in 0..300 {
            let tickets = session.propose(1).unwrap();
            let answers: Vec<(u64, bool)> = tickets
                .iter()
                .map(|t| (t.id, truth[t.proposal.item]))
                .collect();
            session.apply_labels(&answers).unwrap();
        }
        assert_bit_identical(&session.estimate(), &expected);
        assert!(session.labels_consumed() > 0);
        assert!(session.labels_consumed() <= 300);
    }

    #[test]
    fn batch_proposals_share_a_posterior_and_resume_in_any_order() {
        let (pool, truth) = pool_and_truth(800, 3);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(8),
            13,
            LabelSource::external(pool.len()),
        )
        .unwrap();
        let tickets = session.propose(5).unwrap();
        assert_eq!(session.pending_count(), 5);
        // Answer out of order and in two batches; stragglers stay pending.
        session
            .apply_labels(&[
                (tickets[3].id, truth[tickets[3].proposal.item]),
                (tickets[0].id, truth[tickets[0].proposal.item]),
            ])
            .unwrap();
        assert_eq!(session.pending_count(), 3);
        session
            .apply_labels(&[
                (tickets[1].id, truth[tickets[1].proposal.item]),
                (tickets[4].id, truth[tickets[4].proposal.item]),
                (tickets[2].id, truth[tickets[2].proposal.item]),
            ])
            .unwrap();
        assert_eq!(session.pending_count(), 0);
        assert_eq!(session.estimate().iterations, 5);
    }

    #[test]
    fn unknown_or_replayed_tickets_are_rejected_atomically() {
        let (pool, truth) = pool_and_truth(500, 4);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(6),
            17,
            LabelSource::external(pool.len()),
        )
        .unwrap();
        let tickets = session.propose(2).unwrap();
        // One good id + one bogus id → nothing applied.
        let err = session
            .apply_labels(&[(tickets[0].id, true), (999, false)])
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownTicket(999));
        assert_eq!(session.pending_count(), 2);
        // Answer then replay the same ticket → rejected.
        session
            .apply_labels(&[(tickets[0].id, truth[tickets[0].proposal.item])])
            .unwrap();
        let err = session.apply_labels(&[(tickets[0].id, true)]).unwrap_err();
        assert_eq!(err, EngineError::UnknownTicket(tickets[0].id));
    }

    #[test]
    fn duplicate_tickets_in_one_batch_are_rejected_atomically() {
        let (pool, _) = pool_and_truth(400, 9);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            37,
            LabelSource::external(pool.len()),
        )
        .unwrap();
        let tickets = session.propose(2).unwrap();
        let err = session
            .apply_labels(&[(tickets[0].id, true), (tickets[0].id, false)])
            .unwrap_err();
        assert_eq!(err, EngineError::DuplicateTicket(tickets[0].id));
        // Nothing was applied: both tickets still pending, estimator untouched.
        assert_eq!(session.pending_count(), 2);
        assert_eq!(session.estimate().iterations, 0);
    }

    #[test]
    fn external_labels_on_an_oracle_session_charge_the_oracle_budget() {
        let (pool, truth) = pool_and_truth(400, 10);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            41,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone())),
        )
        .unwrap();
        // Drive an oracle-attached session through the suspend/resume path
        // (allowed, e.g. when a client overrides labels): the footnote-5
        // budget must advance exactly as if the oracle had been queried.
        let mut items = std::collections::HashSet::new();
        for _ in 0..50 {
            let tickets = session.propose(1).unwrap();
            items.insert(tickets[0].proposal.item);
            session
                .apply_labels(&[(tickets[0].id, truth[tickets[0].proposal.item])])
                .unwrap();
        }
        assert_eq!(session.labels_consumed(), items.len());
        // Mixing with step() afterwards keeps the accounting consistent.
        session.step(10).unwrap();
        assert!(session.labels_consumed() >= items.len());
    }

    #[test]
    fn external_budget_charges_distinct_items_once() {
        let (pool, _) = pool_and_truth(300, 5);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            19,
            LabelSource::external(pool.len()),
        )
        .unwrap();
        // Draws are with replacement, so after many proposals the distinct
        // count must be ≤ the number of labels applied.
        for _ in 0..120 {
            let tickets = session.propose(1).unwrap();
            session.apply_labels(&[(tickets[0].id, false)]).unwrap();
        }
        assert!(session.labels_consumed() <= 120);
        assert_eq!(session.estimate().iterations, 120);
    }

    #[test]
    fn stepping_an_external_session_is_an_error() {
        let (pool, _) = pool_and_truth(200, 6);
        let mut session = Session::new(
            "s",
            "p",
            pool,
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            23,
            LabelSource::external(200),
        )
        .unwrap();
        assert!(matches!(
            session.step(1),
            Err(EngineError::WrongLabelSource(_))
        ));
    }

    #[test]
    fn stepping_with_pending_tickets_is_an_error() {
        let (pool, truth) = pool_and_truth(200, 7);
        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            29,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
        )
        .unwrap();
        session.propose(1).unwrap();
        assert!(matches!(
            session.step(1),
            Err(EngineError::WrongLabelSource(_))
        ));
    }

    #[test]
    fn every_method_session_is_bit_identical_to_its_library_run() {
        let (pool, truth) = pool_and_truth(1500, 21);
        let config = OasisConfig::default().with_strata_count(10);
        for method in oasis::SamplerMethod::ALL {
            // Library reference through AnySampler's Sampler impl.
            let mut sampler = oasis::AnySampler::build(method, &pool, &config).unwrap();
            let mut oracle = GroundTruthOracle::new(truth.clone());
            let mut rng = StdRng::seed_from_u64(19);
            let expected = sampler.run(&pool, &mut oracle, &mut rng, 250).unwrap();

            let mut session = Session::new(
                "s",
                "p",
                Arc::clone(&pool),
                method,
                config.clone(),
                19,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone())),
            )
            .unwrap();
            assert_eq!(session.method(), method);
            let estimate = session.step(250).unwrap();
            assert_bit_identical(&estimate, &expected);
        }
    }

    #[test]
    fn every_method_checkpoint_restores_and_continues_bitwise() {
        let (pool, truth) = pool_and_truth(1000, 22);
        let config = OasisConfig::default().with_strata_count(8);
        for method in oasis::SamplerMethod::ALL {
            let make = |id: &str| {
                Session::new(
                    id,
                    "p",
                    Arc::clone(&pool),
                    method,
                    config.clone(),
                    23,
                    LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone())),
                )
                .unwrap()
            };
            let mut straight = make("straight");
            let expected = straight.step(400).unwrap();

            let mut interrupted = make("interrupted");
            interrupted.step(163).unwrap();
            let text = interrupted.checkpoint().to_json_string();
            drop(interrupted);
            let checkpoint = SessionCheckpoint::from_json_string(&text).unwrap();
            let mut resumed = Session::restore(checkpoint, Arc::clone(&pool)).unwrap();
            assert_eq!(resumed.method(), method);
            let estimate = resumed.step(400 - 163).unwrap();
            assert_bit_identical(&estimate, &expected);
            assert_eq!(resumed.labels_consumed(), straight.labels_consumed());
        }
    }

    #[test]
    fn every_method_supports_the_external_propose_label_path() {
        let (pool, truth) = pool_and_truth(600, 23);
        let config = OasisConfig::default().with_strata_count(6);
        for method in oasis::SamplerMethod::ALL {
            let mut session = Session::new(
                "s",
                "p",
                Arc::clone(&pool),
                method,
                config.clone(),
                29,
                LabelSource::external(pool.len()),
            )
            .unwrap();
            for _ in 0..30 {
                let tickets = session.propose(3).unwrap();
                let answers: Vec<(u64, bool)> = tickets
                    .iter()
                    .map(|t| (t.id, truth[t.proposal.item]))
                    .collect();
                session.apply_labels(&answers).unwrap();
            }
            assert_eq!(session.estimate().iterations, 90, "{method}");
            assert!(session.labels_consumed() > 0, "{method}");
            assert_eq!(session.pending_count(), 0, "{method}");
        }
    }

    fn limited_session(pool: &Arc<ScoredPool>, seed: u64, limits: SessionLimits) -> Session {
        Session::new_with_limits(
            "s",
            "p",
            Arc::clone(pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(4),
            None,
            seed,
            LabelSource::external(pool.len()),
            limits,
        )
        .unwrap()
    }

    #[test]
    fn expired_leases_drop_the_oldest_tickets_and_reject_late_labels() {
        let (pool, _) = pool_and_truth(300, 11);
        let mut session = limited_session(
            &pool,
            43,
            SessionLimits {
                lease_timeout_us: Some(1_000),
                max_pending: None,
            },
        );
        assert!(session.expire_leases(100).is_empty());
        let first = session.propose(2).unwrap(); // issued at 100
        session.expire_leases(700);
        let second = session.propose(1).unwrap(); // issued at 700
        assert_eq!(session.pending_count(), 3);

        // At t=1100 the first batch (100 + 1000 <= 1100) expires, the second
        // (700 + 1000 > 1100) survives.
        let expired = session.expire_leases(1_100);
        assert_eq!(expired, vec![first[0].id, first[1].id]);
        assert_eq!(session.pending_count(), 1);
        assert_eq!(session.lease_now_us(), 1_100);

        // A late label for an expired ticket is a deterministic rejection...
        let err = session.apply_labels(&[(first[0].id, true)]).unwrap_err();
        assert_eq!(err, EngineError::UnknownTicket(first[0].id));
        // ...while the surviving ticket still labels fine, and the item
        // behind the expired tickets is still proposable (with-replacement).
        session.apply_labels(&[(second[0].id, false)]).unwrap();
        assert!(session.propose(4).is_ok());

        // The clock never moves backwards.
        session.expire_leases(5);
        assert_eq!(session.lease_now_us(), 1_100);
    }

    #[test]
    fn without_a_timeout_expire_only_advances_the_clock() {
        let (pool, _) = pool_and_truth(300, 12);
        let mut session = limited_session(&pool, 47, SessionLimits::default());
        session.propose(3).unwrap();
        assert!(session.expire_leases(u64::MAX).is_empty());
        assert_eq!(session.pending_count(), 3);
    }

    #[test]
    fn pending_queue_cap_rejects_without_touching_the_rng() {
        let (pool, _) = pool_and_truth(300, 13);
        let mut capped = limited_session(
            &pool,
            53,
            SessionLimits {
                lease_timeout_us: None,
                max_pending: Some(3),
            },
        );
        let mut free = limited_session(&pool, 53, SessionLimits::default());

        capped.propose(2).unwrap();
        free.propose(2).unwrap();
        let err = capped.propose(2).unwrap_err();
        assert!(matches!(err, EngineError::Backpressure(_)), "{err}");
        assert_eq!(capped.pending_count(), 2);

        // The rejected propose consumed no randomness: the next accepted
        // batch matches an uncapped twin draw-for-draw.
        let a = capped.propose(1).unwrap();
        let b = free.propose(1).unwrap();
        assert_eq!(a[0].proposal.item, b[0].proposal.item);
        assert_eq!(
            a[0].proposal.weight.to_bits(),
            b[0].proposal.weight.to_bits()
        );
    }

    #[test]
    fn lease_state_survives_checkpoint_restore_bitwise() {
        let (pool, _) = pool_and_truth(400, 14);
        let limits = SessionLimits {
            lease_timeout_us: Some(2_000),
            max_pending: Some(10),
        };
        let mut session = limited_session(&pool, 59, limits);
        session.expire_leases(900);
        session.propose(3).unwrap();

        let text = session.checkpoint().to_json_string();
        let restored = Session::restore(
            SessionCheckpoint::from_json_string(&text).unwrap(),
            Arc::clone(&pool),
        )
        .unwrap();
        assert_eq!(restored.limits(), limits);
        assert_eq!(restored.lease_now_us(), 900);
        let original: Vec<_> = session.pending().copied().collect();
        let revived: Vec<_> = restored.pending().copied().collect();
        assert_eq!(original, revived, "tickets keep their issue timestamps");

        // Both twins expire identically from here on.
        let mut a = session;
        let mut b = restored;
        assert_eq!(a.expire_leases(2_900), b.expire_leases(2_900));
        assert_eq!(a.pending_count(), b.pending_count());
    }

    #[test]
    fn run_until_budget_matches_library_run_until_budget() {
        let (pool, truth) = pool_and_truth(3000, 8);
        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut rng = StdRng::seed_from_u64(31);
        let mut sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(12)).unwrap();
        let expected = sampler
            .run_until_budget(&pool, &mut oracle, &mut rng, 150, 100_000)
            .unwrap();

        let mut session = Session::new(
            "s",
            "p",
            Arc::clone(&pool),
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(12),
            31,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
        )
        .unwrap();
        let estimate = session.run_until_budget(150, 100_000).unwrap();
        assert_bit_identical(&estimate, &expected);
        assert_eq!(session.labels_consumed(), oracle.labels_consumed());
    }
}
