//! A minimal, self-contained JSON data model with exact round-tripping.
//!
//! The real `serde` ecosystem would pair the derive macros with
//! `serde_json`; this offline workspace instead carries a small value model
//! ([`Json`]), a recursive-descent parser ([`Json::parse`]), a compact writer
//! ([`Json::render`]) and a pair of conversion traits ([`ToJson`] /
//! [`FromJson`]) that the checkpoint and wire-protocol code implement by
//! hand.  Design constraints:
//!
//! * **Exact `f64` round-trips.**  Checkpoint/resume must be bit-identical,
//!   so finite floats are written with Rust's shortest round-trip formatting
//!   (`{:?}`) and parsed with `str::parse::<f64>`, which together guarantee
//!   `parse(render(x)) == x` bit-for-bit.  Non-finite floats are not
//!   representable in JSON numbers and are encoded as the strings `"NaN"`,
//!   `"inf"` and `"-inf"`; [`FromJson`] for `f64` accepts either form.
//! * **Exact `u64` round-trips.**  JSON numbers are doubles, which cannot
//!   carry 64-bit integers (RNG state words) losslessly, so `u64` values are
//!   encoded as decimal strings.
//! * **No external dependencies** — the parser is a plain hand-written
//!   recursive descent over bytes.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Objects preserve deterministic (sorted) key order via [`BTreeMap`] so that
/// rendering a checkpoint is reproducible across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Json>),
}

/// An error raised while parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl JsonError {
    /// Build an error from anything displayable.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON operations.
pub type JsonResult<T> = Result<T, JsonError>;

impl Json {
    /// Shorthand for an empty object.
    pub fn object() -> Json {
        Json::Object(BTreeMap::new())
    }

    /// Insert a key into an object value; panics if `self` is not an object
    /// (programmer error — used only by serialisation code we control).
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Object(map) => {
                map.insert(key.to_string(), value);
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Fetch a key from an object, or `None` for missing keys / non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Remove a key from an object value, returning the removed value;
    /// `None` for missing keys / non-objects.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        match self {
            Json::Object(map) => map.remove(key),
            _ => None,
        }
    }

    /// Fetch a required object key, with a descriptive error.
    pub fn require(&self, key: &str) -> JsonResult<&Json> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> JsonResult<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as an `f64` (accepting the string escapes for non-finite).
    pub fn as_f64(&self) -> JsonResult<f64> {
        match self {
            Json::Number(x) => Ok(*x),
            Json::String(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                other => Err(JsonError::new(format!("expected number, got {other:?}"))),
            },
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as a `usize` (a JSON number with integral value).
    pub fn as_usize(&self) -> JsonResult<usize> {
        let x = self.as_f64()?;
        if x.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&x) {
            Ok(x as usize)
        } else {
            Err(JsonError::new(format!(
                "expected unsigned integer, got {x}"
            )))
        }
    }

    /// The value as a `u64` (encoded as a decimal string for losslessness).
    pub fn as_u64(&self) -> JsonResult<u64> {
        match self {
            Json::String(s) => s
                .parse::<u64>()
                .map_err(|e| JsonError::new(format!("bad u64 {s:?}: {e}"))),
            // Small integers may arrive as plain numbers (hand-written input).
            Json::Number(_) => self.as_usize().map(|v| v as u64),
            other => Err(JsonError::new(format!(
                "expected u64 string, got {other:?}"
            ))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> JsonResult<&str> {
        match self {
            Json::String(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> JsonResult<&[Json]> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// Render to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(x) => {
                // `{:?}` is Rust's shortest representation that parses back to
                // the same bits; non-finite values never reach here (ToJson
                // for f64 encodes them as strings).  Integral values within
                // f64's exact-integer range render without the trailing `.0`
                // (the reparse is still bit-exact; counts and indices read as
                // integers on the wire).
                debug_assert!(x.is_finite());
                let negative_zero = *x == 0.0 && x.is_sign_negative();
                if x.fract() == 0.0 && !negative_zero && x.abs() <= 9.007_199_254_740_992e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x:?}"));
                }
            }
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> JsonResult<Json> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth [`Json::parse`] accepts.  Deeper documents are
/// rejected with an error instead of overflowing the recursive-descent
/// parser's stack (which would abort the whole process).
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> JsonResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> JsonResult<Json> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> JsonResult<Json> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(JsonError::new(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} levels"
            )));
        }
        self.depth += 1;
        let value = self.value_inner();
        self.depth -= 1;
        value
    }

    fn value_inner(&mut self) -> JsonResult<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::new(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn number(&mut self) -> JsonResult<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("non-utf8 number"))?;
        let x: f64 = text
            .parse()
            .map_err(|e| JsonError::new(format!("bad number {text:?}: {e}")))?;
        // `"1e999".parse::<f64>()` succeeds with `inf`; admitting it would
        // break the `Json::Number`-is-finite invariant the writer relies on.
        if !x.is_finite() {
            return Err(JsonError::new(format!("number {text:?} overflows f64")));
        }
        Ok(Json::Number(x))
    }

    fn string(&mut self) -> JsonResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            // `unicode_escape` consumes the whole body
                            // (including a surrogate pair's second escape),
                            // so skip the generic advance below.
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        other => {
                            return Err(JsonError::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    // JSON requires control characters in strings to be
                    // escaped; also, the run consumer below would not advance
                    // past one, so admitting it here would loop forever.
                    return Err(JsonError::new(format!(
                        "unescaped control character 0x{b:02x} in string at byte {}",
                        self.pos
                    )));
                }
                Some(_) => {
                    // Consume the whole run up to the next quote, escape or
                    // control byte in one go.  Those delimiters are ASCII, so
                    // they can never split a multi-byte UTF-8 sequence and
                    // the run is valid UTF-8 on its own (the input was &str).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError::new("non-utf8 string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    /// Read four hex digits at the cursor, advancing past them.
    fn hex4(&mut self) -> JsonResult<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| JsonError::new("non-utf8 \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    /// Decode the body of a `\u` escape (cursor on the first hex digit),
    /// including UTF-16 surrogate pairs (e.g. `\ud83e\udd80` decodes to the
    /// crab emoji) as produced by standard JSON encoders for non-BMP
    /// characters.
    fn unicode_escape(&mut self) -> JsonResult<char> {
        let first = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: a low-surrogate escape must follow.
            if self.peek() != Some(b'\\') {
                return Err(JsonError::new("unpaired high surrogate in \\u escape"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(JsonError::new("unpaired high surrogate in \\u escape"));
            }
            self.pos += 1;
            let low = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&low) {
                return Err(JsonError::new("invalid low surrogate in \\u escape"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
            char::from_u32(code).ok_or_else(|| JsonError::new("bad \\u codepoint"))
        } else {
            // Lone low surrogates are invalid scalar values; from_u32 rejects
            // them.
            char::from_u32(first).ok_or_else(|| JsonError::new("bad \\u codepoint"))
        }
    }

    fn array(&mut self) -> JsonResult<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> JsonResult<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Convert `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstruct `Self` from a JSON value.
    fn from_json(value: &Json) -> JsonResult<Self>;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> JsonResult<Self> {
        value.as_bool()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        if self.is_finite() {
            Json::Number(*self)
        } else if self.is_nan() {
            Json::String("NaN".to_string())
        } else if *self > 0.0 {
            Json::String("inf".to_string())
        } else {
            Json::String("-inf".to_string())
        }
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> JsonResult<Self> {
        value.as_f64()
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Number(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(value: &Json) -> JsonResult<Self> {
        value.as_usize()
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl FromJson for u64 {
    fn from_json(value: &Json) -> JsonResult<Self> {
        value.as_u64()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> JsonResult<Self> {
        value.as_str().map(str::to_string)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> JsonResult<Self> {
        value.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(inner) => inner.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> JsonResult<Self> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        let text = r#"{"a":[1,2.5,true,null,"x\ny"],"b":{"c":-3e2}}"#;
        let value = Json::parse(text).unwrap();
        let rendered = value.render();
        assert_eq!(Json::parse(&rendered).unwrap(), value);
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_f64().unwrap(),
            -300.0
        );
    }

    #[test]
    fn f64_round_trips_are_bit_exact() {
        for &x in &[
            0.0,
            -0.0,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            1e-308,
            -2.2250738585072014e-308,
            6.0 / 7.0,
        ] {
            let json = x.to_json();
            let back = f64::from_json(&Json::parse(&json.render()).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "round trip broke for {x}");
        }
    }

    #[test]
    fn non_finite_floats_use_string_escapes() {
        assert_eq!(f64::NAN.to_json().render(), "\"NaN\"");
        assert!(f64::from_json(&Json::parse("\"NaN\"").unwrap())
            .unwrap()
            .is_nan());
        assert_eq!(
            f64::from_json(&Json::parse("\"-inf\"").unwrap()).unwrap(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn u64_round_trips_losslessly() {
        for &x in &[0u64, 1, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            let back = u64::from_json(&Json::parse(&x.to_json().render()).unwrap()).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash\ttab \u{1}ctl émoji 🦀".to_string();
        let back = String::from_json(&Json::parse(&s.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn utf16_surrogate_pairs_decode() {
        // Standard encoders (JSON.stringify, json.dumps ensure_ascii) emit
        // non-BMP characters as surrogate pairs.
        let value = Json::parse(r#""\ud83e\udd80 crab""#).unwrap();
        assert_eq!(value.as_str().unwrap(), "🦀 crab");
        let value = Json::parse(r#""\uD834\uDD1E""#).unwrap();
        assert_eq!(value.as_str().unwrap(), "\u{1D11E}");
        // BMP escapes still work, case-insensitive hex.
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap().as_str().unwrap(), "é");
    }

    #[test]
    fn lone_or_malformed_surrogates_are_rejected() {
        assert!(Json::parse(r#""\ud83e""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\udd80""#).is_err(), "lone low surrogate");
        assert!(
            Json::parse(r#""\ud83e\u0041""#).is_err(),
            "high surrogate followed by a non-surrogate escape"
        );
        assert!(
            Json::parse(r#""\ud83eX""#).is_err(),
            "high surrogate followed by a plain character"
        );
    }

    #[test]
    fn vectors_and_options_convert() {
        let v = vec![1.5f64, 2.5, -3.5];
        let back = Vec::<f64>::from_json(&v.to_json()).unwrap();
        assert_eq!(back, v);
        assert_eq!(Option::<f64>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(None::<f64>.to_json(), Json::Null);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        // An unescaped control byte inside a string is an error — and must
        // terminate (protocol fuzzing caught this looping forever).
        assert!(Json::parse("\"\u{1}\"").is_err());
        assert!(Json::parse("\"tab\there\"").is_err());
        assert!(Json::parse("\"tab\\there\"").is_ok());
        // Overflowing literals must not smuggle `inf` into Json::Number.
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
        // ...while the largest finite doubles still parse.
        assert!(Json::parse("1.7976931348623157e308").is_ok());
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Within the limit: fine.
        let shallow = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&shallow).is_ok());
        // Past the limit: a clean error, not a stack overflow.
        let deep = format!("{}1{}", "[".repeat(5000), "]".repeat(5000));
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // A megabyte-scale string parses instantly (the old per-char UTF-8
        // revalidation was quadratic).
        let body = "x".repeat(1_000_000);
        let start = std::time::Instant::now();
        let value = Json::parse(&format!("\"{body}\"")).unwrap();
        assert_eq!(value.as_str().unwrap().len(), 1_000_000);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "string parse took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn object_helpers() {
        let mut obj = Json::object();
        obj.set("k", Json::Number(1.0));
        assert_eq!(obj.require("k").unwrap().as_usize().unwrap(), 1);
        assert!(obj.require("missing").is_err());
        assert!(obj.get("k").unwrap().as_bool().is_err());
    }
}
