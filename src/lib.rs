//! Umbrella crate for the OASIS reproduction workspace.
//!
//! This package exists to own the workspace-level integration tests
//! (`tests/end_to_end.rs`, `tests/experiment_shapes.rs`) and the runnable
//! `examples/`. The substance lives in the member crates:
//!
//! * [`er_core`] — entity-resolution substrate (records, similarity, blocking,
//!   synthetic datasets, pool building).
//! * [`classifiers`] — from-scratch classifiers used as the ER systems under
//!   evaluation.
//! * [`oasis`] — the OASIS adaptive importance sampler and its baselines.
//! * [`experiments`] — figure/table reproduction drivers.

#![warn(missing_docs)]

pub use classifiers;
pub use er_core;
pub use experiments;
pub use oasis;
