//! Linear support-vector machine trained with the Pegasos algorithm
//! (stochastic sub-gradient descent on the hinge loss).
//!
//! This is the paper's workhorse classifier ("L-SVM", Table 2): its raw score
//! is the signed distance to the decision hyperplane, which is exactly the
//! *uncalibrated* score regime of Section 6.3.2.  Calibrated probabilities are
//! obtained by wrapping the trained model in a [`crate::PlattScaler`].

use crate::dataset::TrainingSet;
use crate::linalg::{dot, Standardizer};
use crate::Classifier;
use rand::Rng;

/// Hyperparameters of the Pegasos linear SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSvmConfig {
    /// L2 regularisation strength λ.
    pub lambda: f64,
    /// Number of stochastic epochs over the training set.
    pub epochs: usize,
}

impl Default for LinearSvmConfig {
    fn default() -> Self {
        LinearSvmConfig {
            lambda: 1e-3,
            epochs: 60,
        }
    }
}

/// A trained linear SVM.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    standardizer: Standardizer,
}

impl LinearSvm {
    /// Train with default hyperparameters.
    pub fn train<R: Rng + ?Sized>(data: &TrainingSet, rng: &mut R) -> Self {
        Self::train_with(data, LinearSvmConfig::default(), rng)
    }

    /// Train with explicit hyperparameters.
    ///
    /// # Panics
    /// Panics if the training set is empty.
    pub fn train_with<R: Rng + ?Sized>(
        data: &TrainingSet,
        config: LinearSvmConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty training set");
        let standardizer = Standardizer::fit(&data.features);
        let rows: Vec<Vec<f64>> = data
            .features
            .iter()
            .map(|r| standardizer.transform(r))
            .collect();
        let targets: Vec<f64> = data
            .labels
            .iter()
            .map(|&l| if l { 1.0 } else { -1.0 })
            .collect();
        let d = data.feature_count();
        let n = rows.len();
        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        let mut t = 0usize;
        for _ in 0..config.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                let eta = 1.0 / (config.lambda * t as f64);
                let margin = targets[i] * (dot(&weights, &rows[i]) + bias);
                // Regularisation shrink.
                for w in &mut weights {
                    *w *= 1.0 - eta * config.lambda;
                }
                if margin < 1.0 {
                    // Sub-gradient step on the hinge loss.
                    for (w, &x) in weights.iter_mut().zip(rows[i].iter()) {
                        *w += eta * targets[i] * x;
                    }
                    bias += eta * targets[i];
                }
            }
        }
        LinearSvm {
            weights,
            bias,
            standardizer,
        }
    }

    /// The learned weight vector (in standardised feature space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl Classifier for LinearSvm {
    fn score(&self, features: &[f64]) -> f64 {
        let x = self.standardizer.transform(features);
        dot(&self.weights, &x) + self.bias
    }

    fn decision_threshold(&self) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "L-SVM"
    }

    fn scores_are_probabilities(&self) -> bool {
        false
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A linearly separable-ish two-feature problem imitating ER similarity
    /// features: matches have high similarities, non-matches low, with noise.
    pub fn synthetic_pair_data(n: usize, positive_rate: f64, seed: u64) -> TrainingSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let is_match = rng.gen_bool(positive_rate);
            let base = if is_match { 0.75 } else { 0.2 };
            let f1: f64 = (base + 0.25 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0);
            let f2: f64 = (base + 0.35 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0);
            let f3: f64 = rng.gen(); // pure noise feature
            features.push(vec![f1, f2, f3]);
            labels.push(is_match);
        }
        TrainingSet::new(features, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::synthetic_pair_data;
    use super::*;
    use crate::metrics::{accuracy, f1_score, roc_auc};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_a_separable_problem() {
        let train = synthetic_pair_data(600, 0.4, 1);
        let test = synthetic_pair_data(400, 0.4, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let svm = LinearSvm::train(&train, &mut rng);
        let predictions: Vec<bool> = test.features.iter().map(|f| svm.predict(f)).collect();
        let acc = accuracy(&predictions, &test.labels);
        assert!(acc > 0.9, "accuracy {acc}");
        assert!(f1_score(&predictions, &test.labels) > 0.85);
    }

    #[test]
    fn scores_rank_matches_above_non_matches() {
        let train = synthetic_pair_data(600, 0.4, 4);
        let test = synthetic_pair_data(400, 0.4, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let svm = LinearSvm::train(&train, &mut rng);
        let scores: Vec<f64> = test.features.iter().map(|f| svm.score(f)).collect();
        assert!(roc_auc(&scores, &test.labels) > 0.95);
    }

    #[test]
    fn margin_scores_are_not_probabilities() {
        let train = synthetic_pair_data(300, 0.4, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let svm = LinearSvm::train(&train, &mut rng);
        assert!(!svm.scores_are_probabilities());
        assert_eq!(svm.decision_threshold(), 0.0);
        assert_eq!(svm.name(), "L-SVM");
        // Some scores should exceed the [0, 1] range — they're margins.
        let out_of_unit = train
            .features
            .iter()
            .any(|f| !(0.0..=1.0).contains(&svm.score(f)));
        assert!(out_of_unit);
    }

    #[test]
    fn noise_feature_gets_small_weight() {
        let train = synthetic_pair_data(2000, 0.4, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let svm = LinearSvm::train(&train, &mut rng);
        let w = svm.weights();
        assert!(
            w[2].abs() < w[0].abs(),
            "noise weight {} should be smaller than signal weight {}",
            w[2],
            w[0]
        );
        assert!(svm.bias().is_finite());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn training_on_empty_set_panics() {
        let mut rng = StdRng::seed_from_u64(11);
        LinearSvm::train(&TrainingSet::new(vec![], vec![]), &mut rng);
    }

    #[test]
    fn custom_config_is_respected() {
        let train = synthetic_pair_data(300, 0.4, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let config = LinearSvmConfig {
            lambda: 1e-2,
            epochs: 5,
        };
        let svm = LinearSvm::train_with(&train, config, &mut rng);
        let predictions: Vec<bool> = train.features.iter().map(|f| svm.predict(f)).collect();
        assert!(accuracy(&predictions, &train.labels) > 0.8);
    }
}
