//! An incremental Fenwick (binary indexed) tree over categorical weights.
//!
//! [`CategoricalCdf`](super::CategoricalCdf) freezes a distribution into
//! cumulative sums: O(N) to build, O(log N) per draw, but *any* weight change
//! forces a full rebuild.  That is the cost profile behind the OASIS
//! `cdf_rebuilds` counter — every applied label dirties the proposal and the
//! next propose pays O(N).  A Fenwick tree stores the same partial-sum
//! information implicitly, so a single weight update is O(log N) and a
//! categorical draw is still one uniform variate plus an O(log N) descent:
//!
//! | operation | `CategoricalCdf` | [`FenwickTree`] |
//! |---|---|---|
//! | build | O(N) | O(N) |
//! | draw | O(log N) | O(log N) |
//! | update one weight | O(N) rebuild | O(log² N), canonical (see [`FenwickTree::set`]) |
//! | prefix sum | O(1) | O(log N) |
//!
//! The sharded sampler keeps one leaf per shard and re-weights the routed
//! shard on every label, making per-label proposal cost independent of the
//! total pool size.  `CategoricalCdf` stays as the property-test oracle: on
//! integer-valued weights both structures compute *exact* sums, so draws
//! driven by the same RNG stream must agree index-for-index.
//!
//! Internally the classic 1-based layout is used: `tree[i]` holds the sum of
//! the `i & (-i)` leaves ending at `i`.  The sampling descent walks the
//! implicit binary structure top-down (Fenwick "binary lifting"), consuming
//! exactly one `f64` from the RNG — the same uniform-variate discipline as
//! [`sample_from_cumulative`](super::sample_from_cumulative), so degenerate
//! (zero/non-finite) totals fall back to a uniform index draw exactly like
//! the CDF path.

use rand::Rng;

/// A Fenwick tree of non-negative `f64` weights supporting O(log N) point
/// updates, prefix sums and categorical draws.
#[derive(Debug, Clone, PartialEq)]
pub struct FenwickTree {
    /// 1-based implicit tree; `tree[0]` is unused padding.
    tree: Vec<f64>,
    /// The raw leaf weights, kept so `set` can compute deltas exactly and
    /// `weight(i)` is O(1).
    leaves: Vec<f64>,
}

impl FenwickTree {
    /// Build a tree over `weights` (non-negative, not necessarily
    /// normalised).  O(N) via the standard parent-propagation construction.
    ///
    /// # Panics
    /// Panics if `weights` is empty (a categorical distribution needs at
    /// least one category — same contract as `CategoricalCdf::new`).
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "categorical distribution needs at least one weight"
        );
        let n = weights.len();
        let mut tree = vec![0.0; n + 1];
        tree[1..].copy_from_slice(weights);
        for i in 1..=n {
            let parent = i + lowbit(i);
            if parent <= n {
                tree[parent] += tree[i];
            }
        }
        FenwickTree {
            tree,
            leaves: weights.to_vec(),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether there are zero categories (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The current weight of leaf `index`.
    pub fn weight(&self, index: usize) -> f64 {
        self.leaves[index]
    }

    /// Replace the weight of leaf `index` with `weight`, recomputing the
    /// O(log N) ancestor nodes on the update path.
    ///
    /// Each ancestor is recomputed *from its children in construction order*
    /// rather than nudged by the delta (`tree[i] += delta` would accumulate
    /// different rounding than a fresh build).  This keeps a canonical
    /// invariant: after any update sequence, the tree is bit-identical to
    /// `from_weights` over the current leaves — which is what lets a restored
    /// checkpoint rebuild the tree from leaf weights and continue drawing the
    /// exact same stream.  Cost is O(log² N) additions, still independent of
    /// the leaf count on the hot path.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn set(&mut self, index: usize, weight: f64) {
        if self.leaves[index].to_bits() == weight.to_bits() {
            return;
        }
        self.leaves[index] = weight;
        let n = self.leaves.len();
        let mut node = index + 1;
        while node <= n {
            // `from_weights` forms tree[node] as the leaf plus each child
            // block in ascending index order (node-b/2, node-b/4, …, node-1
            // for b = lowbit(node)); reproduce that exact summation order.
            let mut sum = self.leaves[node - 1];
            let mut step = lowbit(node) >> 1;
            while step > 0 {
                sum += self.tree[node - step];
                step >>= 1;
            }
            self.tree[node] = sum;
            node += lowbit(node);
        }
    }

    /// Sum of the first `count` weights, `Σ_{i<count} w_i`, in O(log N).
    ///
    /// # Panics
    /// Panics if `count > len()`.
    pub fn prefix_sum(&self, count: usize) -> f64 {
        assert!(count <= self.leaves.len());
        let mut sum = 0.0;
        let mut i = count;
        while i > 0 {
            sum += self.tree[i];
            i -= lowbit(i);
        }
        sum
    }

    /// Total weight `Σ w_i`, in O(log N).
    pub fn total(&self) -> f64 {
        self.prefix_sum(self.leaves.len())
    }

    /// Draw one index with probability proportional to its weight, using a
    /// single uniform variate and an O(log N) top-down descent.
    ///
    /// A zero or non-finite total falls back to a uniform index draw — the
    /// same degenerate-distribution contract as
    /// [`sample_from_cumulative`](super::sample_from_cumulative).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        debug_assert!(!self.leaves.is_empty());
        let total = self.total();
        if total <= 0.0 || !total.is_finite() {
            return rng.gen_range(0..self.leaves.len());
        }
        let target = rng.gen::<f64>() * total;
        self.descend(target)
    }

    /// The first index whose *cumulative* weight reaches `target` — the same
    /// partition the binary search in `sample_from_cumulative` computes, so a
    /// shared `target` lets tests compare the two index-for-index.
    pub(crate) fn descend(&self, target: f64) -> usize {
        let n = self.leaves.len();
        // Walk down from the highest power-of-two block: at each step, if the
        // whole left block's sum is strictly below the (remaining) target,
        // consume it and move right.  This lands on the first index whose
        // inclusive prefix sum is >= target.
        let mut index = 0usize; // count of leaves fully consumed
        let mut remaining = target;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = index + step;
            if next <= n && self.tree[next] < remaining {
                remaining -= self.tree[next];
                index = next;
            }
            step >>= 1;
        }
        // `index` leaves sum below target; the answer is the next leaf,
        // clamped like the CDF path for target == total edge rounding.
        index.min(n - 1)
    }
}

/// Lowest set bit of `i` (`i & -i`), the Fenwick stride.
fn lowbit(i: usize) -> usize {
    i & i.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::super::{fill_cumulative, CategoricalCdf};
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flat_prefix(weights: &[f64], count: usize) -> f64 {
        // Fold from +0.0 explicitly: `Iterator::sum` seeds with -0.0, whose
        // sign survives the empty prefix and breaks the bitwise comparison.
        weights[..count].iter().fold(0.0, |acc, &w| acc + w)
    }

    #[test]
    fn construction_matches_flat_prefix_sums() {
        let weights = [3.0, 0.0, 5.0, 1.0, 2.0, 2.0, 7.0];
        let tree = FenwickTree::from_weights(&weights);
        assert_eq!(tree.len(), 7);
        assert!(!tree.is_empty());
        for count in 0..=weights.len() {
            assert_eq!(
                tree.prefix_sum(count).to_bits(),
                flat_prefix(&weights, count).to_bits(),
                "prefix {count}"
            );
        }
        assert_eq!(tree.total(), 20.0);
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(tree.weight(i), w);
        }
    }

    #[test]
    fn set_updates_sums_exactly_on_integer_weights() {
        let mut weights = vec![1.0f64; 16];
        let mut tree = FenwickTree::from_weights(&weights);
        // Arbitrary integer-valued updates stay exact (no rounding below 2^53).
        let updates = [(0usize, 9.0), (15, 0.0), (7, 123.0), (8, 2.0), (7, 0.0)];
        for &(i, w) in &updates {
            tree.set(i, w);
            weights[i] = w;
            for count in 0..=weights.len() {
                assert_eq!(tree.prefix_sum(count), flat_prefix(&weights, count));
            }
        }
        assert_eq!(tree.total(), weights.iter().sum::<f64>());
    }

    #[test]
    fn single_leaf_total_is_the_leaf_bitwise() {
        // The sharded K=1 parity argument relies on total() == the single
        // leaf value bit-for-bit, so the selection probability is exactly 1.
        let tree = FenwickTree::from_weights(&[0.123456789e-3]);
        assert_eq!(tree.total().to_bits(), 0.123456789e-3f64.to_bits());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(tree.sample(&mut rng), 0);
        }
    }

    #[test]
    fn updates_keep_the_tree_canonical_on_real_weights() {
        // `set` must leave the internal nodes bit-identical to a fresh build
        // over the current leaves — the exact-resume property the sharded
        // checkpoint path relies on.  Real-valued weights are the hard case:
        // a delta-style `tree[i] += w_new - w_old` would drift here.
        let mut tree = FenwickTree::from_weights(&[0.3, 0.11, 7.9, 0.001, 2.5, 0.7]);
        let updates = [
            (0usize, 1.0 / 3.0),
            (3, 9.25e3),
            (5, 0.1 + 0.2), // deliberately not representable as 0.3
            (3, 1e-12),
            (2, 0.0),
        ];
        for &(i, w) in &updates {
            tree.set(i, w);
            let fresh = FenwickTree::from_weights(&tree.leaves);
            for (node, (&a, &b)) in tree.tree.iter().zip(fresh.tree.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "node {node} after set({i}, {w})");
            }
        }
    }

    #[test]
    fn degenerate_totals_fall_back_to_uniform_like_the_cdf() {
        let tree = FenwickTree::from_weights(&[0.0, 0.0, 0.0]);
        let mut seen = [false; 3];
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            seen[tree.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Exact oracle: on integer-valued weights (sums far below 2^53 so
        /// f64 addition is exact whatever the association), every prefix sum
        /// equals the flat scan after an arbitrary update sequence.
        #[test]
        fn prefix_sums_exact_after_arbitrary_integer_updates(
            initial in proptest::collection::vec(0u32..1000, 1..128),
            updates in proptest::collection::vec((0usize..128, 0u32..1000), 0..64),
        ) {
            let mut weights: Vec<f64> = initial.iter().map(|&w| f64::from(w)).collect();
            let mut tree = FenwickTree::from_weights(&weights);
            for &(index, w) in &updates {
                let index = index % weights.len();
                tree.set(index, f64::from(w));
                weights[index] = f64::from(w);
            }
            for count in 0..=weights.len() {
                proptest::prop_assert_eq!(
                    tree.prefix_sum(count).to_bits(),
                    flat_prefix(&weights, count).to_bits()
                );
            }
        }

        /// Draw oracle: with integer weights, the Fenwick descent and the
        /// `CategoricalCdf` binary search fed the *same* RNG stream pick
        /// identical indices on every draw.
        #[test]
        fn draws_identical_to_categorical_cdf_on_integer_weights(
            raw in proptest::collection::vec(0u32..1000, 1..128),
            seed in proptest::prelude::any::<u64>(),
        ) {
            let weights: Vec<f64> = raw.iter().map(|&w| f64::from(w)).collect();
            let tree = FenwickTree::from_weights(&weights);
            let cdf = CategoricalCdf::new(&weights);
            let mut rng_tree = StdRng::seed_from_u64(seed);
            let mut rng_cdf = StdRng::seed_from_u64(seed);
            for draw in 0..256 {
                proptest::prop_assert_eq!(
                    tree.sample(&mut rng_tree),
                    cdf.sample(&mut rng_cdf),
                    "draw {}", draw
                );
            }
        }

        /// Shared-target audit: the descent and the cumulative binary search
        /// partition on the same quantity.  Integer weights keep every
        /// partial sum exact, so the two are comparable index-for-index for
        /// *any* target, not just away from rounding boundaries.
        #[test]
        fn descent_matches_binary_search_over_fenwick_prefix_sums(
            ints in proptest::collection::vec(0u32..1000, 1..128),
            unit in 0.0f64..1.0,
        ) {
            let raw: Vec<f64> = ints.iter().map(|&w| f64::from(w)).collect();
            let tree = FenwickTree::from_weights(&raw);
            let total = tree.total();
            proptest::prop_assume!(total > 0.0 && total.is_finite());
            let target = unit * total;
            // Cumulative sums as the *tree* computes them, so both sides
            // search the identical sequence.
            let sums: Vec<f64> = (1..=raw.len()).map(|c| tree.prefix_sum(c)).collect();
            let by_search = sums.partition_point(|&c| c < target).min(raw.len() - 1);
            proptest::prop_assert_eq!(tree.descend(target), by_search);
        }

        /// Distributional audit vs the rebuilt-CDF path on arbitrary real
        /// weights (where bitwise sum equality cannot hold): same seed, both
        /// samplers' empirical frequencies agree to sampling noise.
        #[test]
        fn real_weight_draws_agree_distributionally_with_cdf(
            weights in proptest::collection::vec(0.01f64..10.0, 2..20),
            seed in proptest::prelude::any::<u64>(),
        ) {
            let draws = 4000usize;
            let tree = FenwickTree::from_weights(&weights);
            let mut cumulative = Vec::new();
            fill_cumulative(&weights, &mut cumulative);
            let cdf = CategoricalCdf::new(&weights);
            let mut tree_counts = vec![0usize; weights.len()];
            let mut cdf_counts = vec![0usize; weights.len()];
            let mut rng_tree = StdRng::seed_from_u64(seed);
            let mut rng_cdf = StdRng::seed_from_u64(seed);
            for _ in 0..draws {
                tree_counts[tree.sample(&mut rng_tree)] += 1;
                cdf_counts[cdf.sample(&mut rng_cdf)] += 1;
            }
            for (k, (&t, &c)) in tree_counts.iter().zip(cdf_counts.iter()).enumerate() {
                let diff = (t as f64 - c as f64).abs() / draws as f64;
                proptest::prop_assert!(
                    diff < 0.01,
                    "category {} frequency drift {} (tree {}, cdf {})", k, diff, t, c
                );
            }
        }
    }
}
