//! Figure 2: expected absolute error and standard deviation of F̂½ versus
//! label budget, for every pool and every sampling method.
//!
//! This is the paper's headline experiment: on all five ER pools OASIS reaches
//! a given estimation error with a fraction of the labels that Passive,
//! Stratified or static IS need, while on the balanced tweets100k pool all
//! methods coincide.

use crate::curves::{compare_methods, CurveConfig, MethodCurve};
use crate::methods::Method;
use crate::pools::direct_pool;
use crate::report::{fmt_float, TextTable};
use er_core::datasets::{all_profiles, DatasetProfile, Domain};

/// The curves of every method on one pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolCurves {
    /// Dataset name.
    pub name: String,
    /// True F½ of the pool (the estimation target).
    pub true_f_measure: f64,
    /// One curve per method.
    pub curves: Vec<MethodCurve>,
}

/// The reproduced Figure 2 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2 {
    /// One entry per dataset pool.
    pub pools: Vec<PoolCurves>,
    /// Pool scale used.
    pub scale: f64,
    /// Number of repeats per method.
    pub repeats: usize,
}

/// Configuration of the Figure 2 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2Config {
    /// Pool scale (1.0 = the paper's pool sizes).
    pub scale: f64,
    /// Number of repeats per method (the paper uses 1000).
    pub repeats: usize,
    /// Maximum label budget per pool, as a fraction of the pool size (the
    /// paper uses budgets up to a few ×10⁴ labels on pools of 5×10⁴–7×10⁵).
    pub budget_fraction: f64,
    /// Number of budget checkpoints.
    pub checkpoints: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the repeats.
    pub threads: usize,
    /// Restrict to the named datasets (empty = all six).
    pub datasets: Vec<String>,
}

impl Default for Figure2Config {
    fn default() -> Self {
        Figure2Config {
            scale: 0.1,
            repeats: 100,
            budget_fraction: 0.06,
            checkpoints: 12,
            seed: 2017,
            threads: 4,
            datasets: Vec::new(),
        }
    }
}

/// Run the Figure 2 experiment for one profile.
pub fn run_profile(profile: &DatasetProfile, config: &Figure2Config) -> PoolCurves {
    let pool = direct_pool(profile, config.scale, true, config.seed);
    let max_budget = ((pool.len() as f64 * config.budget_fraction) as usize).max(20);
    let step = (max_budget / config.checkpoints).max(1);
    let curve_config = CurveConfig {
        checkpoints: (1..=config.checkpoints).map(|i| i * step).collect(),
        repeats: config.repeats,
        alpha: 0.5,
        seed: config.seed,
        threads: config.threads,
    };
    let methods = if profile.domain == Domain::Tweets {
        Method::figure2_lineup_balanced()
    } else {
        Method::figure2_lineup()
    };
    let curves = compare_methods(&pool, &methods, &curve_config);
    PoolCurves {
        name: profile.name.to_string(),
        true_f_measure: pool.true_f_measure,
        curves,
    }
}

/// Run the Figure 2 experiment for all (selected) profiles.
pub fn run(config: &Figure2Config) -> Figure2 {
    let pools = all_profiles()
        .iter()
        .filter(|p| {
            config.datasets.is_empty()
                || config
                    .datasets
                    .iter()
                    .any(|d| d.eq_ignore_ascii_case(p.name))
        })
        .map(|p| run_profile(p, config))
        .collect();
    Figure2 {
        pools,
        scale: config.scale,
        repeats: config.repeats,
    }
}

impl Figure2 {
    /// Render every pool's error curves as plain-text tables.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 2: E|F̂ − F| and std. dev. vs label budget (pools at scale {:.3}, {} repeats)\n",
            self.scale, self.repeats
        );
        for pool in &self.pools {
            out.push_str(&format!(
                "\n--- {} (true F1/2 = {:.3}) ---\n",
                pool.name, pool.true_f_measure
            ));
            let mut header = vec!["Budget".to_string()];
            for curve in &pool.curves {
                header.push(format!("{} abs.err", curve.label));
                header.push(format!("{} std", curve.label));
            }
            let mut table = TextTable::new(header);
            if let Some(first) = pool.curves.first() {
                for (i, &budget) in first.budgets.iter().enumerate() {
                    let mut row = vec![budget.to_string()];
                    for curve in &pool.curves {
                        row.push(fmt_float(curve.absolute_error[i], 4));
                        row.push(fmt_float(curve.std_dev[i], 4));
                    }
                    table.add_row(row);
                }
            }
            out.push_str(&table.render());
        }
        out
    }

    /// Summary statistic used in the paper's abstract: the labelling-budget
    /// reduction OASIS achieves relative to passive sampling at matched error.
    /// Returns, per pool, the ratio `budget_passive / budget_oasis` needed to
    /// reach the error OASIS attains at its final checkpoint (∞ when passive
    /// never reaches it).
    pub fn label_savings(&self) -> Vec<(String, f64)> {
        let mut savings = Vec::new();
        for pool in &self.pools {
            let oasis = pool
                .curves
                .iter()
                .find(|c| c.label.starts_with("OASIS"))
                .cloned();
            let passive = pool.curves.iter().find(|c| c.label == "Passive").cloned();
            if let (Some(oasis), Some(passive)) = (oasis, passive) {
                let target = oasis.final_error();
                let oasis_budget = *oasis.budgets.last().unwrap_or(&1) as f64;
                let passive_budget = passive
                    .budgets
                    .iter()
                    .zip(passive.absolute_error.iter())
                    .find(|(_, &err)| err.is_finite() && err <= target)
                    .map(|(&b, _)| b as f64);
                let ratio = passive_budget
                    .map(|b| b / oasis_budget)
                    .unwrap_or(f64::INFINITY);
                savings.push((pool.name.clone(), ratio));
            }
        }
        savings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Figure2Config {
        Figure2Config {
            scale: 0.02,
            repeats: 6,
            budget_fraction: 0.2,
            checkpoints: 4,
            seed: 3,
            threads: 2,
            datasets: vec!["Abt-Buy".to_string()],
        }
    }

    #[test]
    fn runs_selected_profiles_only() {
        let figure = run(&tiny_config());
        assert_eq!(figure.pools.len(), 1);
        assert_eq!(figure.pools[0].name, "Abt-Buy");
        assert_eq!(figure.pools[0].curves.len(), 6);
        for curve in &figure.pools[0].curves {
            assert_eq!(curve.budgets.len(), 4);
        }
    }

    #[test]
    fn oasis_beats_passive_on_an_imbalanced_pool() {
        let mut config = tiny_config();
        config.scale = 0.05;
        config.repeats = 10;
        let pool_curves = run_profile(&DatasetProfile::abt_buy(), &config);
        let passive = pool_curves
            .curves
            .iter()
            .find(|c| c.label == "Passive")
            .unwrap();
        let oasis = pool_curves
            .curves
            .iter()
            .find(|c| c.label == "OASIS 30")
            .unwrap();
        // Compare the mean error over the checkpoints where both are defined.
        let mut passive_total = 0.0;
        let mut oasis_total = 0.0;
        let mut n = 0;
        for i in 0..passive.budgets.len() {
            if passive.absolute_error[i].is_finite() && oasis.absolute_error[i].is_finite() {
                passive_total += passive.absolute_error[i];
                oasis_total += oasis.absolute_error[i];
                n += 1;
            }
        }
        if n > 0 {
            assert!(
                oasis_total <= passive_total + 0.02,
                "OASIS mean error {} vs passive {}",
                oasis_total / n as f64,
                passive_total / n as f64
            );
        } else {
            // Passive never defined at these budgets — itself evidence of the
            // imbalance problem OASIS solves.
            assert!(oasis.absolute_error.iter().any(|e| e.is_finite()));
        }
    }

    #[test]
    fn render_and_savings_are_well_formed() {
        let figure = run(&tiny_config());
        let text = figure.render();
        assert!(text.contains("Figure 2"));
        assert!(text.contains("Abt-Buy"));
        let savings = figure.label_savings();
        assert_eq!(savings.len(), 1);
        assert!(savings[0].1 > 0.0);
    }
}
