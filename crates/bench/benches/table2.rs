//! Bench: regenerate Table 2 (pools + L-SVM operating points).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table2(c: &mut Criterion) {
    let table = experiments::table2::run(0.01, 2017);
    println!("\n{}", table.render());

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("build_pools_and_measure_operating_points_scale_0.01", |b| {
        b.iter(|| experiments::table2::run(0.01, 2017))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
