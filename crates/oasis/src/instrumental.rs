//! Instrumental (proposal) distributions for importance sampling.
//!
//! The asymptotically optimal instrumental distribution for F-measure
//! estimation (paper Eqn. 5) concentrates sampling effort where it most
//! reduces the estimator's asymptotic variance.  Because it depends on the
//! unknown true F-measure and oracle probabilities, OASIS evaluates it with
//! plug-in estimates over strata (Sec. 4.2.3) and mixes in an ε fraction of
//! the underlying distribution to guarantee every stratum retains non-zero
//! mass — the ε-greedy distribution of Eqn. 6/12 that makes the estimator
//! consistent (Theorem 3 and Remark 5).
//!
//! The same pointwise formula is also used by the *static* importance sampler
//! of Sawade et al. (the `IS` baseline), which plugs in similarity scores once
//! and never adapts.

/// Un-normalised pointwise value of the asymptotically optimal instrumental
/// distribution (paper Eqn. 5) for an item with
/// * `prediction` — the ER system's predicted label `ℓ̂(z)`,
/// * `oracle_probability` — (an estimate of) `p(1|z)`,
/// * `f_measure` — (an estimate of) the true `F_α`,
/// * `alpha` — the F-measure weight.
///
/// The caller multiplies by the underlying mass `p(z)` (or the stratum weight
/// `ω_k`) and normalises over the pool/strata.
pub fn optimal_mass(prediction: bool, oracle_probability: f64, f_measure: f64, alpha: f64) -> f64 {
    let p1 = oracle_probability.clamp(0.0, 1.0);
    let f = f_measure.clamp(0.0, 1.0);
    if prediction {
        // ℓ̂(z) = 1 branch: sqrt(α²F²(1 − p) + (1 − F)² p)
        (alpha * alpha * f * f * (1.0 - p1) + (1.0 - f) * (1.0 - f) * p1).sqrt()
    } else {
        // ℓ̂(z) = 0 branch: (1 − α) F sqrt(p)
        (1.0 - alpha) * f * p1.sqrt()
    }
}

/// The stratified asymptotically optimal instrumental distribution `v*`
/// (paper Sec. 4.2.3), **normalised to sum to one**.
///
/// * `weights` — stratum weights `ω_k = |P_k| / N`,
/// * `mean_predictions` — per-stratum mean predicted label `λ_k`,
/// * `pi_estimates` — per-stratum oracle-probability estimates `π̂_k`,
/// * `f_estimate` — current F-measure estimate,
/// * `alpha` — F-measure weight.
///
/// If every un-normalised mass is zero (possible early on when `F̂ = 0` and no
/// stratum is predicted positive) the function falls back to the stratum
/// weights, which is the natural "no information" proposal.
pub fn stratified_optimal(
    weights: &[f64],
    mean_predictions: &[f64],
    pi_estimates: &[f64],
    f_estimate: f64,
    alpha: f64,
) -> Vec<f64> {
    debug_assert_eq!(weights.len(), mean_predictions.len());
    debug_assert_eq!(weights.len(), pi_estimates.len());
    let f = f_estimate.clamp(0.0, 1.0);
    let mut v: Vec<f64> = weights
        .iter()
        .zip(mean_predictions.iter())
        .zip(pi_estimates.iter())
        .map(|((&w, &lambda), &pi)| {
            let pi = pi.clamp(0.0, 1.0);
            let negative_branch = (1.0 - alpha) * (1.0 - lambda) * f * pi.sqrt();
            let positive_branch =
                lambda * (alpha * alpha * f * f * (1.0 - pi) + (1.0 - f) * (1.0 - f) * pi).sqrt();
            w * (negative_branch + positive_branch)
        })
        .collect();
    let total: f64 = v.iter().sum();
    if total > 0.0 && total.is_finite() {
        for value in &mut v {
            *value /= total;
        }
        v
    } else {
        normalise_or_uniform(weights)
    }
}

/// The *un-normalised total mass* of the stratified asymptotically optimal
/// instrumental distribution — the normalising constant `Z` that
/// [`stratified_optimal`] divides by.  Inputs are as for
/// [`stratified_optimal`].
///
/// A sharded sampler uses this as a scalar summary of how much proposal mass
/// a shard's current posterior "wants": shard-selection weights proportional
/// to `ω_shard · Z_shard` approximate the cross-shard optimal allocation
/// while staying O(K_strata) to recompute per label.  Returns `0.0` in the
/// degenerate all-zero case (callers fall back to the shard weight alone,
/// mirroring [`stratified_optimal`]'s fallback to the stratum weights).
pub fn stratified_optimal_mass(
    weights: &[f64],
    mean_predictions: &[f64],
    pi_estimates: &[f64],
    f_estimate: f64,
    alpha: f64,
) -> f64 {
    debug_assert_eq!(weights.len(), mean_predictions.len());
    debug_assert_eq!(weights.len(), pi_estimates.len());
    let f = f_estimate.clamp(0.0, 1.0);
    let total: f64 = weights
        .iter()
        .zip(mean_predictions.iter())
        .zip(pi_estimates.iter())
        .map(|((&w, &lambda), &pi)| {
            let pi = pi.clamp(0.0, 1.0);
            let negative_branch = (1.0 - alpha) * (1.0 - lambda) * f * pi.sqrt();
            let positive_branch =
                lambda * (alpha * alpha * f * f * (1.0 - pi) + (1.0 - f) * (1.0 - f) * pi).sqrt();
            w * (negative_branch + positive_branch)
        })
        .sum();
    if total.is_finite() {
        total
    } else {
        0.0
    }
}

/// Mix a target distribution with the underlying distribution:
/// `q = ε·p + (1 − ε)·q*` (paper Eqn. 6/12).  Both inputs must already be
/// normalised; the output is normalised by construction.
pub fn epsilon_greedy(underlying: &[f64], optimal: &[f64], epsilon: f64) -> Vec<f64> {
    debug_assert_eq!(underlying.len(), optimal.len());
    underlying
        .iter()
        .zip(optimal.iter())
        .map(|(&p, &q)| epsilon * p + (1.0 - epsilon) * q)
        .collect()
}

/// Normalise a non-negative vector to sum to one, falling back to the uniform
/// distribution when the total mass is zero or non-finite.
pub fn normalise_or_uniform(mass: &[f64]) -> Vec<f64> {
    let total: f64 = mass.iter().sum();
    if total > 0.0 && total.is_finite() {
        mass.iter().map(|&m| m / total).collect()
    } else {
        vec![1.0 / mass.len() as f64; mass.len()]
    }
}

/// The pointwise asymptotically optimal instrumental distribution over a whole
/// pool, as used by the static IS baseline of Sawade et al.: plug similarity
/// scores (squashed to `[0, 1]`) in place of the oracle probabilities, and an
/// initial F-measure guess in place of the true value.  Returns a normalised
/// probability vector over pool items.
pub fn pointwise_optimal(
    predictions: &[bool],
    probabilities: &[f64],
    f_guess: f64,
    alpha: f64,
) -> Vec<f64> {
    debug_assert_eq!(predictions.len(), probabilities.len());
    let mass: Vec<f64> = predictions
        .iter()
        .zip(probabilities.iter())
        .map(|(&pred, &p)| optimal_mass(pred, p, f_guess, alpha))
        .collect();
    normalise_or_uniform(&mass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_mass_zero_when_no_signal() {
        // A predicted non-match with zero oracle probability contributes nothing
        // to the F-measure and gets zero optimal mass (Remark 5 motivation).
        assert_eq!(optimal_mass(false, 0.0, 0.5, 0.5), 0.0);
        // A predicted match always has positive mass when F < 1.
        assert!(optimal_mass(true, 0.0, 0.5, 0.5) > 0.0);
    }

    #[test]
    fn optimal_mass_matches_formula() {
        let alpha: f64 = 0.5;
        let f: f64 = 0.6;
        let p: f64 = 0.3;
        let expected_pos = (alpha * alpha * f * f * (1.0 - p) + (1.0 - f) * (1.0 - f) * p).sqrt();
        let expected_neg = (1.0 - alpha) * f * p.sqrt();
        assert!((optimal_mass(true, p, f, alpha) - expected_pos).abs() < 1e-15);
        assert!((optimal_mass(false, p, f, alpha) - expected_neg).abs() < 1e-15);
    }

    #[test]
    fn optimal_mass_clamps_out_of_range_inputs() {
        let clean = optimal_mass(true, 1.0, 1.0, 0.5);
        let dirty = optimal_mass(true, 1.7, 1.3, 0.5);
        assert!((clean - dirty).abs() < 1e-15);
        assert!(optimal_mass(false, -0.5, 0.5, 0.5) >= 0.0);
    }

    #[test]
    fn stratified_optimal_is_a_distribution() {
        let weights = [0.7, 0.2, 0.1];
        let lambdas = [0.0, 0.5, 1.0];
        let pis = [0.01, 0.4, 0.95];
        let v = stratified_optimal(&weights, &lambdas, &pis, 0.6, 0.5);
        let total: f64 = v.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn stratified_optimal_prefers_informative_strata() {
        // A small stratum full of predicted matches with uncertain labels should
        // receive far more mass per item than a big stratum of confident
        // non-matches.
        let weights = [0.95, 0.05];
        let lambdas = [0.0, 1.0];
        let pis = [0.001, 0.5];
        let v = stratified_optimal(&weights, &lambdas, &pis, 0.5, 0.5);
        let per_item_0 = v[0] / weights[0];
        let per_item_1 = v[1] / weights[1];
        assert!(
            per_item_1 > 5.0 * per_item_0,
            "per-item mass: uncertain-match stratum {per_item_1} vs non-match stratum {per_item_0}"
        );
    }

    #[test]
    fn stratified_optimal_degenerate_falls_back_to_weights() {
        // F̂ = 0 and no predicted positives → all optimal masses are zero.
        let weights = [0.25, 0.75];
        let v = stratified_optimal(&weights, &[0.0, 0.0], &[0.2, 0.3], 0.0, 0.5);
        assert!((v[0] - 0.25).abs() < 1e-12);
        assert!((v[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stratified_optimal_mass_is_the_normalising_constant() {
        let weights = [0.7, 0.2, 0.1];
        let lambdas = [0.0, 0.5, 1.0];
        let pis = [0.01, 0.4, 0.95];
        let z = stratified_optimal_mass(&weights, &lambdas, &pis, 0.6, 0.5);
        assert!(z > 0.0);
        // Dividing the raw per-stratum masses by Z reproduces the
        // normalised distribution bit-for-bit (same arithmetic order).
        let v = stratified_optimal(&weights, &lambdas, &pis, 0.6, 0.5);
        let raw: Vec<f64> = weights
            .iter()
            .zip(lambdas.iter())
            .zip(pis.iter())
            .map(|((&w, &lambda), &pi)| {
                let f: f64 = 0.6;
                let alpha = 0.5;
                let neg = (1.0 - alpha) * (1.0 - lambda) * f * pi.sqrt();
                let pos = lambda
                    * (alpha * alpha * f * f * (1.0 - pi) + (1.0 - f) * (1.0 - f) * pi).sqrt();
                w * (neg + pos)
            })
            .collect();
        for (norm, r) in v.iter().zip(raw.iter()) {
            assert_eq!(norm.to_bits(), (r / z).to_bits());
        }
        // Degenerate case: zero mass, not NaN.
        assert_eq!(
            stratified_optimal_mass(&weights, &[0.0; 3], &pis, 0.0, 0.5),
            0.0
        );
    }

    #[test]
    fn epsilon_greedy_keeps_all_mass_positive() {
        let underlying = [0.5, 0.3, 0.2];
        let optimal = [1.0, 0.0, 0.0];
        let mixed = epsilon_greedy(&underlying, &optimal, 0.1);
        assert!((mixed.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(
            mixed.iter().all(|&x| x > 0.0),
            "no stratum may starve: {mixed:?}"
        );
        assert!((mixed[1] - 0.03).abs() < 1e-12);
    }

    #[test]
    fn epsilon_extremes_recover_components() {
        let underlying = [0.5, 0.5];
        let optimal = [0.9, 0.1];
        let explore = epsilon_greedy(&underlying, &optimal, 1.0);
        let exploit = epsilon_greedy(&underlying, &optimal, 0.0);
        assert_eq!(explore, underlying.to_vec());
        assert_eq!(exploit, optimal.to_vec());
    }

    #[test]
    fn normalise_or_uniform_handles_zero_and_nan() {
        assert_eq!(normalise_or_uniform(&[0.0, 0.0]), vec![0.5, 0.5]);
        assert_eq!(normalise_or_uniform(&[f64::NAN, 1.0]).len(), 2);
        let v = normalise_or_uniform(&[2.0, 6.0]);
        assert!((v[0] - 0.25).abs() < 1e-12);
        assert!((v[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pointwise_optimal_is_normalised_and_prefers_predicted_matches() {
        let predictions = [true, false, false, false];
        let probabilities = [0.5, 0.01, 0.02, 0.01];
        let q = pointwise_optimal(&predictions, &probabilities, 0.5, 0.5);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(q[0] > q[1]);
        assert!(q[0] > q[3]);
    }
}
