//! Table 3: CPU time per run and per iteration on the cora pool.
//!
//! The point of the paper's Table 3 is the *scaling* contrast: the reference
//! implementation's static IS samples from a non-uniform distribution over
//! the whole pool (`numpy.random.choice`, cost linear in the pool size N per
//! draw), while OASIS samples over K strata, so in the paper OASIS is an
//! order of magnitude faster per iteration and its cost is essentially
//! independent of N.
//!
//! This implementation deliberately does **not** reproduce the paper's IS
//! slowness: `ImportanceSampler` precomputes its cumulative weights once and
//! draws in O(log N), so its per-iteration cost collapses.  What the table
//! still demonstrates — and what the tests pin — is the half of the claim
//! that survives the optimisation: OASIS's per-iteration cost does not grow
//! with the pool.

use crate::methods::Method;
use crate::pools::{direct_pool, ExperimentPool};
use crate::report::{fmt_float, TextTable};
use er_core::datasets::DatasetProfile;
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::Sampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Timing of one sampling method.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingRow {
    /// Method label.
    pub method: String,
    /// Average wall-clock time per run, in seconds.
    pub seconds_per_run: f64,
    /// Average wall-clock time per iteration, in seconds.
    pub seconds_per_iteration: f64,
}

/// The reproduced Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// One row per method.
    pub rows: Vec<TimingRow>,
    /// Pool size used.
    pub pool_size: usize,
    /// Iterations per run.
    pub iterations: usize,
    /// Runs per method.
    pub runs: usize,
}

/// Configuration of the timing experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Config {
    /// Pool scale (1.0 reproduces the paper's ~3.3×10⁵-pair cora pool).
    pub scale: f64,
    /// Sampling iterations per run (the paper's runs consume ~2×10⁴ labels).
    pub iterations: usize,
    /// Number of runs per method to average over.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table3Config {
    fn default() -> Self {
        Table3Config {
            scale: 0.3,
            iterations: 10_000,
            runs: 3,
            seed: 2017,
        }
    }
}

/// The methods timed in Table 3, in the paper's row order.
pub fn table3_methods() -> Vec<Method> {
    vec![
        Method::Passive,
        Method::ImportanceSampling,
        Method::oasis(30),
        Method::oasis(60),
        Method::oasis(120),
        Method::Stratified { strata: 30 },
    ]
}

/// Time one method on the pool.
fn time_method(
    pool: &ExperimentPool,
    method: Method,
    iterations: usize,
    runs: usize,
    seed: u64,
) -> TimingRow {
    let mut total_seconds = 0.0;
    for run_index in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed + run_index as u64);
        let mut oracle = GroundTruthOracle::new(pool.truth.clone());
        let start = Instant::now();
        let mut sampler = method
            .build(&pool.pool, 0.5, pool.score_threshold)
            .expect("valid method");
        for _ in 0..iterations {
            sampler
                .step(&pool.pool, &mut oracle, &mut rng)
                .expect("step cannot fail");
        }
        total_seconds += start.elapsed().as_secs_f64();
    }
    let seconds_per_run = total_seconds / runs as f64;
    TimingRow {
        method: method.label(),
        seconds_per_run,
        seconds_per_iteration: seconds_per_run / iterations as f64,
    }
}

/// Run the timing experiment on the cora pool.
pub fn run(config: &Table3Config) -> Table3 {
    let pool = direct_pool(&DatasetProfile::cora(), config.scale, true, config.seed);
    run_on_pool(&pool, config)
}

/// Run the timing experiment on a caller-supplied pool.
pub fn run_on_pool(pool: &ExperimentPool, config: &Table3Config) -> Table3 {
    let rows = table3_methods()
        .into_iter()
        .map(|m| time_method(pool, m, config.iterations, config.runs, config.seed))
        .collect();
    Table3 {
        rows,
        pool_size: pool.len(),
        iterations: config.iterations,
        runs: config.runs,
    }
}

impl Table3 {
    /// Render as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Sampling method",
            "Avg CPU time per run (s)",
            "Avg CPU time per iteration (s)",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.method.clone(),
                fmt_float(row.seconds_per_run, 4),
                format!("{:.3e}", row.seconds_per_iteration),
            ]);
        }
        format!(
            "Table 3: CPU times on the cora pool ({} pairs, {} iterations/run, {} runs)\n{}",
            self.pool_size,
            self.iterations,
            self.runs,
            table.render()
        )
    }

    /// The row for a method label, if present.
    pub fn row(&self, label: &str) -> Option<&TimingRow> {
        self.rows.iter().find(|r| r.method == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Table3Config {
        Table3Config {
            scale: 0.02,
            iterations: 300,
            runs: 1,
            seed: 31,
        }
    }

    #[test]
    fn times_every_method() {
        let table = run(&tiny_config());
        assert_eq!(table.rows.len(), 6);
        for row in &table.rows {
            assert!(row.seconds_per_run > 0.0);
            assert!(row.seconds_per_iteration > 0.0);
            assert!(row.seconds_per_run >= row.seconds_per_iteration);
        }
        assert!(table.row("IS").is_some());
        assert!(table.row("OASIS 30").is_some());
        assert!(table.row("nonexistent").is_none());
    }

    #[test]
    fn oasis_per_iteration_cost_is_independent_of_pool_size() {
        // The half of the paper's Table-3 scaling claim that this
        // implementation preserves: OASIS iterates over K strata, so tripling
        // the pool must not triple the per-iteration cost.  (The other half —
        // IS paying O(N) per draw — is deliberately optimised away: the
        // static samplers precompute their cumulative weights and draw in
        // O(log N).)
        let small = run(&Table3Config {
            scale: 0.05,
            iterations: 2000,
            runs: 1,
            seed: 32,
        });
        let large = run(&Table3Config {
            scale: 0.15,
            iterations: 2000,
            runs: 1,
            seed: 32,
        });
        assert!(large.pool_size > 2 * small.pool_size);
        let small_time = small.row("OASIS 30").unwrap().seconds_per_iteration;
        let large_time = large.row("OASIS 30").unwrap().seconds_per_iteration;
        assert!(
            large_time < 3.0 * small_time,
            "OASIS per-iteration cost grew with the pool: {small_time:.2e} -> {large_time:.2e}"
        );
    }

    #[test]
    fn render_contains_all_methods() {
        let table = run(&tiny_config());
        let text = table.render();
        assert!(text.contains("Table 3"));
        for row in &table.rows {
            assert!(text.contains(&row.method));
        }
    }
}
