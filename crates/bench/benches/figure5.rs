//! Bench: regenerate Figure 5 (five classifiers × four sampling methods).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figure5::{run, Figure5Config};
use experiments::pools::ClassifierKind;

fn bench_figure5(c: &mut Criterion) {
    let config = Figure5Config {
        scale: 0.03,
        budget: 200,
        repeats: 15,
        seed: 2017,
        threads: 4,
        classifiers: Vec::new(),
    };
    let figure = run(&config);
    println!("\n{}", figure.render());

    let mut group = c.benchmark_group("figure5");
    group.sample_size(10);
    let quick = Figure5Config {
        scale: 0.01,
        budget: 60,
        repeats: 4,
        seed: 2017,
        threads: 2,
        classifiers: vec![ClassifierKind::LinearSvm],
    };
    group.bench_function("lsvm_cell_scale_0.01", |b| b.iter(|| run(&quick)));
    group.finish();
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
