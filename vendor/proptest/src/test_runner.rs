//! The deterministic case runner behind the `proptest!` macro.
//!
//! Each test function runs `cases` generated inputs. Case seeds are derived
//! deterministically from the source location and test name (perturbed by
//! `PROPTEST_RNG_SEED` when set), so a failure is reproducible by seed alone.
//! Before fresh cases, seeds recorded in
//! `<crate>/proptest-regressions/<file-stem>.txt` are replayed; new failures
//! are appended there (best-effort) so they stay pinned once committed.
//!
//! Environment overrides:
//!
//! * `PROPTEST_CASES` — overrides every config's case count (CI depth knob).
//! * `PROPTEST_RNG_SEED` — perturbs the seed sequence to explore new inputs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it does not count as run.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Runner configuration (the `ProptestConfig` subset the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// The effective case count: `PROPTEST_CASES` env var, if set and valid,
    /// otherwise the configured value.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(value) => value.parse().unwrap_or_else(|_| {
                panic!("PROPTEST_CASES must be a positive integer, got {value:?}")
            }),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// FNV-1a, for deriving a stable per-test base seed from its identity.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_owned());
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

/// Parse regression seeds: lines of the form `seed: <u64>`; `#` comments and
/// blank lines are ignored.
fn load_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    contents
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            line.strip_prefix("seed:")
                .and_then(|rest| rest.split('#').next())
                .and_then(|rest| rest.trim().parse().ok())
        })
        .collect()
}

fn record_failure(path: &Path, test_name: &str, seed: u64) {
    // Best-effort: persisting the seed is a convenience, never a test error.
    let _ = std::fs::create_dir_all(path.parent().expect("regression path has a parent"));
    if load_regression_seeds(path).contains(&seed) {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(
            file,
            "seed: {seed} # added automatically by {test_name}, do not edit"
        );
    }
}

/// Execute one property test: replay persisted regression seeds, then run
/// `config.cases` fresh deterministic cases. Panics on the first failure,
/// reporting the offending seed.
pub fn run<F>(
    config: &ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    mut case: F,
) where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let regressions = regression_path(manifest_dir, source_file);
    let mut run_seed = |seed: u64, origin: &str| {
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => true,
            Err(TestCaseError::Reject) => false,
            Err(TestCaseError::Fail(message)) => {
                if origin == "random" {
                    record_failure(&regressions, test_name, seed);
                }
                panic!(
                    "proptest case failed ({origin} seed {seed}) in {test_name}:\n{message}\n\
                     To pin this case, keep `seed: {seed}` in {path}",
                    path = regressions.display()
                );
            }
        }
    };

    for seed in load_regression_seeds(&regressions) {
        run_seed(seed, "regression");
    }

    let salt: u64 = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let base = fnv1a(format!("{source_file}::{test_name}::{salt}").as_bytes());

    let cases = config.resolved_cases();
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let mut rejects = 0u32;
    while passed < cases {
        let seed = base.wrapping_add(attempts);
        attempts += 1;
        if run_seed(seed, "random") {
            passed += 1;
        } else {
            rejects += 1;
            assert!(
                rejects <= config.max_global_rejects,
                "{test_name}: too many prop_assume! rejections ({rejects}) — \
                 strategy and assumptions are incompatible"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_cases_sets_cases() {
        assert_eq!(ProptestConfig::with_cases(17).cases, 17);
    }

    #[test]
    fn regression_lines_parse() {
        let dir = std::env::temp_dir().join("proptest_shim_parse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("example.txt");
        std::fs::write(
            &path,
            "# comment\nseed: 41\n\nseed: 42 # trailing note\nnoise\n",
        )
        .unwrap();
        assert_eq!(load_regression_seeds(&path), vec![41, 42]);
        let _ = std::fs::remove_file(&path);
    }
}
