//! Integration tests asserting the qualitative *shape* of the paper's results
//! at reduced scale: who wins, in which regimes, and by roughly how much.

use er_core::datasets::DatasetProfile;
use experiments::curves::{method_curve, CurveConfig};
use experiments::figure2::{run_profile, Figure2Config};
use experiments::methods::Method;
use experiments::pools::direct_pool;
use experiments::table3::{run_on_pool, Table3Config};

/// Mean of the defined entries of a slice.
fn mean_defined(values: &[f64]) -> f64 {
    let defined: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if defined.is_empty() {
        f64::NAN
    } else {
        defined.iter().sum::<f64>() / defined.len() as f64
    }
}

#[test]
fn figure2_shape_oasis_beats_passive_and_stratified_under_imbalance() {
    // Abt-Buy-style pool at 30% scale (≈16k pairs, 15 matches).  The slow
    // O(N)-per-draw IS baseline is exercised in the figure3 shape test; here
    // we compare the methods whose per-step cost is O(1)/O(K) so the pool can
    // be large enough for the comparison to be statistically meaningful.
    let pool = direct_pool(&DatasetProfile::abt_buy(), 0.3, true, 71);
    let config = CurveConfig {
        checkpoints: vec![200, 500, 1000],
        repeats: 20,
        alpha: 0.5,
        seed: 71,
        threads: 4,
    };
    let oasis = mean_defined(&method_curve(&pool, Method::oasis(30), &config).absolute_error);
    let passive = mean_defined(&method_curve(&pool, Method::Passive, &config).absolute_error);
    let stratified = mean_defined(
        &method_curve(&pool, Method::Stratified { strata: 30 }, &config).absolute_error,
    );
    assert!(
        oasis < passive,
        "OASIS mean error {oasis:.4} must beat passive {passive:.4}"
    );
    assert!(
        oasis < stratified + 0.01,
        "OASIS mean error {oasis:.4} must not lose to stratified {stratified:.4}"
    );
}

#[test]
fn figure2_shape_methods_tie_on_balanced_data() {
    // tweets100k: no class imbalance → no meaningful advantage for OASIS
    // (paper Section 6.3.1, "Balanced classes").
    let config = Figure2Config {
        scale: 0.05,
        repeats: 20,
        budget_fraction: 0.1,
        checkpoints: 4,
        seed: 72,
        threads: 4,
        datasets: vec!["tweets100k".to_string()],
    };
    let curves = run_profile(&DatasetProfile::tweets100k(), &config);
    let passive = mean_defined(
        &curves
            .curves
            .iter()
            .find(|c| c.label == "Passive")
            .unwrap()
            .absolute_error,
    );
    let oasis = mean_defined(
        &curves
            .curves
            .iter()
            .find(|c| c.label.starts_with("OASIS"))
            .unwrap()
            .absolute_error,
    );
    // Both are small and close: the gap should be a fraction of the passive error.
    assert!(
        passive < 0.1,
        "passive error should be small on balanced data: {passive}"
    );
    assert!(
        (oasis - passive).abs() < 0.05,
        "OASIS ({oasis:.4}) and passive ({passive:.4}) should be comparable on balanced data"
    );
}

#[test]
fn figure3_shape_calibration_matters_more_for_is_than_for_oasis() {
    // Compare final errors with calibrated vs uncalibrated scores on DBLP-ACM.
    let profile = DatasetProfile::dblp_acm();
    let repeats = 15;
    let budgets = vec![80, 160];
    let curve_for = |calibrated: bool, method: Method, seed: u64| {
        let pool = direct_pool(&profile, 0.05, calibrated, seed);
        let config = CurveConfig {
            checkpoints: budgets.clone(),
            repeats,
            alpha: 0.5,
            seed,
            threads: 4,
        };
        method_curve(&pool, method, &config)
    };
    let is_cal = mean_defined(&curve_for(true, Method::ImportanceSampling, 5).absolute_error);
    let is_uncal = mean_defined(&curve_for(false, Method::ImportanceSampling, 5).absolute_error);
    let oasis_cal = mean_defined(&curve_for(true, Method::oasis(60), 5).absolute_error);
    let oasis_uncal = mean_defined(&curve_for(false, Method::oasis(60), 5).absolute_error);

    let is_degradation = is_uncal - is_cal;
    let oasis_degradation = oasis_uncal - oasis_cal;
    assert!(
        is_degradation > oasis_degradation - 0.005,
        "IS should degrade at least as much as OASIS when scores are uncalibrated \
         (IS: {is_cal:.4} → {is_uncal:.4}, OASIS: {oasis_cal:.4} → {oasis_uncal:.4})"
    );
    // And OASIS with uncalibrated scores should still beat IS with uncalibrated scores.
    assert!(
        oasis_uncal <= is_uncal + 0.01,
        "OASIS uncal {oasis_uncal:.4} vs IS uncal {is_uncal:.4}"
    );
}

#[test]
fn table3_shape_is_scales_with_pool_size_oasis_does_not() {
    // Time IS and OASIS on two pool sizes; the IS per-iteration cost should
    // grow roughly with N while OASIS stays flat (paper Section 6.3.5).
    let small_pool = direct_pool(&DatasetProfile::cora(), 0.02, true, 9);
    let large_pool = direct_pool(&DatasetProfile::cora(), 0.2, true, 9);
    let config = Table3Config {
        scale: 0.0, // unused by run_on_pool
        iterations: 400,
        runs: 1,
        seed: 10,
    };
    let small = run_on_pool(&small_pool, &config);
    let large = run_on_pool(&large_pool, &config);
    let ratio = |table: &experiments::table3::Table3, label: &str| {
        table.row(label).unwrap().seconds_per_iteration
    };
    let is_growth = ratio(&large, "IS") / ratio(&small, "IS");
    let oasis_growth = ratio(&large, "OASIS 30") / ratio(&small, "OASIS 30");
    assert!(
        is_growth > 3.0,
        "IS per-iteration cost should grow with pool size (observed growth {is_growth:.1}x)"
    );
    assert!(
        oasis_growth < is_growth,
        "OASIS growth ({oasis_growth:.1}x) should be smaller than IS growth ({is_growth:.1}x)"
    );
    // And within the large pool, IS is the slowest method per iteration.
    let is_time = ratio(&large, "IS");
    for label in ["Passive", "OASIS 30", "OASIS 60", "OASIS 120", "Stratified"] {
        assert!(
            is_time > ratio(&large, label),
            "IS should be slower per iteration than {label}"
        );
    }
}
