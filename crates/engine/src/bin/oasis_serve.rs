//! `oasis-serve` — the OASIS evaluation engine behind a line protocol.
//!
//! Speaks line-delimited JSON (one request object per line, one response
//! object per line; see `oasis_engine::protocol` for the command table).
//!
//! Usage:
//!
//! ```text
//! oasis-serve                     # serve stdin/stdout (scriptable, CI-friendly)
//! oasis-serve --tcp 0.0.0.0:7171  # serve TCP, concurrent connections
//! oasis-serve --store DIR         # durable sessions: checkpoints + WAL in DIR
//! oasis-serve --store DIR --max-resident 64   # LRU-evict idle sessions to DIR
//! ```

use oasis_engine::server::{serve_lines, serve_tcp};
use oasis_engine::{Engine, FsCheckpointStore};
use std::io::{BufReader, Write as _};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "oasis-serve — evaluation engine speaking line-delimited JSON\n\n\
             USAGE:\n  oasis-serve                serve stdin/stdout\n  \
             oasis-serve --tcp ADDR     serve TCP on ADDR (e.g. 127.0.0.1:7171)\n  \
             oasis-serve --store DIR    durable sessions: checkpoints + write-ahead\n\
             \x20                            log in DIR, replayed across restarts\n  \
             oasis-serve --max-resident N   with --store: LRU-evict idle sessions\n\n\
             Commands: load_pool, create_session, propose, label, step,\n\
             run_budget, estimate, checkpoint, restore, checkpoint_to,\n\
             restore_from, sessions, delete_session, shutdown.\n\n\
             create_session's optional \"method\" field selects the sampler:\n\
             \"oasis\" (default), \"passive\", \"importance\", \"stratified\"."
        );
        return;
    }

    // Strict argument parsing: a typo'd flag must not silently fall back to
    // stdio mode (which would sit blocked on stdin with no diagnostic).
    let mut tcp_addr: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut max_resident: Option<usize> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--tcp" => match rest.next() {
                Some(addr) => tcp_addr = Some(addr.clone()),
                None => {
                    eprintln!("oasis-serve: --tcp requires an address (e.g. --tcp 127.0.0.1:7171)");
                    std::process::exit(2);
                }
            },
            "--store" => match rest.next() {
                Some(dir) => store_dir = Some(dir.clone()),
                None => {
                    eprintln!("oasis-serve: --store requires a directory path");
                    std::process::exit(2);
                }
            },
            "--max-resident" => match rest.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => max_resident = Some(n),
                _ => {
                    eprintln!("oasis-serve: --max-resident requires a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("oasis-serve: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if max_resident.is_some() && store_dir.is_none() {
        eprintln!("oasis-serve: --max-resident requires --store (evicted sessions need a store)");
        std::process::exit(2);
    }

    let mut engine = Engine::new();
    if let Some(dir) = store_dir {
        match FsCheckpointStore::open(&dir) {
            Ok(store) => {
                eprintln!("oasis-serve: durable store at {dir}");
                engine = engine.with_store(Arc::new(store));
            }
            Err(error) => {
                eprintln!("oasis-serve: cannot open store: {error}");
                std::process::exit(1);
            }
        }
    }
    if let Some(cap) = max_resident {
        engine = engine.with_max_resident(cap);
    }
    let outcome = match tcp_addr {
        Some(addr) => {
            eprintln!("oasis-serve: listening on {addr}");
            serve_tcp(&engine, &addr)
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut writer = stdout.lock();
            let served = serve_lines(&engine, BufReader::new(stdin.lock()), &mut writer);
            writer.flush().and(served.map(|_| ()))
        }
    };

    if let Err(error) = outcome {
        eprintln!("oasis-serve: transport error: {error}");
        std::process::exit(1);
    }
}
