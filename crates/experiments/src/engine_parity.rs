//! Engine-vs-library parity: the acceptance experiment for `oasis-engine`.
//!
//! The engine's whole value proposition is that moving a sampler behind a
//! session/worker-pool/checkpoint boundary changes *nothing* statistically:
//! N concurrent engine sessions with fixed seeds must produce estimates
//! bit-identical to N sequential library runs with the same seeds, and an
//! interrupt→checkpoint→restore→resume session must land on the same bits as
//! one that never stopped.  Since the `InteractiveSampler` redesign the
//! engine serves *every* method of the paper's comparison, so this driver
//! checks both properties for the full [`Method::parity_lineup`] — passive,
//! importance, stratified and OASIS — on a cora-profile pool, and reports
//! engine throughput (steps/second across the worker pool) as a bonus.
//! Since the sharding subsystem each row also verifies K=1 parity: a
//! single-shard session must reproduce the flat library run bit-for-bit.

use crate::methods::{AnySampler, Method};
use crate::pools::{direct_pool, ExperimentPool};
use crate::report::{fmt_float, TextTable};
use er_core::datasets::DatasetProfile;
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::Sampler;
use oasis_engine::{Engine, LabelSource, SessionCheckpoint, SessionJob};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Configuration of the parity experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineParityConfig {
    /// Pool scale relative to the full cora pool.
    pub scale: f64,
    /// Number of concurrent sessions (and sequential reference runs) *per
    /// method*.
    pub sessions: usize,
    /// Sampling steps per session.
    pub steps: usize,
    /// Worker threads driving the sessions.
    pub workers: usize,
    /// Base RNG seed; session `i` uses `seed + i` (shared across methods —
    /// the method, not the seed, differentiates the runs).
    pub seed: u64,
}

impl Default for EngineParityConfig {
    fn default() -> Self {
        EngineParityConfig {
            scale: 0.1,
            sessions: 8,
            steps: 2000,
            workers: 4,
            seed: 2017,
        }
    }
}

/// Per-session parity outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ParityRow {
    /// The method label (paper legend style).
    pub method: String,
    /// The session's seed.
    pub seed: u64,
    /// F-measure from the sequential library run.
    pub library_f: f64,
    /// F-measure from the concurrent engine session.
    pub engine_f: f64,
    /// Whether library and engine estimates agree bit-for-bit (F, P and R).
    pub bit_identical: bool,
    /// Whether an interrupt→checkpoint→restore→resume run of the same
    /// session agrees bit-for-bit with the uninterrupted one.
    pub checkpoint_identical: bool,
    /// Whether a single-shard (`shards: 1`) session agrees bit-for-bit with
    /// the flat library run — the K=1 parity the sharding subsystem pins.
    pub sharded_identical: bool,
}

/// The full parity report.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineParity {
    /// One row per (method, session).
    pub rows: Vec<ParityRow>,
    /// Pool size used.
    pub pool_size: usize,
    /// Steps per session.
    pub steps: usize,
    /// Worker threads used for the concurrent pass.
    pub workers: usize,
    /// Wall-clock seconds for the concurrent engine pass (all methods).
    pub parallel_seconds: f64,
    /// Aggregate engine throughput: total steps / parallel wall-clock.
    pub steps_per_second: f64,
}

impl EngineParity {
    /// Whether every session passed both parity checks.
    pub fn all_identical(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.bit_identical && r.checkpoint_identical && r.sharded_identical)
    }

    /// Render as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Method",
            "Seed",
            "Library F",
            "Engine F",
            "Bit-identical",
            "Checkpoint-identical",
            "Sharded-identical",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.method.clone(),
                row.seed.to_string(),
                fmt_float(row.library_f, 12),
                fmt_float(row.engine_f, 12),
                row.bit_identical.to_string(),
                row.checkpoint_identical.to_string(),
                row.sharded_identical.to_string(),
            ]);
        }
        format!(
            "Engine parity on a cora-profile pool ({} pairs, {} method x session rows x {} steps, {} workers)\n{}\nEngine throughput: {:.0} steps/s ({} total steps in {:.3}s)\nAll identical: {}",
            self.pool_size,
            self.rows.len(),
            self.steps,
            self.workers,
            table.render(),
            self.steps_per_second,
            self.rows.len() * self.steps,
            self.parallel_seconds,
            self.all_identical()
        )
    }
}

/// Sequential library reference: the same `AnySampler::build` construction
/// the engine session uses, driven by the classic `Sampler::run` loop.
fn library_reference(
    pool: &ExperimentPool,
    method: &Method,
    seed: u64,
    steps: usize,
) -> oasis::Estimate {
    let mut oracle = GroundTruthOracle::new(pool.truth.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler: AnySampler = method.build(&pool.pool, 0.5, 0.0).expect("valid config");
    sampler
        .run(&pool.pool, &mut oracle, &mut rng, steps)
        .expect("library run cannot fail")
}

/// Interrupt the same configuration at `steps / 3`, round-trip the checkpoint
/// through its JSON text, and finish on the restored session.
fn checkpointed_run(
    engine: &Engine,
    pool: &ExperimentPool,
    method: &Method,
    seed: u64,
    steps: usize,
) -> oasis::Estimate {
    let session_id = format!("ckpt-{}-{seed}", method.sampler_method());
    engine
        .create_session(
            &session_id,
            "cora",
            method.sampler_method(),
            method.engine_config(0.5, 0.0),
            seed,
            LabelSource::GroundTruth(GroundTruthOracle::new(pool.truth.clone())),
        )
        .expect("session");
    let handle = engine.session(&session_id).expect("exists");
    let cut = steps / 3;
    handle.lock().step(cut).expect("first leg");
    let text = handle.lock().checkpoint().to_json_string();
    engine.delete_session(&session_id).expect("delete");
    let checkpoint = SessionCheckpoint::from_json_string(&text).expect("parse checkpoint");
    engine
        .restore_session(&session_id, checkpoint)
        .expect("restore");
    let handle = engine.session(&session_id).expect("restored");
    let estimate = handle.lock().step(steps - cut).expect("second leg");
    engine.delete_session(&session_id).expect("cleanup");
    estimate
}

/// Run the same configuration as a single-shard (`shards: 1`) session: one
/// shard spans the whole pool with weight 1.0 and shard 0 reuses the session
/// seed, so the sharded topology must reproduce the flat run bit-for-bit.
fn sharded_run(
    engine: &Engine,
    pool: &ExperimentPool,
    method: &Method,
    seed: u64,
    steps: usize,
) -> oasis::Estimate {
    let session_id = format!("shard-{}-{seed}", method.sampler_method());
    engine
        .create_session_sharded(
            &session_id,
            "cora",
            method.sampler_method(),
            method.engine_config(0.5, 0.0),
            Some(1),
            seed,
            LabelSource::GroundTruth(GroundTruthOracle::new(pool.truth.clone())),
        )
        .expect("sharded session");
    let handle = engine.session(&session_id).expect("exists");
    let estimate = handle.lock().step(steps).expect("sharded run");
    engine.delete_session(&session_id).expect("cleanup");
    estimate
}

/// Run the parity experiment across the full method line-up.
pub fn run(config: &EngineParityConfig) -> EngineParity {
    let pool = direct_pool(&DatasetProfile::cora(), config.scale, true, config.seed);
    let methods = Method::parity_lineup();
    let seeds: Vec<u64> = (0..config.sessions as u64)
        .map(|i| config.seed + i)
        .collect();

    // Sequential library references, one per (method, seed).
    let mut references: Vec<(Method, u64, oasis::Estimate)> = Vec::new();
    for &method in &methods {
        for &seed in &seeds {
            references.push((
                method,
                seed,
                library_reference(&pool, &method, seed, config.steps),
            ));
        }
    }

    // Concurrent engine sessions over one shared pool: all methods mixed in
    // one job list, so the worker pool interleaves methods freely.
    let engine = Engine::new();
    engine
        .load_pool("cora", pool.pool.clone())
        .expect("load pool");
    for &(method, seed, _) in &references {
        engine
            .create_session(
                format!("{}-{seed}", method.sampler_method()),
                "cora",
                method.sampler_method(),
                method.engine_config(0.5, 0.0),
                seed,
                LabelSource::GroundTruth(GroundTruthOracle::new(pool.truth.clone())),
            )
            .expect("session");
    }
    let jobs: Vec<SessionJob> = references
        .iter()
        .map(|&(method, seed, _)| SessionJob::Steps {
            session: format!("{}-{seed}", method.sampler_method()),
            steps: config.steps,
        })
        .collect();
    let start = Instant::now();
    let estimates = engine
        .run_parallel(&jobs, config.workers)
        .expect("parallel run");
    let parallel_seconds = start.elapsed().as_secs_f64();

    let rows: Vec<ParityRow> = references
        .iter()
        .zip(estimates.iter())
        .map(|((method, seed, reference), estimate)| {
            let bit_identical = reference.f_measure.to_bits() == estimate.f_measure.to_bits()
                && reference.precision.to_bits() == estimate.precision.to_bits()
                && reference.recall.to_bits() == estimate.recall.to_bits();
            let resumed = checkpointed_run(&engine, &pool, method, *seed, config.steps);
            let checkpoint_identical = resumed.f_measure.to_bits() == reference.f_measure.to_bits()
                && resumed.precision.to_bits() == reference.precision.to_bits()
                && resumed.recall.to_bits() == reference.recall.to_bits();
            let sharded = sharded_run(&engine, &pool, method, *seed, config.steps);
            let sharded_identical = sharded.f_measure.to_bits() == reference.f_measure.to_bits()
                && sharded.precision.to_bits() == reference.precision.to_bits()
                && sharded.recall.to_bits() == reference.recall.to_bits();
            ParityRow {
                method: method.label(),
                seed: *seed,
                library_f: reference.f_measure,
                engine_f: estimate.f_measure,
                bit_identical,
                checkpoint_identical,
                sharded_identical,
            }
        })
        .collect();

    let total_steps = (rows.len() * config.steps) as f64;
    EngineParity {
        rows,
        pool_size: pool.len(),
        steps: config.steps,
        workers: config.workers,
        parallel_seconds,
        steps_per_second: total_steps / parallel_seconds.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EngineParityConfig {
        EngineParityConfig {
            scale: 0.02,
            sessions: 2,
            steps: 150,
            workers: 2,
            seed: 77,
        }
    }

    #[test]
    fn engine_matches_library_bit_for_bit_for_every_method() {
        let parity = run(&tiny_config());
        // 4 methods x 2 sessions.
        assert_eq!(parity.rows.len(), 8);
        let methods: std::collections::HashSet<&str> =
            parity.rows.iter().map(|r| r.method.as_str()).collect();
        assert_eq!(methods.len(), 4, "all four methods represented");
        assert!(
            parity.all_identical(),
            "parity failed:\n{}",
            parity.render()
        );
    }

    #[test]
    fn render_reports_throughput_and_rows() {
        let parity = run(&tiny_config());
        let text = parity.render();
        assert!(text.contains("Engine parity"));
        assert!(text.contains("steps/s"));
        assert!(text.contains("All identical: true"));
        assert!(text.contains("Passive") && text.contains("IS") && text.contains("Stratified"));
        assert!(parity.steps_per_second > 0.0);
    }
}
