//! Bench: `oasis-engine` session throughput (steps/sec) for concurrent
//! sessions driven by the scoped-thread worker pool, plus the OASIS
//! proposal-CDF cache: batched proposals pay the O(K) instrumental-
//! distribution refit once per batch instead of once per draw, so the win
//! grows with the stratum count K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::datasets::DatasetProfile;
use experiments::pools::direct_pool;
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::{InteractiveSampler, OasisConfig, OasisSampler, SamplerMethod};
use oasis_engine::{Engine, LabelSource, SessionJob};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SESSIONS: usize = 8;
const STEPS: usize = 500;

/// Build an engine with `SESSIONS` fresh sessions over one shared pool.
fn build_engine(pool: &experiments::pools::ExperimentPool) -> (Engine, Vec<SessionJob>) {
    let engine = Engine::new();
    engine.load_pool("cora", pool.pool.clone()).unwrap();
    let config = OasisConfig::default().with_strata_count(30);
    let mut jobs = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS as u64 {
        let id = format!("s{i}");
        engine
            .create_session(
                &id,
                "cora",
                SamplerMethod::Oasis,
                config.clone(),
                2017 + i,
                LabelSource::GroundTruth(GroundTruthOracle::new(pool.truth.clone())),
            )
            .unwrap();
        jobs.push(SessionJob::Steps {
            session: id,
            steps: STEPS,
        });
    }
    (engine, jobs)
}

/// The proposal-CDF cache win: draw `batch` proposals per posterior refresh
/// (one label applied between batches) either one `propose` at a time —
/// every draw after a label pays the O(K) refit — or through
/// `propose_batch`, which refits once.  At large K the difference is the
/// refit cost itself.
fn bench_propose_cdf_cache(c: &mut Criterion) {
    let pool = direct_pool(&DatasetProfile::cora(), 0.05, true, 2017);
    let batch = 64usize;
    let rounds = 16usize;

    let mut group = c.benchmark_group("oasis_propose_cdf_cache");
    group.sample_size(10);
    for strata in [30usize, 240, 480] {
        let config = OasisConfig::default().with_strata_count(strata);
        let base = OasisSampler::new(&pool.pool, config).unwrap();
        // Per-draw refit: alternate propose and apply_label, so every
        // proposal pays the O(K) distribution + CDF rebuild.
        group.bench_function(
            BenchmarkId::new("per_draw_refit", format!("K{strata}")),
            |b| {
                b.iter(|| {
                    let mut sampler = base.clone();
                    let mut rng = StdRng::seed_from_u64(7);
                    for _ in 0..rounds * batch {
                        let proposal = sampler.propose(&pool.pool, &mut rng);
                        sampler.apply_label(&proposal, pool.truth[proposal.item]);
                    }
                    sampler.estimate()
                })
            },
        );
        // Batched: one refit per `batch` draws, labels applied in bulk.
        group.bench_function(
            BenchmarkId::new("batched_refit", format!("K{strata}")),
            |b| {
                b.iter(|| {
                    let mut sampler = base.clone();
                    let mut rng = StdRng::seed_from_u64(7);
                    for _ in 0..rounds {
                        let proposals = sampler.propose_batch(&pool.pool, &mut rng, batch);
                        let labelled: Vec<(&oasis::Proposal, bool)> =
                            proposals.iter().map(|p| (p, pool.truth[p.item])).collect();
                        sampler.apply_labels(labelled);
                    }
                    sampler.estimate()
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let pool = direct_pool(&DatasetProfile::cora(), 0.05, true, 2017);

    // One-off headline number: total steps / wall-clock at each worker count.
    for workers in [1usize, 2, 4, 8] {
        let (engine, jobs) = build_engine(&pool);
        let start = std::time::Instant::now();
        engine.run_parallel(&jobs, workers).unwrap();
        let seconds = start.elapsed().as_secs_f64();
        println!(
            "engine throughput: {SESSIONS} sessions x {STEPS} steps, {workers} workers -> {:.0} steps/s",
            (SESSIONS * STEPS) as f64 / seconds
        );
    }

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        group.bench_function(
            BenchmarkId::new(format!("{SESSIONS}_sessions"), format!("{workers}_workers")),
            |b| {
                b.iter(|| {
                    // Session state advances across iterations (sessions are
                    // long-lived by design), so rebuild per measurement to
                    // keep the workload comparable.
                    let (engine, jobs) = build_engine(&pool);
                    engine.run_parallel(&jobs, workers).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput, bench_propose_cdf_cache);
criterion_main!(benches);
