//! Table 2: evaluation pools and linear-SVM operating points.
//!
//! The paper's Table 2 lists, for each dataset, the pool sampled from it
//! (size, imbalance, match count) and the precision / recall / F½ of the
//! linear SVM evaluated exhaustively on that pool.  This experiment rebuilds
//! each pool — through the full ER pipeline for the five ER datasets and the
//! direct score model for tweets100k — and reports our measured operating
//! points next to the published ones.

use crate::pools::{direct_pool, pipeline_pool, ClassifierKind};
use crate::report::{fmt_count, fmt_float, TextTable};
use er_core::datasets::all_profiles;

/// One row of the reproduced Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Dataset name.
    pub name: String,
    /// Pool size used (after scaling).
    pub pool_size: usize,
    /// Imbalance ratio of the pool.
    pub imbalance: f64,
    /// Number of matches in the pool.
    pub matches: usize,
    /// Published precision / recall / F½.
    pub published: (f64, f64, f64),
    /// Measured precision / recall / F½ on our pool.
    pub measured: (f64, f64, f64),
}

/// The reproduced Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// One row per dataset.
    pub rows: Vec<Table2Row>,
    /// Pool scale used.
    pub scale: f64,
}

/// Build every pool at `scale` and measure the classifier operating points.
pub fn run(scale: f64, seed: u64) -> Table2 {
    let mut rows = Vec::new();
    for profile in all_profiles() {
        let experiment_pool =
            match pipeline_pool(&profile, scale, ClassifierKind::LinearSvm, false, seed) {
                Some(result) => result.experiment_pool,
                // tweets100k has no record-level pipeline; use the direct pool.
                None => direct_pool(&profile, scale, true, seed),
            };
        let matches = experiment_pool.truth.iter().filter(|&&t| t).count();
        let pool_size = experiment_pool.len();
        let imbalance = if matches > 0 {
            (pool_size - matches) as f64 / matches as f64
        } else {
            f64::NAN
        };
        rows.push(Table2Row {
            name: profile.name.to_string(),
            pool_size,
            imbalance,
            matches,
            published: (
                profile.target_precision,
                profile.target_recall,
                profile.target_f_measure,
            ),
            measured: (
                experiment_pool.true_precision,
                experiment_pool.true_recall,
                experiment_pool.true_f_measure,
            ),
        });
    }
    Table2 { rows, scale }
}

impl Table2 {
    /// Render as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Dataset",
            "Pool size",
            "Imb.",
            "Matches",
            "P (paper)",
            "R (paper)",
            "F1/2 (paper)",
            "P (ours)",
            "R (ours)",
            "F1/2 (ours)",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.name.clone(),
                fmt_count(row.pool_size as u64),
                fmt_float(row.imbalance, 1),
                fmt_count(row.matches as u64),
                fmt_float(row.published.0, 3),
                fmt_float(row.published.1, 3),
                fmt_float(row.published.2, 3),
                fmt_float(row.measured.0, 3),
                fmt_float(row.measured.1, 3),
                fmt_float(row.measured.2, 3),
            ]);
        }
        format!(
            "Table 2: evaluation pools and L-SVM operating points (pools rebuilt at scale {:.3})\n{}",
            self.scale,
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_six_rows_with_valid_measures() {
        // Tiny scale keeps the full-pipeline rows fast.
        let table = run(0.01, 5);
        assert_eq!(table.rows.len(), 6);
        for row in &table.rows {
            assert!(row.pool_size > 0);
            assert!(row.matches >= 1);
            let (p, r, f) = row.measured;
            assert!((0.0..=1.0).contains(&p), "{}: precision {p}", row.name);
            assert!((0.0..=1.0).contains(&r), "{}: recall {r}", row.name);
            assert!((0.0..=1.0).contains(&f), "{}: F {f}", row.name);
        }
    }

    #[test]
    fn published_operating_points_are_carried_through() {
        let table = run(0.01, 6);
        let abt = table.rows.iter().find(|r| r.name == "Abt-Buy").unwrap();
        assert_eq!(abt.published, (0.916, 0.44, 0.595));
        let tweets = table.rows.iter().find(|r| r.name == "tweets100k").unwrap();
        assert_eq!(tweets.published, (0.762, 0.778, 0.770));
    }

    #[test]
    fn render_mentions_every_dataset() {
        let table = run(0.01, 7);
        let text = table.render();
        for row in &table.rows {
            assert!(text.contains(&row.name));
        }
        assert!(text.contains("Table 2"));
    }
}
