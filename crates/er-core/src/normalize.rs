//! Pre-processing: record canonicalisation.
//!
//! The paper's pipeline (Section 6.1.2) normalises strings by removing
//! symbols, accents and capitalisation, converts numeric fields to floats and
//! imputes missing values with the field mean.  This module implements those
//! steps over [`Record`]s.

use crate::record::{FieldType, FieldValue, Record, Schema};

/// Normalise a string: lower-case, strip accents from common Latin letters,
/// drop all characters that are not alphanumeric or whitespace, and collapse
/// runs of whitespace.
pub fn normalize_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut last_was_space = true;
    for c in input.chars() {
        let mapped: Option<char> = match c {
            'á' | 'à' | 'â' | 'ä' | 'ã' | 'å' | 'Á' | 'À' | 'Â' | 'Ä' | 'Ã' | 'Å' => {
                Some('a')
            }
            'é' | 'è' | 'ê' | 'ë' | 'É' | 'È' | 'Ê' | 'Ë' => Some('e'),
            'í' | 'ì' | 'î' | 'ï' | 'Í' | 'Ì' | 'Î' | 'Ï' => Some('i'),
            'ó' | 'ò' | 'ô' | 'ö' | 'õ' | 'Ó' | 'Ò' | 'Ô' | 'Ö' | 'Õ' => Some('o'),
            'ú' | 'ù' | 'û' | 'ü' | 'Ú' | 'Ù' | 'Û' | 'Ü' => Some('u'),
            'ñ' | 'Ñ' => Some('n'),
            'ç' | 'Ç' => Some('c'),
            c if c.is_alphanumeric() => None,
            c if c.is_whitespace() => Some(' '),
            _ => {
                // Symbols are dropped entirely (treated as nothing, not space).
                continue;
            }
        };
        match mapped {
            // Accent-mapped Latin letter: already lowercase ASCII.
            Some(ch) if ch != ' ' => {
                out.push(ch);
                last_was_space = false;
            }
            // Whitespace: collapse runs into a single separator.
            Some(_) => {
                if !last_was_space {
                    out.push(' ');
                    last_was_space = true;
                }
            }
            // Any other alphanumeric character: Unicode-aware lowercasing.
            // Lowercasing may expand to several characters (e.g. 'İ' → "i" +
            // a combining mark); non-alphanumeric expansion products such as
            // combining marks are dropped, consistent with symbol removal.
            None => {
                for lower in c.to_lowercase().filter(|l| l.is_alphanumeric()) {
                    out.push(lower);
                }
                last_was_space = false;
            }
        }
    }
    out.trim().to_string()
}

/// Normalise every record of a source in place: text fields are canonicalised
/// and missing numeric fields are imputed with the per-field mean over the
/// source (or 0 if the field is missing everywhere).
pub fn normalize_records(schema: &Schema, records: &mut [Record]) {
    // Per-field numeric means for imputation.
    let mut sums = vec![0.0f64; schema.len()];
    let mut counts = vec![0usize; schema.len()];
    for record in records.iter() {
        for (i, value) in record.values.iter().enumerate() {
            if let FieldValue::Number(x) = value {
                sums[i] += x;
                counts[i] += 1;
            }
        }
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(counts.iter())
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();

    for record in records.iter_mut() {
        for (i, field) in schema.fields().iter().enumerate() {
            if i >= record.values.len() {
                continue;
            }
            match field.field_type {
                FieldType::ShortText | FieldType::LongText | FieldType::Categorical => {
                    if let FieldValue::Text(s) = &record.values[i] {
                        record.values[i] = FieldValue::Text(normalize_text(s));
                    }
                }
                FieldType::Numeric => {
                    if record.values[i].is_missing() {
                        record.values[i] = FieldValue::Number(means[i]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_normalisation_removes_symbols_case_and_accents() {
        assert_eq!(normalize_text("Héllo, Wörld!"), "hello world");
        assert_eq!(normalize_text("  ABC--123  "), "abc123");
        assert_eq!(normalize_text("Caffè  Crème"), "caffe creme");
        assert_eq!(normalize_text(""), "");
        assert_eq!(normalize_text("!!!"), "");
    }

    #[test]
    fn whitespace_is_collapsed() {
        assert_eq!(normalize_text("a   b\t\nc"), "a b c");
    }

    #[test]
    fn numeric_imputation_uses_field_mean() {
        let schema = Schema::new(vec![
            ("name", FieldType::ShortText),
            ("price", FieldType::Numeric),
        ]);
        let mut records = vec![
            Record::new(
                0,
                vec![FieldValue::Text("A!".into()), FieldValue::Number(10.0)],
            ),
            Record::new(
                1,
                vec![FieldValue::Text("B".into()), FieldValue::Number(30.0)],
            ),
            Record::new(2, vec![FieldValue::Text("C".into()), FieldValue::Missing]),
        ];
        normalize_records(&schema, &mut records);
        assert_eq!(records[2].values[1].as_number(), Some(20.0));
        assert_eq!(records[0].values[0].as_text(), Some("a"));
    }

    #[test]
    fn all_missing_numeric_field_imputes_zero() {
        let schema = Schema::new(vec![("price", FieldType::Numeric)]);
        let mut records = vec![
            Record::new(0, vec![FieldValue::Missing]),
            Record::new(1, vec![FieldValue::Missing]),
        ];
        normalize_records(&schema, &mut records);
        assert_eq!(records[0].values[0].as_number(), Some(0.0));
    }

    #[test]
    fn missing_text_fields_are_left_missing() {
        let schema = Schema::new(vec![("name", FieldType::ShortText)]);
        let mut records = vec![Record::new(0, vec![FieldValue::Missing])];
        normalize_records(&schema, &mut records);
        assert!(records[0].values[0].is_missing());
    }

    #[test]
    fn short_records_do_not_panic() {
        let schema = Schema::new(vec![
            ("name", FieldType::ShortText),
            ("price", FieldType::Numeric),
        ]);
        let mut records = vec![Record::new(0, vec![FieldValue::Text("Only name".into())])];
        normalize_records(&schema, &mut records);
        assert_eq!(records[0].values.len(), 1);
    }
}
