//! Error types shared across the OASIS crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors that can arise while constructing pools, strata or samplers, or while
/// running an evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The pool of record pairs is empty, so nothing can be sampled.
    EmptyPool,
    /// The number of scores and predictions (and labels, if supplied) disagree.
    LengthMismatch {
        /// Number of similarity scores supplied.
        scores: usize,
        /// Number of predicted labels supplied.
        predictions: usize,
    },
    /// A similarity score was NaN or infinite.
    NonFiniteScore {
        /// Index of the offending item in the pool.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A configuration parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// Stratification produced no strata (e.g. requested zero strata).
    EmptyStrata,
    /// An item index was outside the pool.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The pool size.
        len: usize,
    },
    /// The oracle was asked about an item it has no ground truth for.
    OracleOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of items the oracle knows about.
        len: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyPool => write!(f, "the pool of record pairs is empty"),
            Error::LengthMismatch {
                scores,
                predictions,
            } => write!(
                f,
                "length mismatch: {scores} scores but {predictions} predictions"
            ),
            Error::NonFiniteScore { index, value } => {
                write!(
                    f,
                    "similarity score at index {index} is not finite: {value}"
                )
            }
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::EmptyStrata => write!(f, "stratification produced no strata"),
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "item index {index} out of bounds for pool of size {len}")
            }
            Error::OracleOutOfBounds { index, len } => {
                write!(
                    f,
                    "oracle queried for index {index} but only knows {len} items"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::EmptyPool, "empty"),
            (
                Error::LengthMismatch {
                    scores: 3,
                    predictions: 4,
                },
                "mismatch",
            ),
            (
                Error::NonFiniteScore {
                    index: 7,
                    value: f64::NAN,
                },
                "not finite",
            ),
            (
                Error::InvalidParameter {
                    name: "epsilon",
                    message: "must be in (0, 1]".to_string(),
                },
                "epsilon",
            ),
            (Error::EmptyStrata, "no strata"),
            (
                Error::IndexOutOfBounds { index: 9, len: 3 },
                "out of bounds",
            ),
            (Error::OracleOutOfBounds { index: 9, len: 3 }, "oracle"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "expected {msg:?} to contain {needle:?}"
            );
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::EmptyPool, Error::EmptyPool);
        assert_ne!(Error::EmptyPool, Error::EmptyStrata);
    }

    #[test]
    fn error_implements_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(Error::EmptyPool);
        assert!(err.source().is_none());
    }
}
