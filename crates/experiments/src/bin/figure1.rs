//! Regenerate Figure 1 (CSF stratum sizes and mean scores on Abt-Buy).
//!
//! Usage: `cargo run --release -p experiments --bin figure1 -- --scale=1.0 --strata=30`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = experiments::parse_arg(&args, "scale", 1.0f64);
    let strata = experiments::parse_arg(&args, "strata", 30usize);
    let seed = experiments::parse_arg(&args, "seed", 2017u64);
    println!(
        "{}",
        experiments::figure1::run(scale, strata, seed).render()
    );
}
