//! Engine-vs-library parity driver for `oasis-engine`.
//!
//! Usage: `cargo run --release -p experiments --bin engine_parity -- --scale=0.1 --sessions=8 --steps=2000 --workers=4`

use experiments::engine_parity::{run, EngineParityConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = EngineParityConfig {
        scale: experiments::parse_arg(&args, "scale", 0.1f64),
        sessions: experiments::parse_arg(&args, "sessions", 8usize),
        steps: experiments::parse_arg(&args, "steps", 2000usize),
        workers: experiments::parse_arg(&args, "workers", 4usize),
        seed: experiments::parse_arg(&args, "seed", 2017u64),
    };
    let parity = run(&config);
    println!("{}", parity.render());
    if !parity.all_identical() {
        std::process::exit(1);
    }
}
