//! Variance estimates and confidence intervals for the AIS F-measure
//! estimator.
//!
//! The OASIS design objective is *minimal asymptotic variance* (paper
//! Sec. 4.1.1).  This module makes that variance observable: it estimates the
//! sampling variance of the ratio estimator `F̂ = N̂ / D̂` (Eqn. 3) with the
//! delta method, treating the weighted numerator and denominator sums as a
//! bivariate sample mean,
//!
//! ```text
//! Var(F̂) ≈ (1/T) · [ Var(n) − 2·F̂·Cov(n, d) + F̂²·Var(d) ] / D̄²
//! ```
//!
//! where `n_t = w_t ℓ_t ℓ̂_t`, `d_t = w_t (α ℓ̂_t + (1−α) ℓ_t)` and `D̄` is the
//! mean of the `d_t`.  The same construction yields normal-approximation
//! confidence intervals, which practitioners use as a stopping rule ("stop
//! labelling once the interval is ±0.02").
//!
//! The estimate is a practical diagnostic, not a proof artefact: with adaptive
//! weights the draws are not i.i.d., but (as in the paper's consistency
//! argument) the per-draw terms form a martingale difference sequence once
//! centred, and the plug-in variance tracks the Monte-Carlo spread well in
//! practice (see the tests below and the `experiments` crate).

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// A normal-approximation confidence interval for the F-measure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound (clamped to `[0, 1]`).
    pub lower: f64,
    /// Upper bound (clamped to `[0, 1]`).
    pub upper: f64,
    /// Estimated standard error of the point estimate.
    pub standard_error: f64,
    /// The confidence level the interval was built for (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether a value is inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// Tracks the per-iteration numerator/denominator terms of the AIS estimator
/// and produces variance estimates and confidence intervals.
///
/// Feed it the same `(weight, prediction, label)` triples the
/// [`crate::estimator::AisEstimator`] receives (or use
/// [`crate::samplers::TrackedSampler`] which does both).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VarianceTracker {
    alpha: f64,
    count: f64,
    sum_n: f64,
    sum_d: f64,
    sum_nn: f64,
    sum_dd: f64,
    sum_nd: f64,
}

impl VarianceTracker {
    /// Create a tracker for the α-weighted F-measure.
    pub fn new(alpha: f64) -> Self {
        VarianceTracker {
            alpha,
            ..Default::default()
        }
    }

    /// Record one sampled item.
    pub fn observe(&mut self, weight: f64, prediction: bool, label: bool) {
        let l_hat = f64::from(u8::from(prediction));
        let l = f64::from(u8::from(label));
        let n = weight * l * l_hat;
        let d = weight * (self.alpha * l_hat + (1.0 - self.alpha) * l);
        self.count += 1.0;
        self.sum_n += n;
        self.sum_d += d;
        self.sum_nn += n * n;
        self.sum_dd += d * d;
        self.sum_nd += n * d;
    }

    /// Rebuild a tracker from previously captured sums (see
    /// [`VarianceTracker::sums`]).  The restored tracker continues its
    /// variance accumulation bit-for-bit — this is the restore half of the
    /// checkpoint path ([`crate::samplers::state::TrackerState`]).
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] on corrupt values: non-finite numbers,
    /// negative counts or sums (every per-draw term `n_t`, `d_t` is
    /// non-negative, so all running sums must be too), an `alpha` outside
    /// `[0, 1]`, or non-zero sums claimed for a zero observation count.
    pub fn from_parts(
        alpha: f64,
        count: f64,
        sum_n: f64,
        sum_d: f64,
        sum_nn: f64,
        sum_dd: f64,
        sum_nd: f64,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&alpha) || alpha.is_nan() {
            return Err(Error::InvalidParameter {
                name: "alpha",
                message: format!("must be in [0, 1], got {alpha}"),
            });
        }
        let sums = [count, sum_n, sum_d, sum_nn, sum_dd, sum_nd];
        if sums.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(Error::InvalidParameter {
                name: "tracker",
                message: format!(
                    "running sums must be finite and non-negative \
                     (count {count}, sum_n {sum_n}, sum_d {sum_d}, \
                     sum_nn {sum_nn}, sum_dd {sum_dd}, sum_nd {sum_nd})"
                ),
            });
        }
        if count == 0.0 && sums.iter().any(|&v| v != 0.0) {
            return Err(Error::InvalidParameter {
                name: "tracker",
                message: "non-zero sums with a zero observation count".to_string(),
            });
        }
        Ok(VarianceTracker {
            alpha,
            count,
            sum_n,
            sum_d,
            sum_nn,
            sum_dd,
            sum_nd,
        })
    }

    /// The F-measure weight α the tracker was built for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The raw running sums, in the order [`VarianceTracker::from_parts`]
    /// takes them: `(count, sum_n, sum_d, sum_nn, sum_dd, sum_nd)`.  This is
    /// the capture half of the checkpoint path.
    pub fn sums(&self) -> (f64, f64, f64, f64, f64, f64) {
        (
            self.count,
            self.sum_n,
            self.sum_d,
            self.sum_nn,
            self.sum_dd,
            self.sum_nd,
        )
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// The current point estimate of the F-measure, or `None` while undefined.
    pub fn f_measure(&self) -> Option<f64> {
        if self.sum_d > 0.0 {
            Some(self.sum_n / self.sum_d)
        } else {
            None
        }
    }

    /// Delta-method estimate of the variance of the F-measure estimator, or
    /// `None` while the estimator (or its variance) is undefined.
    pub fn variance(&self) -> Option<f64> {
        let t = self.count;
        if t < 2.0 || self.sum_d <= 0.0 {
            return None;
        }
        let f = self.sum_n / self.sum_d;
        let mean_n = self.sum_n / t;
        let mean_d = self.sum_d / t;
        let var_n = (self.sum_nn / t - mean_n * mean_n).max(0.0);
        let var_d = (self.sum_dd / t - mean_d * mean_d).max(0.0);
        let cov_nd = self.sum_nd / t - mean_n * mean_d;
        let numerator = var_n - 2.0 * f * cov_nd + f * f * var_d;
        let variance = numerator.max(0.0) / (t * mean_d * mean_d);
        Some(variance)
    }

    /// Estimated standard error of the F-measure estimate.
    pub fn standard_error(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Normal-approximation confidence interval at the given level
    /// (`0 < level < 1`), or `None` while undefined.
    pub fn confidence_interval(&self, level: f64) -> Option<ConfidenceInterval> {
        if !(0.0 < level && level < 1.0) {
            return None;
        }
        let estimate = self.f_measure()?;
        let standard_error = self.standard_error()?;
        let z = normal_quantile(0.5 + level / 2.0);
        Some(ConfidenceInterval {
            estimate,
            lower: (estimate - z * standard_error).max(0.0),
            upper: (estimate + z * standard_error).min(1.0),
            standard_error,
            level,
        })
    }
}

/// Quantile function (inverse CDF) of the standard normal distribution, using
/// the Acklam rational approximation (absolute error < 1.2e-9 over (0, 1)).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal quantile requires p in (0, 1), got {p}"
    );
    // Coefficients of the Acklam approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::pool::ScoredPool;
    use crate::samplers::{OasisConfig, OasisSampler, Sampler};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-4);
        assert!((normal_quantile(0.0001) + 3.719016).abs() < 1e-3);
        // Symmetry.
        for p in [0.01, 0.1, 0.3, 0.45] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn normal_quantile_rejects_out_of_range() {
        normal_quantile(1.0);
    }

    #[test]
    fn undefined_until_positive_denominator() {
        let mut tracker = VarianceTracker::new(0.5);
        assert!(tracker.f_measure().is_none());
        assert!(tracker.variance().is_none());
        assert!(tracker.confidence_interval(0.95).is_none());
        tracker.observe(1.0, false, false);
        assert!(tracker.variance().is_none());
        tracker.observe(1.0, true, true);
        assert!(tracker.f_measure().is_some());
        assert!(tracker.variance().is_some());
        assert_eq!(tracker.count(), 2);
    }

    #[test]
    fn from_parts_round_trips_bitwise_and_rejects_corrupt_sums() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut tracker = VarianceTracker::new(0.5);
        for _ in 0..300 {
            let label = rng.gen_bool(0.3);
            let prediction = rng.gen_bool(if label { 0.8 } else { 0.1 });
            tracker.observe(0.5 + rng.gen::<f64>(), prediction, label);
        }
        let (count, sum_n, sum_d, sum_nn, sum_dd, sum_nd) = tracker.sums();
        let restored = VarianceTracker::from_parts(
            tracker.alpha(),
            count,
            sum_n,
            sum_d,
            sum_nn,
            sum_dd,
            sum_nd,
        )
        .unwrap();
        assert_eq!(restored, tracker);
        assert_eq!(
            restored.variance().unwrap().to_bits(),
            tracker.variance().unwrap().to_bits()
        );
        let a = tracker.confidence_interval(0.95).unwrap();
        let b = restored.confidence_interval(0.95).unwrap();
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());

        for bad_alpha in [f64::NAN, -0.1, 1.5] {
            assert!(
                VarianceTracker::from_parts(bad_alpha, count, sum_n, sum_d, sum_nn, sum_dd, sum_nd)
                    .is_err(),
                "alpha {bad_alpha}"
            );
        }
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(
                VarianceTracker::from_parts(0.5, bad, sum_n, sum_d, sum_nn, sum_dd, sum_nd)
                    .is_err(),
                "count {bad}"
            );
            assert!(
                VarianceTracker::from_parts(0.5, count, sum_n, sum_d, bad, sum_dd, sum_nd).is_err(),
                "sum_nn {bad}"
            );
        }
        // Zero observations cannot have accumulated anything.
        assert!(VarianceTracker::from_parts(0.5, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0).is_err());
        assert_eq!(
            VarianceTracker::from_parts(0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0).unwrap(),
            VarianceTracker::new(0.5)
        );
    }

    #[test]
    fn invalid_confidence_level_rejected() {
        let mut tracker = VarianceTracker::new(0.5);
        tracker.observe(1.0, true, true);
        tracker.observe(1.0, true, false);
        assert!(tracker.confidence_interval(0.0).is_none());
        assert!(tracker.confidence_interval(1.0).is_none());
        assert!(tracker.confidence_interval(0.9).is_some());
    }

    #[test]
    fn variance_shrinks_with_sample_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tracker = VarianceTracker::new(0.5);
        let mut checkpoints = Vec::new();
        for i in 1..=10_000usize {
            let label = rng.gen_bool(0.3);
            let prediction = rng.gen_bool(if label { 0.8 } else { 0.1 });
            tracker.observe(1.0, prediction, label);
            if i == 100 || i == 1000 || i == 10_000 {
                checkpoints.push(tracker.variance().unwrap());
            }
        }
        assert!(checkpoints[0] > checkpoints[1]);
        assert!(checkpoints[1] > checkpoints[2]);
        // Roughly 1/T scaling.
        assert!(checkpoints[0] / checkpoints[2] > 20.0);
    }

    #[test]
    fn interval_width_matches_level_ordering() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tracker = VarianceTracker::new(0.5);
        for _ in 0..500 {
            let label = rng.gen_bool(0.4);
            let prediction = rng.gen_bool(if label { 0.7 } else { 0.2 });
            tracker.observe(1.0, prediction, label);
        }
        let narrow = tracker.confidence_interval(0.8).unwrap();
        let wide = tracker.confidence_interval(0.99).unwrap();
        assert!(wide.half_width() > narrow.half_width());
        assert!(narrow.contains(narrow.estimate));
        assert_eq!(narrow.level, 0.8);
        assert!(narrow.lower >= 0.0 && wide.upper <= 1.0);
    }

    /// The headline property: the nominal 95% interval built from one OASIS
    /// run should cover the true pool F-measure most of the time when the run
    /// is long enough for the normal approximation to hold.
    #[test]
    fn oasis_confidence_intervals_have_reasonable_coverage() {
        // An imbalanced pool with a mid-range F-measure.
        let n = 6000usize;
        let mut rng = StdRng::seed_from_u64(3);
        let mut scores = Vec::with_capacity(n);
        let mut predictions = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let is_match = rng.gen_bool(0.03);
            let p: f64 = if is_match {
                0.5 + 0.5 * rng.gen::<f64>()
            } else {
                0.45 * rng.gen::<f64>()
            };
            scores.push(p);
            predictions.push(p > 0.6);
            truth.push(is_match);
        }
        let pool = ScoredPool::new(scores, predictions.clone()).unwrap();
        let target = crate::measures::exhaustive_measures(&predictions, &truth, 0.5).f_measure;

        let runs = 30;
        let mut covered = 0usize;
        for r in 0..runs {
            let mut rng = StdRng::seed_from_u64(100 + r);
            let mut oracle = GroundTruthOracle::new(truth.clone());
            let mut sampler =
                OasisSampler::new(&pool, OasisConfig::default().with_strata_count(20)).unwrap();
            let mut tracker = VarianceTracker::new(0.5);
            for _ in 0..1500 {
                let outcome = sampler.step(&pool, &mut oracle, &mut rng).unwrap();
                tracker.observe(outcome.weight, outcome.prediction, outcome.label);
            }
            let interval = tracker.confidence_interval(0.95).unwrap();
            if interval.contains(target) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / runs as f64;
        assert!(
            coverage >= 0.7,
            "95% intervals should cover the truth most of the time; observed {coverage}"
        );
    }
}
