//! The pool of record pairs to be evaluated.
//!
//! A [`ScoredPool`] holds, for each candidate record pair `z` in the pool `P`,
//! the ER system's similarity score `s(z)` and predicted label `ℓ̂(z)`.  The
//! true labels are *not* part of the pool — they live behind the
//! [`crate::oracle::Oracle`] abstraction, mirroring the paper's setup where
//! labels must be purchased one at a time.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// A pool of record pairs with similarity scores and predicted labels.
///
/// Items are addressed by their index `0..len()`.  Callers that need to map
/// indices back to concrete record pairs (e.g. `(record_a, record_b)` ids)
/// should keep that mapping alongside the pool; the sampling machinery only
/// ever needs scores and predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredPool {
    scores: Vec<f64>,
    predictions: Vec<bool>,
}

impl ScoredPool {
    /// Create a pool from parallel vectors of similarity scores and predicted
    /// labels.
    ///
    /// # Errors
    /// * [`Error::EmptyPool`] if the vectors are empty.
    /// * [`Error::LengthMismatch`] if the vectors have different lengths.
    /// * [`Error::NonFiniteScore`] if any score is NaN or infinite.
    pub fn new(scores: Vec<f64>, predictions: Vec<bool>) -> Result<Self> {
        if scores.is_empty() {
            return Err(Error::EmptyPool);
        }
        if scores.len() != predictions.len() {
            return Err(Error::LengthMismatch {
                scores: scores.len(),
                predictions: predictions.len(),
            });
        }
        if let Some((index, &value)) = scores
            .iter()
            .enumerate()
            .find(|(_, value)| !value.is_finite())
        {
            return Err(Error::NonFiniteScore { index, value });
        }
        Ok(ScoredPool {
            scores,
            predictions,
        })
    }

    /// Number of record pairs in the pool (`N = |P|`).
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the pool is empty. Always `false` for a successfully
    /// constructed pool, provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Similarity score of item `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn score(&self, index: usize) -> f64 {
        self.scores[index]
    }

    /// Predicted label of item `index` (`true` = predicted match).
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn prediction(&self, index: usize) -> bool {
        self.predictions[index]
    }

    /// All similarity scores.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// All predicted labels.
    pub fn predictions(&self) -> &[bool] {
        &self.predictions
    }

    /// Number of predicted matches in the pool (`TP + FP`, known exactly
    /// without any oracle queries).
    pub fn predicted_match_count(&self) -> usize {
        self.predictions.iter().filter(|&&p| p).count()
    }

    /// Whether all scores already lie in the unit interval `[0, 1]`.
    ///
    /// OASIS uses this to decide whether initial oracle-probability guesses can
    /// use the scores directly or must first squash them through a logistic
    /// transform (paper Algorithm 2, lines 3–5).
    pub fn scores_are_probabilities(&self) -> bool {
        self.scores.iter().all(|&s| (0.0..=1.0).contains(&s))
    }

    /// Minimum and maximum score in the pool.
    pub fn score_range(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &s in &self.scores {
            if s < min {
                min = s;
            }
            if s > max {
                max = s;
            }
        }
        (min, max)
    }

    /// The uniform marginal probability `p(z) = 1/N` the paper uses as the
    /// underlying distribution on the pool (Remark 3).
    pub fn uniform_mass(&self) -> f64 {
        1.0 / self.scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ScoredPool {
        ScoredPool::new(
            vec![0.9, 0.8, 0.1, 0.3, 0.05],
            vec![true, true, false, false, false],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let p = pool();
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.score(0), 0.9);
        assert!(p.prediction(1));
        assert!(!p.prediction(4));
        assert_eq!(p.predicted_match_count(), 2);
        assert_eq!(p.scores().len(), 5);
        assert_eq!(p.predictions().len(), 5);
        assert!((p.uniform_mass() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_pool_rejected() {
        assert_eq!(ScoredPool::new(vec![], vec![]), Err(Error::EmptyPool));
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = ScoredPool::new(vec![0.5, 0.6], vec![true]).unwrap_err();
        assert_eq!(
            err,
            Error::LengthMismatch {
                scores: 2,
                predictions: 1
            }
        );
    }

    #[test]
    fn non_finite_scores_rejected() {
        let err = ScoredPool::new(vec![0.5, f64::NAN], vec![true, false]).unwrap_err();
        match err {
            Error::NonFiniteScore { index, .. } => assert_eq!(index, 1),
            other => panic!("unexpected error {other:?}"),
        }
        let err = ScoredPool::new(vec![f64::INFINITY], vec![true]).unwrap_err();
        assert!(matches!(err, Error::NonFiniteScore { index: 0, .. }));
    }

    #[test]
    fn probability_detection() {
        assert!(pool().scores_are_probabilities());
        let raw = ScoredPool::new(vec![-2.0, 0.3, 5.1], vec![false, false, true]).unwrap();
        assert!(!raw.scores_are_probabilities());
    }

    #[test]
    fn score_range() {
        let (lo, hi) = pool().score_range();
        assert_eq!(lo, 0.05);
        assert_eq!(hi, 0.9);
    }

    #[test]
    fn serde_round_trip() {
        let p = pool();
        let json = serde_json_like(&p);
        assert!(json.contains("0.9"));
    }

    // Minimal smoke test that Serialize derives compile & work without pulling
    // serde_json into the dependency tree: use the `serde` test shim of
    // formatting through Debug on the serialized-able struct.
    fn serde_json_like(p: &ScoredPool) -> String {
        format!("{:?}", p)
    }
}
