//! Synthetic dataset generation.
//!
//! The paper evaluates on six publicly available datasets (Table 1) and pools
//! sampled from them (Table 2).  Those datasets are not redistributable inside
//! this repository, so this module builds *synthetic stand-ins*: generators
//! that produce two record sources from a latent entity population, with
//! controlled record counts, match counts and attribute corruption, such that
//! the resulting evaluation pools mirror the paper's pool sizes, class
//! imbalances, match counts and (approximately) classifier operating points.
//!
//! What OASIS consumes is only the triple (similarity score, predicted label,
//! true label) per pool item, so this substitution preserves every behaviour
//! the paper's experiments exercise; see `DESIGN.md` §3.
//!
//! * [`vocabulary`] — word lists and entity attribute generators per domain.
//! * [`corruption`] — typos, token drops, abbreviations, missing values.
//! * [`generator`] — building sources + pair space from a configuration.
//! * [`score_model`] — direct (record-free) pool synthesis for very large
//!   pools and for the non-ER `tweets100k` dataset.
//! * [`profiles`] — the six named dataset profiles of Tables 1 and 2.

pub mod corruption;
pub mod generator;
pub mod profiles;
pub mod score_model;
pub mod vocabulary;

pub use generator::{GeneratorConfig, SyntheticDataset};
pub use profiles::{all_profiles, profile_by_name, DatasetProfile, Domain};
pub use score_model::{DirectPoolConfig, DirectPoolModel};
