//! Raw Linux epoll and rlimit bindings.
//!
//! The build environment is fully offline, so instead of depending on the
//! `libc` crate this module declares the handful of symbols it needs
//! directly — they all live in the C library that `std` already links.  All
//! `unsafe` in the `epoll` crate is confined to this file; everything above
//! it is safe Rust over these wrappers.
//!
//! On non-Linux targets every entry point returns
//! [`std::io::ErrorKind::Unsupported`] so the workspace still compiles; the
//! serving layers that use the reactor are themselves Linux-only features.

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never registered.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (`EPOLLHUP`) — always reported, never registered.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered mode flag (`EPOLLET`).
pub const EPOLLET: u32 = 1 << 31;

/// One `struct epoll_event`.  On x86 the kernel ABI packs it (no padding
/// between `events` and `data`); other architectures use natural layout.
/// Always copy fields out of a value — never take a reference into a packed
/// instance.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy, Debug)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLL*` flags).
    pub events: u32,
    /// Caller-owned token payload.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event (used to pre-size wait buffers).
    pub const fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::EpollEvent;
    use std::io;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const RLIMIT_NOFILE: i32 = 7;

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    // These symbols live in the platform C library, which std already
    // links; declaring them here avoids any external crate dependency.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn create() -> io::Result<i32> {
        // SAFETY: epoll_create1 takes a flags int and returns an fd or -1.
        cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    fn ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, data };
        // SAFETY: `event` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut event) }).map(|_| ())
    }

    pub fn add(epfd: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_ADD, fd, events, data)
    }

    pub fn modify(epfd: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_MOD, fd, events, data)
    }

    pub fn delete(epfd: i32, fd: i32) -> io::Result<()> {
        // Pre-2.6.9 kernels demanded a non-null event for DEL; passing one
        // is harmless everywhere.
        ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
    }

    pub fn wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `buf` is a live, writable slice; maxevents matches it.
        let n = cvt(unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) })?;
        Ok(n as usize)
    }

    pub fn close_fd(fd: i32) {
        // SAFETY: the caller owns `fd` and never uses it again.
        let _ = unsafe { close(fd) };
    }

    pub fn nofile_limits() -> io::Result<(u64, u64)> {
        let mut lim = Rlimit { cur: 0, max: 0 };
        // SAFETY: `lim` outlives the call; the kernel fills it.
        cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
        Ok((lim.cur, lim.max))
    }

    pub fn raise_nofile_to_hard() -> io::Result<u64> {
        let (cur, max) = nofile_limits()?;
        if cur >= max {
            return Ok(cur);
        }
        let lim = Rlimit { cur: max, max };
        // SAFETY: raising the soft limit to the hard limit is always
        // permitted; `lim` outlives the call.
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
        Ok(max)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::EpollEvent;
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is only available on Linux",
        ))
    }

    pub fn create() -> io::Result<i32> {
        unsupported()
    }
    pub fn add(_: i32, _: i32, _: u32, _: u64) -> io::Result<()> {
        unsupported()
    }
    pub fn modify(_: i32, _: i32, _: u32, _: u64) -> io::Result<()> {
        unsupported()
    }
    pub fn delete(_: i32, _: i32) -> io::Result<()> {
        unsupported()
    }
    pub fn wait(_: i32, _: &mut [EpollEvent], _: i32) -> io::Result<usize> {
        unsupported()
    }
    pub fn close_fd(_: i32) {}
    pub fn nofile_limits() -> io::Result<(u64, u64)> {
        unsupported()
    }
    pub fn raise_nofile_to_hard() -> io::Result<u64> {
        unsupported()
    }
}

pub use imp::{add, close_fd, create, delete, modify, nofile_limits, raise_nofile_to_hard, wait};
