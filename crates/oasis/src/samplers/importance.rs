//! Static (non-adaptive) importance sampling — the "IS" baseline of
//! Section 6.2, after Sawade et al. (NIPS 2010).
//!
//! The instrumental distribution approximates the asymptotically optimal form
//! of Eqn. 5 by plugging in the similarity scores (mapped to the unit
//! interval) in place of the oracle probabilities, and an initial guess in
//! place of the true F-measure.  It is fixed before any label is observed and
//! never adapts, so its efficiency hinges entirely on how well calibrated the
//! scores are (paper Section 6.3.2).
//!
//! The distribution lives over the *entire pool* of `N` items.  The paper's
//! reference implementation (`numpy.random.choice`) pays `O(N)` per draw,
//! which is what makes IS an order of magnitude slower than OASIS in the
//! paper's Table 3; because the distribution is static, this implementation
//! precomputes its cumulative weights once and draws in `O(log N)` via
//! binary search ([`CategoricalCdf`]).

use super::state::{EstimatorState, ImportanceState, SamplerMethod, SamplerState};
use super::{
    unstratified_diagnostics, CategoricalCdf, InteractiveSampler, Proposal, Sampler,
    SamplerDiagnostics,
};
use crate::error::{Error, Result};
use crate::estimator::{AisEstimator, Estimate};
use crate::instrumental::pointwise_optimal;
use crate::pool::ScoredPool;
use rand::Rng;

/// Map an arbitrary real-valued score to `(0, 1)` via the logistic function,
/// shifted so the decision threshold `tau` maps to ½.
pub(crate) fn logistic(score: f64, tau: f64) -> f64 {
    1.0 / (1.0 + (-(score - tau)).exp())
}

/// Static importance sampler over the whole pool.
#[derive(Debug, Clone)]
pub struct ImportanceSampler {
    /// Normalised instrumental probabilities over the pool items.
    proposal: Vec<f64>,
    /// Cumulative weights of `proposal`, precomputed for O(log N) draws.
    cdf: CategoricalCdf,
    /// Importance weights `p(z)/q(z) = (1/N)/q_i`, pre-computed.
    weights: Vec<f64>,
    /// The decision threshold τ the proposal was built with (kept for
    /// serializable state; the proposal itself is recomputed on restore).
    score_threshold: f64,
    estimator: AisEstimator,
}

impl ImportanceSampler {
    /// Build the static IS sampler.
    ///
    /// * `alpha` — F-measure weight.
    /// * `score_threshold` — decision threshold `τ` used to squash raw scores
    ///   through the logistic function when they are not already
    ///   probabilities.  Ignored for probability scores.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if `alpha` lies outside `[0, 1]`.
    pub fn new(pool: &ScoredPool, alpha: f64, score_threshold: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&alpha) || alpha.is_nan() {
            return Err(Error::InvalidParameter {
                name: "alpha",
                message: format!("must be in [0, 1], got {alpha}"),
            });
        }
        // Scores as stand-ins for the oracle probabilities.
        let probabilities: Vec<f64> = if pool.scores_are_probabilities() {
            pool.scores().to_vec()
        } else {
            pool.scores()
                .iter()
                .map(|&s| logistic(s, score_threshold))
                .collect()
        };
        // Initial F-measure guess from the same plug-in quantities.
        let f_guess = initial_f_guess(pool.predictions(), &probabilities, alpha);
        let proposal = pointwise_optimal(pool.predictions(), &probabilities, f_guess, alpha);
        let uniform = pool.uniform_mass();
        let weights = proposal
            .iter()
            .map(|&q| if q > 0.0 { uniform / q } else { 0.0 })
            .collect();
        let cdf = CategoricalCdf::new(&proposal);
        Ok(ImportanceSampler {
            proposal,
            cdf,
            weights,
            score_threshold,
            estimator: AisEstimator::new(alpha),
        })
    }

    /// The (normalised) static instrumental distribution over pool items.
    pub fn proposal(&self) -> &[f64] {
        &self.proposal
    }

    /// The AIS estimator's running sums — read by the sharded merge.
    pub(crate) fn estimator(&self) -> &AisEstimator {
        &self.estimator
    }

    /// Assemble a sampler from a restored estimator, recomputing the static
    /// proposal from the pool (a pure deterministic function of the scores,
    /// so the recomputation is bit-exact); shared by
    /// [`ImportanceState::rebuild`].
    pub(super) fn from_parts(
        pool: &ScoredPool,
        score_threshold: f64,
        estimator: AisEstimator,
    ) -> Result<Self> {
        let mut sampler = ImportanceSampler::new(pool, estimator.alpha(), score_threshold)?;
        sampler.estimator = estimator;
        Ok(sampler)
    }
}

/// Plug-in initial guess of the F-measure from scores treated as probabilities
/// (the same construction as paper Algorithm 2, but without strata).
pub(crate) fn initial_f_guess(predictions: &[bool], probabilities: &[f64], alpha: f64) -> f64 {
    let mut tp = 0.0;
    let mut predicted = 0.0;
    let mut actual = 0.0;
    for (&pred, &p) in predictions.iter().zip(probabilities.iter()) {
        let l_hat = f64::from(u8::from(pred));
        tp += p * l_hat;
        predicted += l_hat;
        actual += p;
    }
    let denom = alpha * predicted + (1.0 - alpha) * actual;
    if denom > 0.0 {
        (tp / denom).clamp(0.0, 1.0)
    } else {
        0.5
    }
}

impl InteractiveSampler for ImportanceSampler {
    /// Draw one item from the static instrumental distribution; the
    /// importance weight is the precomputed `(1/N)/q_i` and the stratum slot
    /// is unused (0).
    fn propose<R: Rng + ?Sized>(&mut self, pool: &ScoredPool, rng: &mut R) -> Proposal {
        let item = self.cdf.sample(rng);
        Proposal {
            item,
            stratum: 0,
            prediction: pool.prediction(item),
            weight: self.weights[item],
        }
    }

    fn apply_label(&mut self, proposal: &Proposal, label: bool) {
        self.estimator
            .observe(proposal.weight, proposal.prediction, label);
    }

    fn estimate(&self) -> Estimate {
        self.estimator.estimate()
    }

    fn name(&self) -> &'static str {
        "IS"
    }

    fn method(&self) -> SamplerMethod {
        SamplerMethod::Importance
    }

    fn diagnostics(&self) -> SamplerDiagnostics {
        unstratified_diagnostics(SamplerMethod::Importance, &self.estimator)
    }

    fn state(&self) -> SamplerState {
        SamplerState::Importance(ImportanceState {
            score_threshold: self.score_threshold,
            estimator: EstimatorState::capture(&self.estimator),
            tracker: None,
        })
    }

    fn from_state(pool: &ScoredPool, state: SamplerState) -> Result<Self> {
        match state {
            SamplerState::Importance(state) => state.rebuild(pool),
            other => Err(other.method_mismatch(SamplerMethod::Importance)),
        }
    }
}

impl Sampler for ImportanceSampler {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::exhaustive_measures;
    use crate::oracle::GroundTruthOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn calibrated_pool(n: usize, match_rate: f64, seed: u64) -> (ScoredPool, Vec<bool>) {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scores = Vec::with_capacity(n);
        let mut predictions = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            // Draw a "probability" then the label from it → perfectly calibrated.
            let p: f64 = if rng.gen_bool(match_rate) {
                0.5 + 0.5 * rng.gen::<f64>()
            } else {
                0.35 * rng.gen::<f64>()
            };
            let is_match = rng.gen_bool(p);
            scores.push(p);
            predictions.push(p > 0.5);
            truth.push(is_match);
        }
        (ScoredPool::new(scores, predictions).unwrap(), truth)
    }

    #[test]
    fn logistic_maps_threshold_to_half() {
        assert!((logistic(2.0, 2.0) - 0.5).abs() < 1e-12);
        assert!(logistic(10.0, 0.0) > 0.99);
        assert!(logistic(-10.0, 0.0) < 0.01);
    }

    #[test]
    fn initial_f_guess_bounds() {
        let g = initial_f_guess(&[true, false], &[0.9, 0.1], 0.5);
        assert!((0.0..=1.0).contains(&g));
        // No predictions and no probability mass → fallback ½.
        assert_eq!(initial_f_guess(&[false], &[0.0], 0.5), 0.5);
    }

    #[test]
    fn rejects_bad_alpha() {
        let (pool, _) = calibrated_pool(50, 0.2, 1);
        assert!(ImportanceSampler::new(&pool, -0.1, 0.0).is_err());
        assert!(ImportanceSampler::new(&pool, 1.1, 0.0).is_err());
        assert!(ImportanceSampler::new(&pool, f64::NAN, 0.0).is_err());
    }

    #[test]
    fn proposal_is_normalised_and_favours_predicted_matches() {
        let (pool, _) = calibrated_pool(2000, 0.05, 2);
        let sampler = ImportanceSampler::new(&pool, 0.5, 0.5).unwrap();
        let total: f64 = sampler.proposal().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Average proposal mass on predicted matches should exceed the uniform mass.
        let uniform = pool.uniform_mass();
        let mut match_mass = 0.0;
        let mut match_count = 0usize;
        for (i, &q) in sampler.proposal().iter().enumerate() {
            if pool.prediction(i) {
                match_mass += q;
                match_count += 1;
            }
        }
        assert!(match_count > 0);
        assert!(match_mass / match_count as f64 > uniform);
    }

    #[test]
    fn converges_to_true_f_measure_with_fewer_labels_than_passive() {
        let (pool, truth) = calibrated_pool(5000, 0.02, 3);
        let target = exhaustive_measures(pool.predictions(), &truth, 0.5).f_measure;

        // Run IS and passive with the same modest label budget; IS should land closer.
        let budget = 400;
        let repeats = 20;
        let mut is_err = 0.0;
        let mut passive_err = 0.0;
        for r in 0..repeats {
            let mut oracle = GroundTruthOracle::new(truth.clone());
            let mut rng = StdRng::seed_from_u64(100 + r);
            let mut is = ImportanceSampler::new(&pool, 0.5, 0.5).unwrap();
            let est = is
                .run_until_budget(&pool, &mut oracle, &mut rng, budget, 100_000)
                .unwrap();
            is_err += (est.to_measures().f_measure - target).abs();

            let mut oracle = GroundTruthOracle::new(truth.clone());
            let mut rng = StdRng::seed_from_u64(500 + r);
            let mut passive = super::super::PassiveSampler::new(0.5);
            let est = passive
                .run_until_budget(&pool, &mut oracle, &mut rng, budget, 100_000)
                .unwrap();
            passive_err += (est.to_measures().f_measure - target).abs();
        }
        assert!(
            is_err < passive_err,
            "IS mean abs err {} should beat passive {}",
            is_err / repeats as f64,
            passive_err / repeats as f64
        );
    }

    #[test]
    fn works_with_uncalibrated_scores() {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(4);
        let n = 500;
        let mut scores = Vec::with_capacity(n);
        let mut predictions = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let is_match = rng.gen_bool(0.1);
            let margin: f64 = if is_match {
                rng.gen::<f64>() * 3.0
            } else {
                -rng.gen::<f64>() * 3.0
            };
            scores.push(margin);
            predictions.push(margin > 0.0);
            truth.push(is_match);
        }
        let pool = ScoredPool::new(scores, predictions).unwrap();
        let mut oracle = GroundTruthOracle::new(truth);
        let mut sampler = ImportanceSampler::new(&pool, 0.5, 0.0).unwrap();
        let est = sampler.run(&pool, &mut oracle, &mut rng, 500).unwrap();
        assert!(est.f_measure.is_finite());
        assert!(
            est.f_measure > 0.5,
            "classifier is near-perfect, estimate {}",
            est.f_measure
        );
        assert_eq!(sampler.name(), "IS");
    }
}
