//! The scripted protocol session CI pipes into the `oasis-serve` binary,
//! run here through `serve_lines` so `cargo test` enforces the same pinned
//! output locally.  If this test needs a new golden value, update the
//! matching `grep` in `.github/workflows/ci.yml` too.

use oasis_engine::server::serve_lines;
use oasis_engine::Engine;
use std::io::Cursor;

const SMOKE_SCRIPT: &str = include_str!("smoke/session.jsonl");

/// Golden estimates for the smoke sessions — one OASIS, one passive, one
/// stratified session over the same pool, seed and step count (the pool +
/// seed are fixed, all arithmetic is deterministic IEEE-754 — no libm in the
/// calibrated-score path — so these are stable across platforms).  One
/// golden per method pins the whole method-dispatch path: sampler
/// construction, the propose/apply state machine, and the estimator.
const GOLDEN_OASIS_FRAGMENT: &str = r#""f_measure":0.8605922932779813"#;
const GOLDEN_PASSIVE_FRAGMENT: &str = r#""f_measure":0.8524590163934426"#;
const GOLDEN_STRATIFIED_FRAGMENT: &str = r#""f_measure":0.8864468864468864"#;

#[test]
fn scripted_smoke_session_reproduces_the_golden_estimate_lines() {
    let engine = Engine::new();
    let mut output = Vec::new();
    let shutdown = serve_lines(&engine, Cursor::new(SMOKE_SCRIPT), &mut output).unwrap();
    assert!(shutdown, "the script ends with a shutdown command");

    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 11, "one response per request:\n{text}");
    for line in &lines {
        assert!(line.contains(r#""ok":true"#), "failed response: {line}");
    }
    for (estimate_line, method, golden) in [
        (lines[3], "oasis", GOLDEN_OASIS_FRAGMENT),
        (lines[6], "passive", GOLDEN_PASSIVE_FRAGMENT),
        (lines[9], "stratified", GOLDEN_STRATIFIED_FRAGMENT),
    ] {
        assert!(
            estimate_line.contains(golden),
            "{method} estimate drifted from golden: {estimate_line}"
        );
        assert!(
            estimate_line.contains(&format!(r#""method":"{method}""#)),
            "{method}: {estimate_line}"
        );
        assert!(estimate_line.contains(r#""labels_consumed":10"#));
    }
}

#[test]
fn unknown_methods_are_rejected_with_a_protocol_error() {
    // The rejection path the smoke script cannot carry (it asserts all-ok):
    // an unknown method is answered with a structured error and the
    // connection keeps serving.
    let engine = Engine::new();
    let script = concat!(
        r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.1],"predictions":[true,false]}"#,
        "\n",
        r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"method":"annealing"}"#,
        "\n",
        r#"{"cmd":"sessions"}"#,
        "\n",
    );
    let mut output = Vec::new();
    serve_lines(&engine, Cursor::new(script), &mut output).unwrap();
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[1].contains(r#""ok":false"#), "{}", lines[1]);
    assert!(lines[1].contains("annealing"), "{}", lines[1]);
    assert!(lines[2].contains(r#""ok":true"#), "{}", lines[2]);
}
