//! String generation from a small regex subset.
//!
//! Real proptest interprets `&str` strategies as full regexes. This shim
//! supports the subset the workspace's tests use: a sequence of atoms —
//! a character class `[a-z0-9]`, the wildcard `.`, or a literal character —
//! each optionally quantified with `{m,n}`, `{m}`, `?`, `*` or `+`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Characters the wildcard `.` draws from: ASCII letters (both cases),
/// digits, punctuation, whitespace and a sprinkling of non-ASCII, so tests
/// over "arbitrary" text exercise case-folding and normalisation paths.
const ANY_CHAR_PALETTE: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'B', 'Z', '0', '1', '9', ' ', ' ', '\t', '.', ',', ';', '-',
    '_', '!', '?', '#', '@', '/', '\\', '(', ')', '"', '\'', 'é', 'Ü', 'ß', 'ñ', 'λ', '中', '€',
    '…', '\u{0301}',
];

#[derive(Clone, Debug)]
enum Atom {
    Any,
    Literal(char),
    Class(Vec<char>),
}

impl Atom {
    fn sample(&self, rng: &mut StdRng) -> char {
        match self {
            Atom::Any => *ANY_CHAR_PALETTE.choose(rng).expect("palette is non-empty"),
            Atom::Literal(c) => *c,
            Atom::Class(chars) => *chars.choose(rng).expect("validated non-empty"),
        }
    }
}

#[derive(Clone, Debug)]
struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Atom {
    let mut members = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        match chars.next() {
            None => panic!("unterminated character class in pattern {pattern:?}"),
            Some(']') => break,
            Some('-') if prev.is_some() && chars.peek().is_some_and(|&c| c != ']') => {
                let start = prev.take().expect("checked above");
                let end = chars.next().expect("peeked above");
                assert!(start <= end, "invalid range {start}-{end} in {pattern:?}");
                // `members` already holds `start`; add the rest of the range.
                members.extend(((start as u32 + 1)..=(end as u32)).filter_map(char::from_u32));
            }
            Some(c) => {
                members.push(c);
                prev = Some(c);
            }
        }
    }
    assert!(!members.is_empty(), "empty character class in {pattern:?}");
    Atom::Class(members)
}

fn parse(pattern: &str) -> Vec<Quantified> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '[' => parse_class(&mut chars, pattern),
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}} in {pattern:?}"));
                        let hi = hi
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}} in {pattern:?}"));
                        (lo, hi)
                    }
                    None => {
                        let exact: usize = spec
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}} in {pattern:?}"));
                        (exact, exact)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier bounds in {pattern:?}");
        atoms.push(Quantified { atom, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for part in parse(self) {
            let count = rng.gen_range(part.min..=part.max);
            for _ in 0..count {
                out.push(part.atom.sample(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_quantifier_respects_alphabet_and_length() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z0-9]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn wildcard_len_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = ".{0,60}".generate(&mut rng);
            assert!(s.chars().count() <= 60);
        }
    }

    #[test]
    fn narrow_class() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = "[a-c]{0,6}".generate(&mut rng);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!("ab{3}c".generate(&mut rng), "abbbc");
    }
}
