//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes parking_lot's non-poisoning `Mutex`/`RwLock` API shape; poisoned
//! std locks are recovered transparently, matching parking_lot's behaviour of
//! not propagating panics through lock acquisition.

#![warn(missing_docs)]

use std::sync;

/// A mutex with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with parking_lot's panic-free API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader–writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
