//! The line-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line with a `"cmd"` field; every
//! response is one JSON object on one line with `"ok": true|false`.  The
//! protocol is transport-agnostic — `oasis-serve` speaks it over
//! stdin/stdout or TCP — and deliberately stateless at the line level: all
//! state lives in the engine's named pools and sessions.
//!
//! | `cmd` | fields | effect |
//! |---|---|---|
//! | `load_pool` | `pool`, `scores[]`, `predictions[]` | register a shared pool |
//! | `create_session` | `session`, `pool`, `seed`, `method`?, `config{}`?, `shards`?, `truth[]`? | new session; `truth` attaches an in-process oracle |
//! | `propose` | `session`, `count`? | draw items to label; returns tickets |
//! | `label` | `session`, `labels[{ticket,label}]` | resume with a label batch |
//! | `step` | `session`, `steps` | run full iterations (needs `truth`) |
//! | `run_budget` | `session`, `budget`, `max_steps`? | run until the label budget is spent |
//! | `estimate` | `session` | current F/P/R estimate + 95% CI + budget state |
//! | `checkpoint` | `session` | inline JSON checkpoint document |
//! | `restore` | `session`, `checkpoint{}` | rebuild a session from a checkpoint |
//! | `checkpoint_to` | `session` | durably checkpoint into the attached store |
//! | `restore_from` | `session` | rebuild from the store: checkpoint + WAL replay |
//! | `expire_leases` | `session` | force the overdue-lease sweep now |
//! | `auth` | `token` | present a client token (enforced by the server guard) |
//! | `sessions` | — | list sessions with per-session metadata |
//! | `delete_session` | `session` | drop a session (and its store entry) |
//! | `metrics` | — | global counters + latency histograms (see [`crate::metrics`]) |
//! | `diagnostics` | `session` | ground-truth-free sampler health (ESS, weight variance, allocation) |
//! | `shutdown` | — | acknowledge and stop serving |
//!
//! `create_session`'s `method` selects the sampling method — `"oasis"`
//! (the default, for back-compatibility with pre-redesign clients),
//! `"passive"`, `"importance"` or `"stratified"` — so all of the paper's
//! comparison methods run behind the same wire commands.  An unknown method
//! is a structured `"ok": false` protocol error, never a dropped connection.
//!
//! `create_session`'s optional `lease_timeout_us` puts every proposed ticket
//! on a lease against the engine's logical lease clock: tickets older than
//! the timeout are reclaimed on the next `propose` (or an explicit
//! `expire_leases`), their late labels rejected.  The clock reading is
//! WAL-logged with the propose, so replay expires exactly what the live run
//! expired.  `max_pending` bounds the outstanding-ticket queue; a propose
//! that would exceed it fails with a `backpressure` error *before* touching
//! the sampler, so the rejected request is invisible to replay.
//!
//! `create_session`'s optional `shards` partitions the pool into that many
//! shards, each with its own strata and inner sampler, routed through one
//! Fenwick tree of shard masses (see [`oasis::ShardedSampler`]) — the merged
//! estimate is the exact AIS estimate, and `shards: 1` is bit-identical to
//! an unsharded session on the same seed.  `shards: 0` is a protocol error;
//! omitting the field builds the classic flat sampler.

use crate::checkpoint::SessionCheckpoint;
use crate::engine::Engine;
use crate::error::{EngineError, EngineResult};
use crate::metrics::Counter;
use crate::session::{LabelSource, Session, SessionLimits, Ticket};
use crate::wal::WalEntry;
use oasis::{GroundTruthOracle, OasisConfig, SamplerMethod, ScoredPool};
use serde::json::{FromJson, Json, ToJson};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a pool of scored record pairs.
    LoadPool {
        /// Pool id.
        pool: String,
        /// Similarity scores.
        scores: Vec<f64>,
        /// Predicted labels.
        predictions: Vec<bool>,
    },
    /// Create a session.
    CreateSession {
        /// Session id.
        session: String,
        /// Pool id to evaluate.
        pool: String,
        /// RNG seed.
        seed: u64,
        /// Sampling method (`"oasis"` when omitted).
        method: SamplerMethod,
        /// Sampler configuration (defaults for missing keys).
        config: OasisConfig,
        /// Optional shard count: partition the pool into this many shards,
        /// each with its own strata and inner sampler (`None` = flat).
        shards: Option<usize>,
        /// Optional hidden ground truth, enabling `step`/`run_budget`.
        truth: Option<Vec<bool>>,
        /// Robustness limits: propose-lease timeout and pending-ticket cap
        /// (both off by default, preserving legacy wire behaviour).
        limits: SessionLimits,
    },
    /// Draw `count` items to label.
    Propose {
        /// Session id.
        session: String,
        /// Batch size (default 1).
        count: usize,
    },
    /// Apply a batch of labels.
    Label {
        /// Session id.
        session: String,
        /// `(ticket, label)` pairs.
        labels: Vec<(u64, bool)>,
    },
    /// Run complete iterations against the attached oracle.
    Step {
        /// Session id.
        session: String,
        /// Number of iterations.
        steps: usize,
    },
    /// Run until the distinct-label budget is consumed.
    RunBudget {
        /// Session id.
        session: String,
        /// Label budget.
        budget: usize,
        /// Iteration cap (default 1,000,000).
        max_steps: usize,
    },
    /// Report the current estimate.
    Estimate {
        /// Session id.
        session: String,
    },
    /// Produce an inline checkpoint document.
    Checkpoint {
        /// Session id.
        session: String,
    },
    /// Restore a session from an inline checkpoint document.
    Restore {
        /// New session id.
        session: String,
        /// The checkpoint document (boxed — it dwarfs every other variant).
        checkpoint: Box<SessionCheckpoint>,
    },
    /// Durably checkpoint a session into the attached store.
    CheckpointTo {
        /// Session id.
        session: String,
    },
    /// Rebuild a session from the attached store (checkpoint + WAL replay).
    RestoreFrom {
        /// Session id.
        session: String,
    },
    /// Expire overdue propose leases now (usually they expire lazily on the
    /// next propose; this forces the sweep, e.g. after a client vanished).
    ExpireLeases {
        /// Session id.
        session: String,
    },
    /// Present a client auth token.  Enforcement lives in the server's
    /// connection guard; with no guard configured this is an accepted no-op.
    Auth {
        /// The presented token.
        token: String,
    },
    /// List live sessions.
    Sessions,
    /// Delete a session.
    DeleteSession {
        /// Session id.
        session: String,
    },
    /// Report the engine-wide metrics snapshot.
    Metrics,
    /// Report one session's ground-truth-free sampler diagnostics.
    Diagnostics {
        /// Session id.
        session: String,
    },
    /// Stop serving.
    Shutdown,
}

fn string_field(value: &Json, key: &str) -> EngineResult<String> {
    Ok(String::from_json(value.require(key)?)?)
}

/// Largest propose batch a single request may ask for.
pub const MAX_PROPOSE_COUNT: usize = 100_000;
/// Largest number of iterations a single `step`/`run_budget` request may run.
pub const MAX_STEPS_PER_REQUEST: usize = 100_000_000;

fn bounded(value: usize, limit: usize, what: &str) -> EngineResult<usize> {
    if value > limit {
        return Err(EngineError::Protocol(format!(
            "{what} {value} exceeds the per-request limit {limit}"
        )));
    }
    Ok(value)
}

impl Request {
    /// Parse one protocol line.
    ///
    /// # Errors
    /// [`EngineError::Protocol`] / [`EngineError::Json`] on malformed input.
    pub fn parse(line: &str) -> EngineResult<Request> {
        let value = Json::parse(line)?;
        let cmd = value.require("cmd")?.as_str()?.to_string();
        match cmd.as_str() {
            "load_pool" => Ok(Request::LoadPool {
                pool: string_field(&value, "pool")?,
                scores: Vec::<f64>::from_json(value.require("scores")?)?,
                predictions: Vec::<bool>::from_json(value.require("predictions")?)?,
            }),
            "create_session" => Ok(Request::CreateSession {
                session: string_field(&value, "session")?,
                pool: string_field(&value, "pool")?,
                seed: value.require("seed")?.as_u64()?,
                method: match value.get("method") {
                    // Surface the unknown-method message as a structured
                    // protocol error rather than a generic JSON one.
                    Some(method) => SamplerMethod::parse(method.as_str()?)
                        .map_err(|e| EngineError::Protocol(e.to_string()))?,
                    None => SamplerMethod::Oasis,
                },
                config: match value.get("config") {
                    Some(config) => OasisConfig::from_json(config)?,
                    None => OasisConfig::default(),
                },
                shards: match value.get("shards") {
                    Some(shards) => {
                        let shards = shards.as_usize()?;
                        if shards == 0 {
                            return Err(EngineError::Protocol(
                                "shards must be at least 1".to_string(),
                            ));
                        }
                        Some(shards)
                    }
                    None => None,
                },
                truth: match value.get("truth") {
                    Some(truth) => Some(Vec::<bool>::from_json(truth)?),
                    None => None,
                },
                limits: SessionLimits {
                    lease_timeout_us: match value.get("lease_timeout_us") {
                        Some(timeout) => {
                            let timeout = timeout.as_u64()?;
                            if timeout == 0 {
                                return Err(EngineError::Protocol(
                                    "lease_timeout_us must be at least 1".to_string(),
                                ));
                            }
                            Some(timeout)
                        }
                        None => None,
                    },
                    max_pending: match value.get("max_pending") {
                        Some(cap) => {
                            let cap = cap.as_usize()?;
                            if cap == 0 {
                                return Err(EngineError::Protocol(
                                    "max_pending must be at least 1".to_string(),
                                ));
                            }
                            Some(cap)
                        }
                        None => None,
                    },
                },
            }),
            "propose" => Ok(Request::Propose {
                session: string_field(&value, "session")?,
                count: match value.get("count") {
                    Some(count) => bounded(count.as_usize()?, MAX_PROPOSE_COUNT, "count")?,
                    None => 1,
                },
            }),
            "label" => {
                let labels = value
                    .require("labels")?
                    .as_array()?
                    .iter()
                    .map(|entry| {
                        Ok::<_, EngineError>((
                            entry.require("ticket")?.as_u64()?,
                            entry.require("label")?.as_bool()?,
                        ))
                    })
                    .collect::<EngineResult<Vec<_>>>()?;
                Ok(Request::Label {
                    session: string_field(&value, "session")?,
                    labels,
                })
            }
            "step" => Ok(Request::Step {
                session: string_field(&value, "session")?,
                steps: bounded(
                    value.require("steps")?.as_usize()?,
                    MAX_STEPS_PER_REQUEST,
                    "steps",
                )?,
            }),
            "run_budget" => Ok(Request::RunBudget {
                session: string_field(&value, "session")?,
                budget: value.require("budget")?.as_usize()?,
                max_steps: match value.get("max_steps") {
                    Some(max_steps) => {
                        bounded(max_steps.as_usize()?, MAX_STEPS_PER_REQUEST, "max_steps")?
                    }
                    None => 1_000_000,
                },
            }),
            "estimate" => Ok(Request::Estimate {
                session: string_field(&value, "session")?,
            }),
            "checkpoint" => Ok(Request::Checkpoint {
                session: string_field(&value, "session")?,
            }),
            "restore" => Ok(Request::Restore {
                session: string_field(&value, "session")?,
                checkpoint: Box::new(SessionCheckpoint::from_json(value.require("checkpoint")?)?),
            }),
            "checkpoint_to" => Ok(Request::CheckpointTo {
                session: string_field(&value, "session")?,
            }),
            "restore_from" => Ok(Request::RestoreFrom {
                session: string_field(&value, "session")?,
            }),
            "expire_leases" => Ok(Request::ExpireLeases {
                session: string_field(&value, "session")?,
            }),
            "auth" => Ok(Request::Auth {
                token: string_field(&value, "token")?,
            }),
            "sessions" => Ok(Request::Sessions),
            "delete_session" => Ok(Request::DeleteSession {
                session: string_field(&value, "session")?,
            }),
            "metrics" => Ok(Request::Metrics),
            "diagnostics" => Ok(Request::Diagnostics {
                session: string_field(&value, "session")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(EngineError::Protocol(format!("unknown cmd {other:?}"))),
        }
    }

    /// The wire name of this request's command (for the event log).
    pub fn verb(&self) -> &'static str {
        match self {
            Request::LoadPool { .. } => "load_pool",
            Request::CreateSession { .. } => "create_session",
            Request::Propose { .. } => "propose",
            Request::Label { .. } => "label",
            Request::Step { .. } => "step",
            Request::RunBudget { .. } => "run_budget",
            Request::Estimate { .. } => "estimate",
            Request::Checkpoint { .. } => "checkpoint",
            Request::Restore { .. } => "restore",
            Request::CheckpointTo { .. } => "checkpoint_to",
            Request::RestoreFrom { .. } => "restore_from",
            Request::ExpireLeases { .. } => "expire_leases",
            Request::Auth { .. } => "auth",
            Request::Sessions => "sessions",
            Request::DeleteSession { .. } => "delete_session",
            Request::Metrics => "metrics",
            Request::Diagnostics { .. } => "diagnostics",
            Request::Shutdown => "shutdown",
        }
    }

    /// The session this request addresses, if any (for the event log).
    pub fn session_id(&self) -> Option<&str> {
        match self {
            Request::CreateSession { session, .. }
            | Request::Propose { session, .. }
            | Request::Label { session, .. }
            | Request::Step { session, .. }
            | Request::RunBudget { session, .. }
            | Request::Estimate { session }
            | Request::Checkpoint { session }
            | Request::Restore { session, .. }
            | Request::CheckpointTo { session }
            | Request::RestoreFrom { session }
            | Request::ExpireLeases { session }
            | Request::DeleteSession { session }
            | Request::Diagnostics { session } => Some(session),
            Request::LoadPool { .. }
            | Request::Auth { .. }
            | Request::Sessions
            | Request::Metrics
            | Request::Shutdown => None,
        }
    }
}

/// The outcome of dispatching one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// The response object to write back (always has an `"ok"` field).
    pub response: Json,
    /// Whether the server should stop after responding (`shutdown`).
    pub shutdown: bool,
}

fn ok_response() -> Json {
    let mut obj = Json::object();
    obj.set("ok", Json::Bool(true));
    obj
}

/// Render an error as a protocol response line.  The `kind` tag gives
/// untrusted clients a stable taxonomy to branch on (retry `store_transient`
/// and `throttled`, re-authenticate on `unauthorized`, back off on
/// `backpressure`) without parsing the human-readable message.
pub fn error_response(error: &EngineError) -> Json {
    let mut obj = Json::object();
    obj.set("ok", Json::Bool(false));
    obj.set("error", Json::String(error.to_string()));
    obj.set("kind", Json::String(error.kind().to_string()));
    obj
}

fn estimate_response(session: &Session) -> Json {
    let mut obj = ok_response();
    obj.set("session", Json::String(session.id().to_string()));
    obj.set("method", session.method().to_json());
    obj.set("estimate", session.estimate().to_json());
    // `null` while the interval is undefined (too few observations) — or
    // while the variance history is incomplete; `variance_tracked` lets
    // clients tell the two apart.
    obj.set(
        "confidence_interval",
        match session.confidence_interval(0.95) {
            Some(interval) => interval.to_json(),
            None => Json::Null,
        },
    );
    obj.set("variance_tracked", Json::Bool(session.variance_tracked()));
    obj.set("labels_consumed", session.labels_consumed().to_json());
    obj.set("pending", session.pending_count().to_json());
    obj
}

fn tickets_response(session: &Session, tickets: &[Ticket]) -> Json {
    let mut obj = ok_response();
    obj.set("session", Json::String(session.id().to_string()));
    obj.set("proposals", tickets.to_vec().to_json());
    obj.set("pending", session.pending_count().to_json());
    obj
}

/// Execute one parsed request against the engine.
pub fn dispatch(engine: &Engine, request: Request) -> Dispatch {
    let outcome = apply(engine, request);
    match outcome {
        Ok(dispatch) => dispatch,
        Err(error) => Dispatch {
            response: error_response(&error),
            shutdown: false,
        },
    }
}

fn apply(engine: &Engine, request: Request) -> EngineResult<Dispatch> {
    let response = match request {
        Request::LoadPool {
            pool,
            scores,
            predictions,
        } => {
            let len = scores.len();
            engine.load_pool(&pool, ScoredPool::new(scores, predictions)?)?;
            let mut obj = ok_response();
            obj.set("pool", Json::String(pool));
            obj.set("len", len.to_json());
            obj
        }
        Request::CreateSession {
            session,
            pool,
            seed,
            method,
            config,
            shards,
            truth,
            limits,
        } => {
            let source = match truth {
                Some(truth) => LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
                None => {
                    let pool_len = engine.pool(&pool)?.len();
                    LabelSource::external(pool_len)
                }
            };
            engine.create_session_with_limits(
                &session, &pool, method, config, shards, seed, source, limits,
            )?;
            let mut obj = ok_response();
            obj.set("session", Json::String(session));
            obj.set("method", method.to_json());
            obj.set("seed", seed.to_json());
            if let Some(shards) = shards {
                obj.set("shards", shards.to_json());
            }
            if let Some(timeout) = limits.lease_timeout_us {
                obj.set("lease_timeout_us", timeout.to_json());
            }
            if let Some(cap) = limits.max_pending {
                obj.set("max_pending", cap.to_json());
            }
            obj
        }
        // Every mutating arm below logs its request to the write-ahead log
        // *after* taking the session lock (so sequence numbers match
        // application order) and *before* mutating (so a crash mid-request
        // replays deterministically — see `crate::wal`).  Each arm also
        // times the mutation into a per-method latency histogram
        // (`"<verb>.<method>"`) and bumps the matching global counter.
        Request::Propose { session, count } => {
            let timer = engine.metrics().timer();
            let handle = engine.session(&session)?;
            let mut guard = handle.lock();
            // The lease clock is read — and WAL-logged — only for sessions
            // with a configured lease timeout, so lease-free sessions keep
            // byte-identical WAL lines, checkpoints, and responses.
            let now_us = guard
                .limits()
                .lease_timeout_us
                .is_some()
                .then(|| engine.lease_now());
            engine.log_wal(&session, WalEntry::Propose { count, now_us })?;
            let expired = match now_us {
                Some(now) => guard.expire_leases(now),
                None => Vec::new(),
            };
            if !expired.is_empty() {
                engine
                    .metrics()
                    .add(Counter::LeaseExpiry, expired.len() as u64);
            }
            let tickets = guard.propose(count)?;
            engine.metrics().add(Counter::Propose, tickets.len() as u64);
            if guard.shard_count() > 1 {
                engine
                    .metrics()
                    .add(Counter::ShardRoute, tickets.len() as u64);
            }
            engine
                .metrics()
                .record(&format!("propose.{}", guard.method().as_str()), timer);
            let mut obj = tickets_response(&guard, &tickets);
            if !expired.is_empty() {
                obj.set("expired", expired.to_json());
            }
            obj
        }
        Request::Label { session, labels } => {
            let timer = engine.metrics().timer();
            let handle = engine.session(&session)?;
            let mut guard = handle.lock();
            engine.log_wal(
                &session,
                WalEntry::Label {
                    labels: labels.clone(),
                },
            )?;
            let applied = guard.apply_labels(&labels)?;
            engine.metrics().add(Counter::Label, applied as u64);
            engine
                .metrics()
                .record(&format!("label.{}", guard.method().as_str()), timer);
            let mut obj = estimate_response(&guard);
            obj.set("applied", applied.to_json());
            obj
        }
        Request::Step { session, steps } => {
            let timer = engine.metrics().timer();
            let handle = engine.session(&session)?;
            let mut guard = handle.lock();
            engine.log_wal(&session, WalEntry::Step { steps })?;
            guard.step(steps)?;
            engine.metrics().add(Counter::Step, steps as u64);
            if guard.shard_count() > 1 {
                engine.metrics().add(Counter::ShardRoute, steps as u64);
            }
            engine
                .metrics()
                .record(&format!("step.{}", guard.method().as_str()), timer);
            estimate_response(&guard)
        }
        Request::RunBudget {
            session,
            budget,
            max_steps,
        } => {
            let timer = engine.metrics().timer();
            let handle = engine.session(&session)?;
            let mut guard = handle.lock();
            engine.log_wal(
                &session,
                WalEntry::RunBudget {
                    label_budget: budget,
                    max_steps,
                },
            )?;
            let before = guard.estimate().iterations;
            let estimate = guard.run_until_budget(budget, max_steps)?;
            engine.metrics().incr(Counter::RunBudget);
            if guard.shard_count() > 1 {
                engine
                    .metrics()
                    .add(Counter::ShardRoute, (estimate.iterations - before) as u64);
            }
            engine
                .metrics()
                .record(&format!("run_budget.{}", guard.method().as_str()), timer);
            estimate_response(&guard)
        }
        Request::Estimate { session } => {
            let handle = engine.session(&session)?;
            let guard = handle.lock();
            estimate_response(&guard)
        }
        Request::Checkpoint { session } => {
            let handle = engine.session(&session)?;
            let guard = handle.lock();
            let mut obj = ok_response();
            obj.set("session", Json::String(session));
            obj.set("checkpoint", guard.checkpoint().to_json());
            obj
        }
        Request::Restore {
            session,
            checkpoint,
        } => {
            engine.restore_session(&session, *checkpoint)?;
            let mut obj = ok_response();
            obj.set("session", Json::String(session));
            obj.set("restored", Json::Bool(true));
            obj
        }
        Request::CheckpointTo { session } => {
            let wal_seq = engine.checkpoint_to(&session)?;
            let mut obj = ok_response();
            obj.set("session", Json::String(session));
            obj.set("wal_seq", wal_seq.to_json());
            obj
        }
        Request::RestoreFrom { session } => {
            let report = engine.restore_from(&session)?;
            let mut obj = ok_response();
            obj.set("session", Json::String(session));
            obj.set("restored", Json::Bool(true));
            obj.set("replayed", report.replayed.to_json());
            if report.truncated_tail {
                obj.set("wal_truncated", Json::Bool(true));
            }
            obj
        }
        Request::ExpireLeases { session } => {
            let handle = engine.session(&session)?;
            let mut guard = handle.lock();
            let now_us = engine.lease_now();
            engine.log_wal(&session, WalEntry::Expire { now_us })?;
            let expired = guard.expire_leases(now_us);
            engine
                .metrics()
                .add(Counter::LeaseExpiry, expired.len() as u64);
            let mut obj = ok_response();
            obj.set("session", Json::String(session));
            obj.set("expired", expired.to_json());
            obj.set("pending", guard.pending_count().to_json());
            obj
        }
        Request::Auth { .. } => {
            // Token checking happens in the server's connection guard before
            // dispatch; reaching this arm means no guard is configured.
            let mut obj = ok_response();
            obj.set("authenticated", Json::Bool(true));
            obj
        }
        Request::Sessions => {
            let mut obj = ok_response();
            obj.set(
                "sessions",
                Json::Array(engine.session_ids().into_iter().map(Json::String).collect()),
            );
            obj.set(
                "pools",
                Json::Array(engine.pool_ids().into_iter().map(Json::String).collect()),
            );
            let detail = engine
                .session_overviews()
                .into_iter()
                .map(|overview| {
                    let mut entry = Json::object();
                    entry.set("session", Json::String(overview.id));
                    if let Some(method) = overview.method {
                        entry.set("method", method.to_json());
                    }
                    if let Some(shards) = overview.shards {
                        entry.set("shards", shards.to_json());
                    }
                    if let Some(pending) = overview.pending {
                        entry.set("pending", pending.to_json());
                    }
                    if let Some(labels) = overview.labels_consumed {
                        entry.set("labels_consumed", labels.to_json());
                    }
                    entry.set("dirty", Json::Bool(overview.dirty));
                    entry.set("resident", Json::Bool(overview.resident));
                    entry
                })
                .collect();
            obj.set("detail", Json::Array(detail));
            obj
        }
        Request::DeleteSession { session } => {
            engine.delete_session(&session)?;
            let mut obj = ok_response();
            obj.set("session", Json::String(session));
            obj.set("deleted", Json::Bool(true));
            obj
        }
        Request::Metrics => {
            // Counters live in engine-process memory only: they reset on
            // restart and are *not* persisted through checkpoints or the
            // WAL (replay after `restore_from` re-counts the replayed
            // entries).  Clients wanting durable totals must scrape them.
            let mut obj = ok_response();
            obj.set("metrics", engine.metrics().snapshot());
            obj
        }
        Request::Diagnostics { session } => {
            let handle = engine.session(&session)?;
            let guard = handle.lock();
            let mut obj = ok_response();
            obj.set("session", Json::String(session));
            obj.set("method", guard.method().to_json());
            obj.set("labels_consumed", guard.labels_consumed().to_json());
            obj.set("diagnostics", guard.diagnostics().to_json());
            obj
        }
        Request::Shutdown => {
            let mut obj = ok_response();
            obj.set("shutdown", Json::Bool(true));
            return Ok(Dispatch {
                response: obj,
                shutdown: true,
            });
        }
    };
    Ok(Dispatch {
        response,
        shutdown: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_every_command() {
        let lines = [
            r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.1],"predictions":[true,false]}"#,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":42}"#,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"config":{"alpha":0.7},"truth":[true,false]}"#,
            r#"{"cmd":"propose","session":"s","count":3}"#,
            r#"{"cmd":"propose","session":"s"}"#,
            r#"{"cmd":"label","session":"s","labels":[{"ticket":0,"label":true}]}"#,
            r#"{"cmd":"step","session":"s","steps":10}"#,
            r#"{"cmd":"run_budget","session":"s","budget":50}"#,
            r#"{"cmd":"estimate","session":"s"}"#,
            r#"{"cmd":"checkpoint","session":"s"}"#,
            r#"{"cmd":"checkpoint_to","session":"s"}"#,
            r#"{"cmd":"restore_from","session":"s"}"#,
            r#"{"cmd":"expire_leases","session":"s"}"#,
            r#"{"cmd":"auth","token":"secret"}"#,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"lease_timeout_us":5000,"max_pending":4}"#,
            r#"{"cmd":"sessions"}"#,
            r#"{"cmd":"delete_session","session":"s"}"#,
            r#"{"cmd":"metrics"}"#,
            r#"{"cmd":"diagnostics","session":"s"}"#,
            r#"{"cmd":"shutdown"}"#,
        ];
        for line in lines {
            Request::parse(line).unwrap_or_else(|e| panic!("failed to parse {line}: {e}"));
        }
    }

    #[test]
    fn verb_and_session_id_cover_every_command() {
        let lines = [
            (r#"{"cmd":"propose","session":"s"}"#, "propose", Some("s")),
            (r#"{"cmd":"sessions"}"#, "sessions", None),
            (r#"{"cmd":"metrics"}"#, "metrics", None),
            (
                r#"{"cmd":"diagnostics","session":"d"}"#,
                "diagnostics",
                Some("d"),
            ),
            (r#"{"cmd":"shutdown"}"#, "shutdown", None),
        ];
        for (line, verb, session) in lines {
            let request = Request::parse(line).unwrap();
            assert_eq!(request.verb(), verb, "{line}");
            assert_eq!(request.session_id(), session, "{line}");
        }
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"cmd":"no_such"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"step","session":"s"}"#).is_err());
        assert!(Request::parse(r#"{"nocmd":1}"#).is_err());
    }

    #[test]
    fn create_session_parses_every_method_and_defaults_to_oasis() {
        for method in SamplerMethod::ALL {
            let line = format!(
                r#"{{"cmd":"create_session","session":"s","pool":"p","seed":1,"method":"{}"}}"#,
                method.as_str()
            );
            match Request::parse(&line).unwrap() {
                Request::CreateSession { method: parsed, .. } => assert_eq!(parsed, method),
                other => panic!("unexpected parse {other:?}"),
            }
        }
        let line = r#"{"cmd":"create_session","session":"s","pool":"p","seed":1}"#;
        match Request::parse(line).unwrap() {
            Request::CreateSession { method, .. } => assert_eq!(method, SamplerMethod::Oasis),
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn unknown_method_is_a_structured_protocol_error() {
        let line = r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"method":"bogus"}"#;
        let err = Request::parse(line).unwrap_err();
        assert!(matches!(err, EngineError::Protocol(_)), "{err:?}");
        assert!(err.to_string().contains("bogus"), "{err}");
        // And over dispatch it renders as an ok:false response, so a client
        // typo never tears the connection down.
        let rendered = error_response(&err).render();
        assert!(rendered.contains(r#""ok":false"#));
        assert!(rendered.contains("bogus"));
    }

    #[test]
    fn duplicate_session_ids_return_a_structured_error() {
        let engine = Engine::new();
        let pool = Request::parse(
            r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.7,0.3,0.1],"predictions":[true,true,false,false]}"#,
        )
        .unwrap();
        assert!(dispatch(&engine, pool)
            .response
            .render()
            .contains(r#""ok":true"#));
        let create = r#"{"cmd":"create_session","session":"dup","pool":"p","seed":1,"config":{"strata_count":2}}"#;
        let first = dispatch(&engine, Request::parse(create).unwrap());
        assert!(first.response.render().contains(r#""ok":true"#));
        let second = dispatch(&engine, Request::parse(create).unwrap());
        assert!(!second.shutdown);
        let rendered = second.response.render();
        assert!(rendered.contains(r#""ok":false"#), "{rendered}");
        assert!(rendered.contains("already exists"), "{rendered}");
    }

    #[test]
    fn every_method_creates_steps_and_reports_over_dispatch() {
        let engine = Engine::new();
        let pool = Request::parse(
            r#"{"cmd":"load_pool","pool":"p","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1],"predictions":[true,true,true,true,false,false,false,false]}"#,
        )
        .unwrap();
        dispatch(&engine, pool);
        for method in SamplerMethod::ALL {
            let create = format!(
                r#"{{"cmd":"create_session","session":"{m}","pool":"p","seed":3,"method":"{m}","config":{{"strata_count":3}},"truth":[true,true,false,true,false,false,false,false]}}"#,
                m = method.as_str()
            );
            let response = dispatch(&engine, Request::parse(&create).unwrap()).response;
            let rendered = response.render();
            assert!(rendered.contains(r#""ok":true"#), "{rendered}");
            assert!(
                rendered.contains(&format!(r#""method":"{}""#, method.as_str())),
                "{rendered}"
            );
            let step = format!(
                r#"{{"cmd":"step","session":"{}","steps":30}}"#,
                method.as_str()
            );
            let rendered = dispatch(&engine, Request::parse(&step).unwrap())
                .response
                .render();
            assert!(rendered.contains(r#""ok":true"#), "{method}: {rendered}");
            assert!(rendered.contains(r#""f_measure""#), "{method}: {rendered}");
            assert!(
                rendered.contains(&format!(r#""method":"{}""#, method.as_str())),
                "{method}: {rendered}"
            );
        }
    }

    #[test]
    fn metrics_and_diagnostics_report_over_dispatch() {
        let engine = Engine::new();
        let pool = Request::parse(
            r#"{"cmd":"load_pool","pool":"p","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1],"predictions":[true,true,true,true,false,false,false,false]}"#,
        )
        .unwrap();
        dispatch(&engine, pool);
        let create = r#"{"cmd":"create_session","session":"s","pool":"p","seed":3,"config":{"strata_count":3},"truth":[true,true,false,true,false,false,false,false]}"#;
        dispatch(&engine, Request::parse(create).unwrap());
        dispatch(
            &engine,
            Request::parse(r#"{"cmd":"step","session":"s","steps":25}"#).unwrap(),
        );

        let rendered = dispatch(&engine, Request::Metrics).response.render();
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
        // Counters are u64s, so they render as decimal strings on the wire.
        assert!(rendered.contains(r#""step":"25""#), "{rendered}");
        assert!(rendered.contains(r#""latency_us""#), "{rendered}");
        assert!(rendered.contains(r#""step.oasis""#), "{rendered}");

        let rendered = dispatch(
            &engine,
            Request::parse(r#"{"cmd":"diagnostics","session":"s"}"#).unwrap(),
        )
        .response
        .render();
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
        assert!(rendered.contains(r#""method":"oasis""#), "{rendered}");
        assert!(
            rendered.contains(r#""effective_sample_size":"#),
            "{rendered}"
        );
        assert!(rendered.contains(r#""stratum_labels":["#), "{rendered}");
        assert!(rendered.contains(r#""instrumental":["#), "{rendered}");
    }

    #[test]
    fn dispatch_reports_errors_inline() {
        let engine = Engine::new();
        let request = Request::Estimate {
            session: "ghost".to_string(),
        };
        let dispatch = dispatch(&engine, request);
        assert!(!dispatch.shutdown);
        assert_eq!(dispatch.response.require("ok").unwrap(), &Json::Bool(false));
        assert!(dispatch
            .response
            .require("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("ghost"));
    }

    #[test]
    fn oversized_requests_are_rejected_at_parse_time() {
        // Absurd counts/steps must fail parsing instead of allocating or
        // spinning inside the engine.
        let huge = r#"{"cmd":"propose","session":"s","count":9007199254740992}"#;
        assert!(Request::parse(huge).is_err());
        let huge = r#"{"cmd":"step","session":"s","steps":9007199254740992}"#;
        assert!(Request::parse(huge).is_err());
        let huge = r#"{"cmd":"run_budget","session":"s","budget":1,"max_steps":9007199254740992}"#;
        assert!(Request::parse(huge).is_err());
        // The limits themselves are accepted.
        let ok = format!(r#"{{"cmd":"propose","session":"s","count":{MAX_PROPOSE_COUNT}}}"#);
        assert!(Request::parse(&ok).is_ok());
    }

    fn render(engine: &Engine, line: &str) -> String {
        dispatch(engine, Request::parse(line).unwrap())
            .response
            .render()
    }

    fn demo_engine() -> Engine {
        let engine = Engine::new();
        let rendered = render(
            &engine,
            r#"{"cmd":"load_pool","pool":"p","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1],"predictions":[true,true,true,true,false,false,false,false]}"#,
        );
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
        engine
    }

    #[test]
    fn estimate_reports_confidence_interval_and_variance_tracked() {
        let engine = demo_engine();
        render(
            &engine,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":3,"config":{"strata_count":3},"truth":[true,true,false,true,false,false,false,false]}"#,
        );
        // Before any labels the interval is undefined but tracking is on.
        let rendered = render(&engine, r#"{"cmd":"estimate","session":"s"}"#);
        assert!(
            rendered.contains(r#""confidence_interval":null"#),
            "{rendered}"
        );
        assert!(
            rendered.contains(r#""variance_tracked":true"#),
            "{rendered}"
        );
        // After enough steps the interval materialises with bounds.
        let rendered = render(&engine, r#"{"cmd":"step","session":"s","steps":40}"#);
        assert!(
            rendered.contains(r#""confidence_interval":{"#),
            "{rendered}"
        );
        assert!(rendered.contains(r#""lower":"#), "{rendered}");
        assert!(rendered.contains(r#""upper":"#), "{rendered}");
        assert!(
            rendered.contains(r#""variance_tracked":true"#),
            "{rendered}"
        );
    }

    #[test]
    fn pre_tracker_checkpoints_restore_with_variance_flagged_absent() {
        let engine = demo_engine();
        render(
            &engine,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":3,"config":{"strata_count":3},"truth":[true,true,false,true,false,false,false,false]}"#,
        );
        render(&engine, r#"{"cmd":"step","session":"s","steps":40}"#);
        let response = dispatch(
            &engine,
            Request::parse(r#"{"cmd":"checkpoint","session":"s"}"#).unwrap(),
        )
        .response;
        // Simulate a pre-tracker-serialization document: same checkpoint,
        // tracker key stripped.
        let mut checkpoint = response.require("checkpoint").unwrap().clone();
        if let Json::Object(entries) = &mut checkpoint {
            for (key, value) in entries.iter_mut() {
                if key == "sampler" {
                    value.remove("tracker");
                }
            }
        }
        let mut restore = Json::object();
        restore.set("cmd", Json::String("restore".to_string()));
        restore.set("session", Json::String("legacy".to_string()));
        restore.set("checkpoint", checkpoint);
        let rendered = render(&engine, &restore.render());
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");

        // The estimate still restores exactly, but the response flags the
        // missing variance history instead of silently reporting a zeroed
        // (or freshly restarted) interval.
        let rendered = render(&engine, r#"{"cmd":"estimate","session":"legacy"}"#);
        assert!(
            rendered.contains(r#""variance_tracked":false"#),
            "{rendered}"
        );
        assert!(
            rendered.contains(r#""confidence_interval":null"#),
            "{rendered}"
        );
        let original = render(&engine, r#"{"cmd":"estimate","session":"s"}"#);
        assert!(
            original.contains(r#""variance_tracked":true"#),
            "{original}"
        );
    }

    #[test]
    fn restore_with_mismatched_fingerprint_is_a_structured_error() {
        let engine = demo_engine();
        render(
            &engine,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":3,"config":{"strata_count":3},"truth":[true,true,false,true,false,false,false,false]}"#,
        );
        render(&engine, r#"{"cmd":"step","session":"s","steps":10}"#);
        let response = dispatch(
            &engine,
            Request::parse(r#"{"cmd":"checkpoint","session":"s"}"#).unwrap(),
        )
        .response;
        let mut checkpoint = response.require("checkpoint").unwrap().clone();
        checkpoint.set("pool_fingerprint", Json::String("1234".to_string()));
        let mut restore = Json::object();
        restore.set("cmd", Json::String("restore".to_string()));
        restore.set("session", Json::String("copy".to_string()));
        restore.set("checkpoint", checkpoint);
        let outcome = dispatch(&engine, Request::parse(&restore.render()).unwrap());
        assert!(!outcome.shutdown);
        let rendered = outcome.response.render();
        assert!(rendered.contains(r#""ok":false"#), "{rendered}");
        assert!(rendered.contains("checkpoint mismatch"), "{rendered}");
    }

    #[test]
    fn store_verbs_report_structured_errors_without_a_store() {
        let engine = demo_engine();
        for line in [
            r#"{"cmd":"checkpoint_to","session":"s"}"#,
            r#"{"cmd":"restore_from","session":"s"}"#,
        ] {
            let rendered = render(&engine, line);
            assert!(rendered.contains(r#""ok":false"#), "{rendered}");
            assert!(rendered.contains("store"), "{rendered}");
        }
    }

    #[test]
    fn sessions_response_carries_per_session_detail() {
        let engine = demo_engine();
        render(
            &engine,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":3,"method":"passive","config":{"strata_count":3},"truth":[true,true,false,true,false,false,false,false]}"#,
        );
        render(&engine, r#"{"cmd":"step","session":"s","steps":12}"#);
        let rendered = render(&engine, r#"{"cmd":"sessions"}"#);
        assert!(rendered.contains(r#""sessions":["s"]"#), "{rendered}");
        assert!(rendered.contains(r#""detail":[{"#), "{rendered}");
        assert!(rendered.contains(r#""method":"passive""#), "{rendered}");
        assert!(rendered.contains(r#""pending":0"#), "{rendered}");
        assert!(rendered.contains(r#""labels_consumed":"#), "{rendered}");
        assert!(rendered.contains(r#""dirty":true"#), "{rendered}");
        assert!(rendered.contains(r#""resident":true"#), "{rendered}");
    }

    #[test]
    fn zero_limits_are_protocol_errors() {
        let line =
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"lease_timeout_us":0}"#;
        let err = Request::parse(line).unwrap_err();
        assert!(matches!(err, EngineError::Protocol(_)), "{err:?}");
        let line = r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"max_pending":0}"#;
        let err = Request::parse(line).unwrap_err();
        assert!(matches!(err, EngineError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn error_responses_carry_a_kind_tag() {
        let rendered =
            error_response(&EngineError::Throttled("rate limit exceeded".to_string())).render();
        assert!(rendered.contains(r#""ok":false"#), "{rendered}");
        assert!(rendered.contains(r#""kind":"throttled""#), "{rendered}");
        let rendered = error_response(&EngineError::UnknownSession("s".to_string())).render();
        assert!(
            rendered.contains(r#""kind":"unknown_session""#),
            "{rendered}"
        );
    }

    #[test]
    fn lease_timeouts_expire_stale_tickets_over_dispatch() {
        use crate::metrics::ManualClock;
        use std::sync::Arc;
        let clock = Arc::new(ManualClock::new());
        let engine = Engine::new().with_lease_clock(Arc::clone(&clock) as _);
        render(
            &engine,
            r#"{"cmd":"load_pool","pool":"p","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1],"predictions":[true,true,true,true,false,false,false,false]}"#,
        );
        render(
            &engine,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":3,"config":{"strata_count":3},"lease_timeout_us":1000}"#,
        );
        let rendered = render(&engine, r#"{"cmd":"propose","session":"s","count":2}"#);
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
        assert!(!rendered.contains(r#""expired""#), "{rendered}");

        // Let the lease lapse: the next propose reclaims both tickets.
        clock.advance(5_000);
        let rendered = render(&engine, r#"{"cmd":"propose","session":"s","count":1}"#);
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
        // Ticket ids are u64s, so they render as decimal strings.
        assert!(rendered.contains(r#""expired":["0","1"]"#), "{rendered}");
        assert!(rendered.contains(r#""pending":1"#), "{rendered}");
        // A label against an expired ticket is rejected.
        let rendered = render(
            &engine,
            r#"{"cmd":"label","session":"s","labels":[{"ticket":0,"label":true}]}"#,
        );
        assert!(rendered.contains(r#""ok":false"#), "{rendered}");
        assert!(
            rendered.contains(r#""kind":"unknown_ticket""#),
            "{rendered}"
        );
        // Metrics saw the expiries.
        let rendered = render(&engine, r#"{"cmd":"metrics"}"#);
        assert!(rendered.contains(r#""lease_expiry":"2""#), "{rendered}");
    }

    #[test]
    fn explicit_expire_leases_sweeps_without_a_propose() {
        use crate::metrics::ManualClock;
        use std::sync::Arc;
        let clock = Arc::new(ManualClock::new());
        let engine = Engine::new().with_lease_clock(Arc::clone(&clock) as _);
        render(
            &engine,
            r#"{"cmd":"load_pool","pool":"p","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1],"predictions":[true,true,true,true,false,false,false,false]}"#,
        );
        render(
            &engine,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":3,"config":{"strata_count":3},"lease_timeout_us":1000}"#,
        );
        render(&engine, r#"{"cmd":"propose","session":"s","count":3}"#);
        clock.advance(10_000);
        let rendered = render(&engine, r#"{"cmd":"expire_leases","session":"s"}"#);
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
        assert!(
            rendered.contains(r#""expired":["0","1","2"]"#),
            "{rendered}"
        );
        assert!(rendered.contains(r#""pending":0"#), "{rendered}");
    }

    #[test]
    fn max_pending_rejects_with_backpressure() {
        let engine = demo_engine();
        render(
            &engine,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":3,"config":{"strata_count":3},"max_pending":2}"#,
        );
        let rendered = render(&engine, r#"{"cmd":"propose","session":"s","count":2}"#);
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
        let rendered = render(&engine, r#"{"cmd":"propose","session":"s","count":1}"#);
        assert!(rendered.contains(r#""ok":false"#), "{rendered}");
        assert!(rendered.contains(r#""kind":"backpressure""#), "{rendered}");
        // Labelling drains the queue and proposing works again.
        let rendered = render(
            &engine,
            r#"{"cmd":"label","session":"s","labels":[{"ticket":0,"label":true},{"ticket":1,"label":false}]}"#,
        );
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
        let rendered = render(&engine, r#"{"cmd":"propose","session":"s","count":2}"#);
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
    }

    #[test]
    fn auth_is_an_accepted_noop_without_a_guard() {
        let engine = Engine::new();
        let rendered = render(&engine, r#"{"cmd":"auth","token":"anything"}"#);
        assert!(rendered.contains(r#""ok":true"#), "{rendered}");
        assert!(rendered.contains(r#""authenticated":true"#), "{rendered}");
    }

    #[test]
    fn config_defaults_apply_when_omitted() {
        let request =
            Request::parse(r#"{"cmd":"create_session","session":"s","pool":"p","seed":7}"#)
                .unwrap();
        match request {
            Request::CreateSession { config, truth, .. } => {
                assert_eq!(config, OasisConfig::default());
                assert!(truth.is_none());
            }
            other => panic!("unexpected parse {other:?}"),
        }
    }
}
