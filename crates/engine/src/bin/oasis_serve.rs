//! `oasis-serve` — the OASIS evaluation engine behind a line protocol.
//!
//! Speaks line-delimited JSON (one request object per line, one response
//! object per line; see `oasis_engine::protocol` for the command table).
//!
//! Usage:
//!
//! ```text
//! oasis-serve                     # serve stdin/stdout (scriptable, CI-friendly)
//! oasis-serve --tcp 0.0.0.0:7171  # serve TCP, thread per connection
//! oasis-serve --tcp 0.0.0.0:7171 --evented  # single-threaded epoll reactor
//!                                 # (Linux; scales to thousands of connections)
//! oasis-serve --store DIR         # durable sessions: checkpoints + WAL in DIR
//! oasis-serve --store DIR --max-resident 64   # LRU-evict idle sessions to DIR
//! oasis-serve --log-json          # JSONL events on stderr, one per request
//! oasis-serve --auth-token TOKEN  # require {"cmd":"auth","token":TOKEN} first
//! oasis-serve --rate-limit N      # cap each session at N requests/second
//! ```

use oasis_engine::server::{serve_lines_guarded, serve_tcp_guarded};
use oasis_engine::{ClientPolicy, Engine, EventLog, FsCheckpointStore, LogFormat};
use std::io::{BufReader, Write as _};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "oasis-serve — evaluation engine speaking line-delimited JSON\n\n\
             USAGE:\n  oasis-serve                serve stdin/stdout\n  \
             oasis-serve --tcp ADDR     serve TCP on ADDR (e.g. 127.0.0.1:7171)\n  \
             oasis-serve --tcp ADDR --evented   single-threaded epoll reactor\n\
             \x20                            (Linux only; same wire protocol, scales\n\
             \x20                            to thousands of concurrent connections)\n  \
             oasis-serve --store DIR    durable sessions: checkpoints + write-ahead\n\
             \x20                            log in DIR, replayed across restarts\n  \
             oasis-serve --max-resident N   with --store: LRU-evict idle sessions\n  \
             oasis-serve --log-json     structured JSONL events on stderr (one per\n\
             \x20                            request: verb, session, latency, outcome)\n  \
             oasis-serve --auth-token TOKEN   reject requests until the connection\n\
             \x20                            sends {{\"cmd\":\"auth\",\"token\":TOKEN}}\n  \
             oasis-serve --rate-limit N per-session request cap (N per second);\n\
             \x20                            excess gets a structured \"throttled\" error\n\n\
             Commands: load_pool, create_session, propose, label, step,\n\
             run_budget, estimate, checkpoint, restore, checkpoint_to,\n\
             restore_from, expire_leases, auth, sessions, delete_session,\n\
             metrics, diagnostics, shutdown.\n\n\
             create_session's optional \"method\" field selects the sampler:\n\
             \"oasis\" (default), \"passive\", \"importance\", \"stratified\".\n\
             Its optional \"lease_timeout_us\" and \"max_pending\" fields bound\n\
             outstanding propose tickets (see the protocol docs)."
        );
        return;
    }

    // The log format is resolved before strict parsing so even usage errors
    // flow through the structured log when --log-json is given.
    let format = if args.iter().any(|a| a == "--log-json") {
        LogFormat::Json
    } else {
        LogFormat::Text
    };
    let log = EventLog::stderr(format);
    let usage_error = |message: &str| -> ! {
        log.message(message);
        std::process::exit(2);
    };

    // Strict argument parsing: a typo'd flag must not silently fall back to
    // stdio mode (which would sit blocked on stdin with no diagnostic).
    let mut tcp_addr: Option<String> = None;
    let mut evented = false;
    let mut store_dir: Option<String> = None;
    let mut max_resident: Option<usize> = None;
    let mut auth_token: Option<String> = None;
    let mut rate_limit: Option<u64> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--log-json" => {}
            "--tcp" => match rest.next() {
                Some(addr) => tcp_addr = Some(addr.clone()),
                None => usage_error("--tcp requires an address (e.g. --tcp 127.0.0.1:7171)"),
            },
            "--evented" => evented = true,
            "--store" => match rest.next() {
                Some(dir) => store_dir = Some(dir.clone()),
                None => usage_error("--store requires a directory path"),
            },
            "--max-resident" => match rest.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => max_resident = Some(n),
                _ => usage_error("--max-resident requires a positive integer"),
            },
            "--auth-token" => match rest.next() {
                Some(token) if !token.is_empty() => auth_token = Some(token.clone()),
                _ => usage_error("--auth-token requires a non-empty token"),
            },
            "--rate-limit" => match rest.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n > 0 => rate_limit = Some(n),
                _ => usage_error("--rate-limit requires a positive integer (requests/second)"),
            },
            other => usage_error(&format!("unknown argument {other:?} (try --help)")),
        }
    }
    if max_resident.is_some() && store_dir.is_none() {
        usage_error("--max-resident requires --store (evicted sessions need a store)");
    }
    if evented && tcp_addr.is_none() {
        usage_error("--evented requires --tcp (the reactor serves TCP connections)");
    }

    let policy = if auth_token.is_some() || rate_limit.is_some() {
        let mut policy = ClientPolicy::new();
        if let Some(token) = auth_token {
            log.message("auth token required");
            policy = policy.with_auth_token(token);
        }
        if let Some(rate) = rate_limit {
            log.message(&format!("rate limit: {rate} requests/second per session"));
            policy = policy.with_rate_limit(rate);
        }
        Some(policy)
    } else {
        None
    };

    let mut engine = Engine::new();
    if let Some(dir) = store_dir {
        match FsCheckpointStore::open(&dir) {
            Ok(store) => {
                log.message(&format!("durable store at {dir}"));
                engine = engine.with_store(Arc::new(store));
            }
            Err(error) => {
                log.message(&format!("cannot open store: {error}"));
                std::process::exit(1);
            }
        }
    }
    if let Some(cap) = max_resident {
        engine = engine.with_max_resident(cap);
    }
    let outcome = match tcp_addr {
        Some(addr) if evented => {
            log.message(&format!("listening on {addr} (evented)"));
            serve_evented(&engine, &addr, &log, policy.as_ref())
        }
        Some(addr) => {
            log.message(&format!("listening on {addr}"));
            serve_tcp_guarded(&engine, &addr, Some(&log), policy.as_ref())
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut writer = stdout.lock();
            let served = serve_lines_guarded(
                &engine,
                BufReader::new(stdin.lock()),
                &mut writer,
                Some(&log),
                policy.as_ref(),
            );
            writer.flush().and(served.map(|_| ()))
        }
    };

    if let Err(error) = outcome {
        log.message(&format!("transport error: {error}"));
        std::process::exit(1);
    }
}

/// The epoll reactor is Linux-only; elsewhere `--evented` is a clean error
/// rather than a compile failure.
#[cfg(target_os = "linux")]
fn serve_evented(
    engine: &Engine,
    addr: &str,
    log: &EventLog,
    policy: Option<&ClientPolicy>,
) -> std::io::Result<()> {
    oasis_engine::serve_tcp_evented_guarded(engine, addr, Some(log), policy)
}

#[cfg(not(target_os = "linux"))]
fn serve_evented(
    _engine: &Engine,
    _addr: &str,
    _log: &EventLog,
    _policy: Option<&ClientPolicy>,
) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--evented requires Linux (epoll)",
    ))
}
