//! Engine-wide observability: atomic counters and log-bucketed latency
//! histograms behind a [`MetricsRegistry`].
//!
//! Every hot path of the engine is instrumented — the per-method protocol
//! verbs (`propose`/`label`/`step`/`run_budget`), checkpoint write/restore,
//! WAL append/replay, and store eviction/rehydration.  The registry is
//! deliberately boring: counters are lock-free [`AtomicU64`]s, histograms
//! live in one `parking_lot` mutex keyed by operation name, and the whole
//! thing snapshots to a single JSON object for the `metrics` protocol verb.
//!
//! Time comes from a [`Clock`] so tests can drive a [`ManualClock`]
//! deterministically: the estimate/CI goldens stay bit-stable because no
//! wall-clock value ever feeds the samplers, and the metrics wire tests pin
//! exact histogram contents by advancing the manual clock themselves.
//!
//! A registry built with [`MetricsRegistry::disabled`] turns every record
//! into an early-returning no-op; the `engine_throughput` bench compares an
//! instrumented engine against a disabled one to bound the overhead.

use parking_lot::Mutex;
use serde::json::{Json, ToJson};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of monotonic microseconds.
///
/// The engine never interprets the absolute value — only differences — so
/// any non-decreasing counter works.  Production uses [`MonotonicClock`];
/// tests use [`ManualClock`] to make latency histograms exactly
/// reproducible.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Microseconds since an arbitrary fixed origin.  Must never decrease.
    fn now_micros(&self) -> u64;
}

/// Wall-clock-independent monotonic time via [`std::time::Instant`],
/// anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock anchored at "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A deterministic clock for tests: time only moves when the test says so.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advance the clock by `micros`.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

/// The engine's named event counters.
///
/// The wire names (see [`Counter::as_str`]) are the keys of the `counters`
/// object in a [`MetricsRegistry::snapshot`]; they are a stable part of the
/// protocol surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Proposals drawn (individual tickets, across all sessions).
    Propose,
    /// Labels applied.
    Label,
    /// Sampler steps run (propose→label round trips via `step`).
    Step,
    /// `run_budget` requests served.
    RunBudget,
    /// Checkpoints written (durable store writes, including evictions).
    CheckpointWrite,
    /// Checkpoints restored (explicit restores and rehydrations).
    CheckpointRestore,
    /// WAL records appended.
    WalAppend,
    /// WAL records replayed during rehydration.
    WalReplay,
    /// Sessions evicted by the LRU resident cap.
    Eviction,
    /// Sessions rehydrated from the store.
    Rehydration,
    /// Sessions created (or restored) with a sharded pool.
    ShardedSession,
    /// Proposals routed through a shard of a sharded session (each one a
    /// Fenwick-tree draw over the shard masses).
    ShardRoute,
    /// Pending tickets dropped because their propose lease expired.
    LeaseExpiry,
    /// Requests rejected by a per-session rate limit.
    Throttle,
    /// Store writes retried after a transient fault.
    RetriedWrite,
    /// Faults injected by a scripted [`crate::fault::FaultyStore`].
    FaultInjected,
    /// TCP connections accepted (both serving paths).
    Connection,
    /// Request lines rejected for exceeding the per-line byte cap.
    LineTooLong,
    /// `accept()` failures answered with a bounded backoff instead of a
    /// hot retry loop (EMFILE/ENFILE under fd pressure).
    AcceptRetry,
}

impl Counter {
    /// Every counter, in wire order.
    pub const ALL: [Counter; 19] = [
        Counter::Propose,
        Counter::Label,
        Counter::Step,
        Counter::RunBudget,
        Counter::CheckpointWrite,
        Counter::CheckpointRestore,
        Counter::WalAppend,
        Counter::WalReplay,
        Counter::Eviction,
        Counter::Rehydration,
        Counter::ShardedSession,
        Counter::ShardRoute,
        Counter::LeaseExpiry,
        Counter::Throttle,
        Counter::RetriedWrite,
        Counter::FaultInjected,
        Counter::Connection,
        Counter::LineTooLong,
        Counter::AcceptRetry,
    ];

    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Counter::Propose => "propose",
            Counter::Label => "label",
            Counter::Step => "step",
            Counter::RunBudget => "run_budget",
            Counter::CheckpointWrite => "checkpoint_write",
            Counter::CheckpointRestore => "checkpoint_restore",
            Counter::WalAppend => "wal_append",
            Counter::WalReplay => "wal_replay",
            Counter::Eviction => "eviction",
            Counter::Rehydration => "rehydration",
            Counter::ShardedSession => "sharded_session",
            Counter::ShardRoute => "shard_route",
            Counter::LeaseExpiry => "lease_expiry",
            Counter::Throttle => "throttle",
            Counter::RetriedWrite => "retried_write",
            Counter::FaultInjected => "fault_injected",
            Counter::Connection => "connection",
            Counter::LineTooLong => "line_too_long",
            Counter::AcceptRetry => "accept_retry",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Number of histogram buckets: one per power of two of the microsecond
/// range, so bucket `i > 0` holds values in `[2^(i-1), 2^i - 1]` and the
/// relative quantile error is bounded by 2× (see
/// [`LatencyHistogram::quantile`]).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log-bucketed latency histogram with exact count/sum/max side-channels.
///
/// Values are microseconds.  Buckets double in width, so any quantile read
/// off the bucket boundaries is within a factor of two of the true order
/// statistic — plenty for "is p99 a millisecond or a second" while keeping
/// the whole histogram 64 fixed slots, mergeable by element-wise addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// The bucket a value falls into: 0 holds only zero, bucket `i > 0`
    /// holds `[2^(i-1), 2^i - 1]`, and the last bucket absorbs the tail.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The largest value bucket `index` can hold (saturating at the top).
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            i if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Record one value (microseconds).
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another histogram into this one.  Element-wise addition, so the
    /// operation is associative and commutative — merging per-shard
    /// histograms in any order yields the same result.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) read off the bucket boundaries,
    /// clamped to the exact maximum.  Returns 0 for an empty histogram.
    ///
    /// Guarantee: for a true quantile value `t < 2^62`, the returned
    /// estimate `e` satisfies `t ≤ e ≤ 2·t` (and `e = 0` when `t = 0`),
    /// because the estimate is the upper bound of `t`'s bucket and buckets
    /// double.  The saturating tail bucket spans `[2^62, u64::MAX]` — about
    /// 146 millennia in microseconds — where the estimate is still bounded
    /// by the exact maximum but the 2× factor no longer applies.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Wire form: exact count/sum/max plus the 2×-bounded p50/p95/p99.
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("count", self.count.to_json());
        obj.set("sum_us", self.sum.to_json());
        obj.set("max_us", self.max.to_json());
        obj.set("p50_us", self.quantile(0.50).to_json());
        obj.set("p95_us", self.quantile(0.95).to_json());
        obj.set("p99_us", self.quantile(0.99).to_json());
        obj
    }
}

/// A latency measurement in flight: the start timestamp, or nothing when
/// the registry is disabled (so the hot path never reads the clock).
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start_micros: Option<u64>,
}

/// The engine's metrics registry.
///
/// All methods take `&self` and are safe to call from any thread; counter
/// updates are lock-free and histogram updates take one short mutex.  A
/// disabled registry ([`MetricsRegistry::disabled`]) makes every operation
/// an early-returning no-op.
pub struct MetricsRegistry {
    enabled: bool,
    clock: Box<dyn Clock>,
    counters: [AtomicU64; Counter::ALL.len()],
    latencies: Mutex<BTreeMap<String, LatencyHistogram>>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.enabled)
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An enabled registry on the monotonic clock.
    pub fn new() -> Self {
        MetricsRegistry::with_clock(Box::new(MonotonicClock::new()))
    }

    /// An enabled registry on a caller-supplied clock (tests pass a
    /// [`ManualClock`] for bit-stable histograms).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        MetricsRegistry {
            enabled: true,
            clock,
            counters: Default::default(),
            latencies: Mutex::new(BTreeMap::new()),
        }
    }

    /// A registry whose every operation is a no-op — the uninstrumented
    /// baseline of the overhead bench.
    pub fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            clock: Box::new(ManualClock::new()),
            counters: Default::default(),
            latencies: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Add `n` to a counter.
    pub fn add(&self, counter: Counter, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Read a counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Start a latency measurement (a no-op token when disabled).
    pub fn timer(&self) -> Timer {
        Timer {
            start_micros: if self.enabled {
                Some(self.clock.now_micros())
            } else {
                None
            },
        }
    }

    /// Finish a latency measurement, folding the elapsed microseconds into
    /// the histogram named `key` (created on first use).
    pub fn record(&self, key: &str, timer: Timer) {
        let Some(start) = timer.start_micros else {
            return;
        };
        let elapsed = self.clock.now_micros().saturating_sub(start);
        let mut latencies = self.latencies.lock();
        latencies
            .entry(key.to_string())
            .or_default()
            .record(elapsed);
    }

    /// A copy of the histogram named `key`, if any value was ever recorded
    /// under it.
    pub fn histogram(&self, key: &str) -> Option<LatencyHistogram> {
        self.latencies.lock().get(key).cloned()
    }

    /// The full registry as one JSON object:
    ///
    /// ```json
    /// {"counters":{"propose":12,...},
    ///  "latency_us":{"propose.oasis":{"count":3,"sum_us":41,"max_us":20,
    ///                "p50_us":15,"p95_us":20,"p99_us":20},...}}
    /// ```
    ///
    /// Counters always carry every key (zeros included) so consumers can
    /// grep for a name without existence checks; histograms appear once
    /// something was recorded under them.  `BTreeMap` keeps key order
    /// deterministic.
    pub fn snapshot(&self) -> Json {
        let mut counters = Json::object();
        for counter in Counter::ALL {
            counters.set(counter.as_str(), self.counter(counter).to_json());
        }
        let mut latency = Json::object();
        for (key, histogram) in self.latencies.lock().iter() {
            latency.set(key, histogram.to_json());
        }
        let mut obj = Json::object();
        obj.set("counters", counters);
        obj.set("latency_us", latency);
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_double() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 63);
        assert_eq!(LatencyHistogram::bucket_upper_bound(0), 0);
        assert_eq!(LatencyHistogram::bucket_upper_bound(1), 1);
        assert_eq!(LatencyHistogram::bucket_upper_bound(2), 3);
        assert_eq!(LatencyHistogram::bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn histogram_tracks_exact_count_sum_max() {
        let mut h = LatencyHistogram::new();
        for v in [0, 1, 5, 5, 100, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 118);
        assert_eq!(h.max(), 100);
        assert_eq!(h.quantile(1.0), 100, "clamped to the exact max");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let registry = MetricsRegistry::disabled();
        assert!(!registry.enabled());
        registry.incr(Counter::Propose);
        let timer = registry.timer();
        registry.record("propose.oasis", timer);
        assert_eq!(registry.counter(Counter::Propose), 0);
        assert!(registry.histogram("propose.oasis").is_none());
    }

    #[test]
    fn manual_clock_gives_exact_latencies() {
        let clock = std::sync::Arc::new(ManualClock::new());
        // The registry owns a Box<dyn Clock>; share the Arc through a tiny
        // forwarding impl so the test can advance time from outside.
        #[derive(Debug)]
        struct Shared(std::sync::Arc<ManualClock>);
        impl Clock for Shared {
            fn now_micros(&self) -> u64 {
                self.0.now_micros()
            }
        }
        let registry = MetricsRegistry::with_clock(Box::new(Shared(clock.clone())));
        let timer = registry.timer();
        clock.advance(5);
        registry.record("step.passive", timer);
        let h = registry.histogram("step.passive").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 5);
        assert_eq!(h.max(), 5);
        assert_eq!(h.quantile(0.5), 5);
    }

    #[test]
    fn snapshot_always_lists_every_counter() {
        let registry = MetricsRegistry::new();
        registry.add(Counter::WalAppend, 3);
        let snapshot = registry.snapshot().render();
        for counter in Counter::ALL {
            assert!(
                snapshot.contains(&format!("\"{}\":", counter.as_str())),
                "{snapshot}"
            );
        }
        assert!(snapshot.contains("\"wal_append\":\"3\"") || snapshot.contains("\"wal_append\":3"));
    }
}
