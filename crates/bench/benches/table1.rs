//! Bench: regenerate Table 1 (dataset inventory) and measure its cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    // Print the reproduced table once so `cargo bench` output shows the rows.
    let table = experiments::table1::run(0.005, 2017);
    println!("\n{}", table.render());

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("generate_dataset_inventory_scale_0.005", |b| {
        b.iter(|| experiments::table1::run(0.005, 2017))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
