//! Minimal dense linear algebra helpers shared by the classifiers.

/// Dot product of two equally long slices.
///
/// # Panics
/// Panics (in debug builds) if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// `y ← y + alpha·x` (AXPY).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm.
pub fn norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// The logistic sigmoid `1 / (1 + e^{−x})`, numerically stable for large `|x|`.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Per-column means of a row-major feature matrix.
pub fn column_means(rows: &[Vec<f64>]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let cols = rows[0].len();
    let mut means = vec![0.0; cols];
    for row in rows {
        for (m, &v) in means.iter_mut().zip(row.iter()) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= rows.len() as f64;
    }
    means
}

/// Per-column standard deviations of a row-major feature matrix (population
/// variant; zero-variance columns report 1 so standardisation is a no-op).
pub fn column_stds(rows: &[Vec<f64>], means: &[f64]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let cols = rows[0].len();
    let mut variances = vec![0.0; cols];
    for row in rows {
        for ((v, &x), &m) in variances.iter_mut().zip(row.iter()).zip(means.iter()) {
            *v += (x - m) * (x - m);
        }
    }
    variances
        .iter_mut()
        .for_each(|v| *v = (*v / rows.len() as f64).sqrt());
    variances
        .into_iter()
        .map(|s| if s > 1e-12 { s } else { 1.0 })
        .collect()
}

/// A fitted feature standardiser (z-scoring), shared by the gradient-based
/// classifiers so raw similarity features on different scales train stably.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit on a feature matrix.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        let means = column_means(rows);
        let stds = column_stds(rows, &means);
        Standardizer { means, stds }
    }

    /// Transform one feature vector.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter())
            .zip(self.stds.iter())
            .map(|((&x, &m), &s)| (x - m) / s)
            .collect()
    }

    /// Number of features the standardiser was fit on.
    pub fn feature_count(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
    }

    #[test]
    fn sigmoid_is_stable_and_correct() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
        // symmetry: σ(−x) = 1 − σ(x)
        for x in [-5.0, -1.0, 0.3, 2.7] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn column_statistics() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0]];
        let means = column_means(&rows);
        assert_eq!(means, vec![2.0, 10.0]);
        let stds = column_stds(&rows, &means);
        assert!((stds[0] - 1.0).abs() < 1e-12);
        // zero-variance column maps to 1
        assert_eq!(stds[1], 1.0);
        assert!(column_means(&[]).is_empty());
        assert!(column_stds(&[], &[]).is_empty());
    }

    #[test]
    fn standardizer_round_trip() {
        let rows = vec![vec![0.0, 5.0], vec![2.0, 5.0], vec![4.0, 5.0]];
        let s = Standardizer::fit(&rows);
        assert_eq!(s.feature_count(), 2);
        let t = s.transform(&[2.0, 5.0]);
        assert!(t[0].abs() < 1e-12);
        assert!(t[1].abs() < 1e-12);
        let t = s.transform(&[4.0, 7.0]);
        assert!(t[0] > 0.0);
        assert_eq!(t[1], 2.0); // zero-variance column passes through shifted
    }
}
