//! The OASIS sampler — the paper's contribution (Algorithms 2 and 3).

use super::state::{EstimatorState, OasisState, SamplerMethod, SamplerState};
use super::{InteractiveSampler, Sampler, SamplerDiagnostics};
use crate::bayes::BetaBernoulliModel;
use crate::error::{Error, Result};
use crate::estimator::{AisEstimator, Estimate};
use crate::instrumental::{epsilon_greedy, stratified_optimal, stratified_optimal_mass};
use crate::pool::ScoredPool;
use crate::samplers::importance::logistic;
use crate::strata::{CsfStratifier, EqualSizeStratifier, Strata, Stratifier};
use rand::Rng;

/// Which stratification rule OASIS should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StratifierChoice {
    /// Cumulative-√F stratification (paper Algorithm 1) — the default.
    Csf,
    /// Equal-count strata in score order.
    EqualSize,
}

/// Configuration of the OASIS sampler.
///
/// Defaults follow the paper's experiments (Section 6.3): `α = ½`,
/// `ε = 10⁻³`, `K = 30`, `η = 2K`, prior decay enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct OasisConfig {
    /// F-measure weight `α ∈ [0, 1]`.
    pub alpha: f64,
    /// Greediness parameter `ε ∈ (0, 1]`; the fraction of proposal mass that
    /// always follows the underlying (uniform) distribution.
    pub epsilon: f64,
    /// Desired number of strata `K`.
    pub strata_count: usize,
    /// Prior strength `η > 0`.  `None` uses the paper's default `η = 2K`.
    pub prior_strength: Option<f64>,
    /// Whether to decay the prior with the per-stratum label count (Remark 4).
    pub decay_prior: bool,
    /// Decision threshold `τ` used to squash raw (non-probability) scores
    /// through the logistic function during initialisation.
    pub score_threshold: f64,
    /// Stratification rule.
    pub stratifier: StratifierChoice,
}

impl Default for OasisConfig {
    fn default() -> Self {
        OasisConfig {
            alpha: 0.5,
            epsilon: 1e-3,
            strata_count: 30,
            prior_strength: None,
            decay_prior: true,
            score_threshold: 0.0,
            stratifier: StratifierChoice::Csf,
        }
    }
}

impl OasisConfig {
    /// Set the F-measure weight α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Set the greediness parameter ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Set the desired number of strata K.
    pub fn with_strata_count(mut self, strata_count: usize) -> Self {
        self.strata_count = strata_count;
        self
    }

    /// Set the prior strength η explicitly (default is `2K`).
    pub fn with_prior_strength(mut self, eta: f64) -> Self {
        self.prior_strength = Some(eta);
        self
    }

    /// Enable or disable prior decay (Remark 4).
    pub fn with_prior_decay(mut self, decay: bool) -> Self {
        self.decay_prior = decay;
        self
    }

    /// Set the score threshold τ used when scores are not probabilities.
    pub fn with_score_threshold(mut self, tau: f64) -> Self {
        self.score_threshold = tau;
        self
    }

    /// Choose the stratification rule.
    pub fn with_stratifier(mut self, stratifier: StratifierChoice) -> Self {
        self.stratifier = stratifier;
        self
    }

    pub(super) fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.alpha) || self.alpha.is_nan() {
            return Err(Error::InvalidParameter {
                name: "alpha",
                message: format!("must be in [0, 1], got {}", self.alpha),
            });
        }
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err(Error::InvalidParameter {
                name: "epsilon",
                message: format!("must be in (0, 1], got {}", self.epsilon),
            });
        }
        if self.strata_count == 0 {
            return Err(Error::InvalidParameter {
                name: "strata_count",
                message: "must be at least 1".to_string(),
            });
        }
        if let Some(eta) = self.prior_strength {
            if eta <= 0.0 || !eta.is_finite() {
                return Err(Error::InvalidParameter {
                    name: "prior_strength",
                    message: format!("must be positive and finite, got {eta}"),
                });
            }
        }
        Ok(())
    }
}

/// The initial quantities produced by Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Initialisation {
    /// Initial guess of the per-stratum oracle probabilities `π̂⁽⁰⁾`.
    pub pi_guess: Vec<f64>,
    /// Initial guess of the F-measure `F̂⁽⁰⁾_α`.
    pub f_guess: f64,
}

/// Run Algorithm 2: derive `π̂⁽⁰⁾` and `F̂⁽⁰⁾` from the scores, predictions and
/// stratification.
pub fn initialise(pool: &ScoredPool, strata: &Strata, alpha: f64, tau: f64) -> Initialisation {
    let scores_are_probabilities = pool.scores_are_probabilities();
    // Lines 2–5: mean score per stratum, squashed to [0, 1] if necessary.
    let pi_guess: Vec<f64> = strata
        .mean_scores()
        .iter()
        .map(|&mean| {
            if scores_are_probabilities {
                mean.clamp(0.0, 1.0)
            } else {
                logistic(mean, tau)
            }
        })
        .collect();
    // Lines 6 & 8: F̂⁽⁰⁾ from the guessed probabilities and the known mean
    // predictions per stratum.
    let mut tp = 0.0;
    let mut predicted = 0.0;
    let mut actual = 0.0;
    for (k, &pi) in pi_guess.iter().enumerate() {
        let size = strata.size(k) as f64;
        let lambda = strata.mean_predictions()[k];
        tp += size * pi * lambda;
        predicted += size * lambda;
        actual += size * pi;
    }
    let denom = alpha * predicted + (1.0 - alpha) * actual;
    let f_guess = if denom > 0.0 {
        (tp / denom).clamp(0.0, 1.0)
    } else {
        0.5
    };
    Initialisation { pi_guess, f_guess }
}

/// A proposed oracle query: the output of [`OasisSampler::propose`], waiting
/// for a label.
///
/// This is the suspension point of the sampler's explicit state machine: a
/// driver (in-process loop, human annotation queue, remote evaluation
/// session) holds the proposal while the label is produced, then feeds it
/// back through [`OasisSampler::apply_label`].  The importance weight is
/// fixed at proposal time — it depends only on the instrumental distribution
/// used for the draw — so labels may arrive late or in batches without
/// changing the estimator's maths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proposal {
    /// Index of the proposed pool item.
    pub item: usize,
    /// The stratum the item was drawn from.
    pub stratum: usize,
    /// The ER system's predicted label for the item.
    pub prediction: bool,
    /// Importance weight `w_t = ω_k / v⁽ᵗ⁾_k` locked in at proposal time.
    pub weight: f64,
}

/// The OASIS adaptive importance sampler (paper Algorithm 3).
///
/// Each [`step`](Sampler::step):
/// 1. recomputes the ε-greedy stratified instrumental distribution `v⁽ᵗ⁾`
///    from the current posterior means `π̂⁽ᵗ⁻¹⁾` and F-measure estimate,
/// 2. draws a stratum from `v⁽ᵗ⁾` and an item uniformly within it,
/// 3. queries the oracle,
/// 4. updates the Beta–Bernoulli posterior (Eqn. 10) and the AIS estimator
///    (Eqn. 3) with importance weight `w_t = ω_k / v⁽ᵗ⁾_k`.
///
/// The loop is also exposed as an explicit state machine —
/// [`propose`](InteractiveSampler::propose) /
/// [`apply_label`](InteractiveSampler::apply_label) — so the oracle does not
/// have to be an in-process callback: a driver can suspend at the label
/// request and resume when labels arrive, possibly in batches
/// ([`apply_labels`](InteractiveSampler::apply_labels)).  [`Sampler::step`]
/// is the provided trait method running that state machine without
/// suspension, so the two code paths cannot drift apart.
#[derive(Debug, Clone)]
pub struct OasisSampler {
    config: OasisConfig,
    strata: Strata,
    model: BetaBernoulliModel,
    estimator: AisEstimator,
    initial_f_guess: f64,
    /// The instrumental distribution used at the most recent step.
    current_proposal: Vec<f64>,
    /// Reusable scratch for the cumulative proposal weights, so the per-step
    /// binary-search draw allocates nothing after the first step.  Transient:
    /// not part of [`SamplerState`].
    cdf_scratch: Vec<f64>,
    /// Whether the posterior has changed since `current_proposal` /
    /// `cdf_scratch` were computed.  The instrumental distribution is a pure
    /// function of the posterior and the running estimate, both of which
    /// move only on `apply_label`, so consecutive proposals without
    /// intervening labels reuse the cached CDF instead of paying the O(K)
    /// refit per draw.  Transient: not part of [`SamplerState`].
    proposal_dirty: bool,
    /// How many times the instrumental distribution (and its CDF) has been
    /// refit — the cache-miss count behind the batched-proposal win, exposed
    /// through [`InteractiveSampler::diagnostics`].  Serialized with the
    /// state so diagnostics stay stable across checkpoint/restore; note a
    /// restored sampler refits once on its next proposal (the cache itself
    /// is transient), which counts.
    cdf_rebuilds: u64,
}

impl OasisSampler {
    /// Build an OASIS sampler for `pool`: stratify, initialise (Algorithm 2),
    /// and set up the Bayesian model (Algorithm 3, line 1).
    pub fn new(pool: &ScoredPool, config: OasisConfig) -> Result<Self> {
        config.validate()?;
        let strata = match config.stratifier {
            StratifierChoice::Csf => CsfStratifier::new(config.strata_count).stratify(pool)?,
            StratifierChoice::EqualSize => {
                EqualSizeStratifier::new(config.strata_count).stratify(pool)?
            }
        };
        Self::with_strata(pool, strata, config)
    }

    /// Build an OASIS sampler with a pre-computed stratification (useful to
    /// share one stratification across repeated experiment runs).
    pub fn with_strata(pool: &ScoredPool, strata: Strata, config: OasisConfig) -> Result<Self> {
        config.validate()?;
        let init = initialise(pool, &strata, config.alpha, config.score_threshold);
        let eta = config.prior_strength.unwrap_or(2.0 * strata.len() as f64);
        let model = BetaBernoulliModel::from_prior_guess(&init.pi_guess, eta, config.decay_prior)?;
        let estimator = AisEstimator::new(config.alpha);
        let k = strata.len();
        Ok(OasisSampler {
            config,
            strata,
            model,
            estimator,
            initial_f_guess: init.f_guess,
            current_proposal: vec![1.0 / k as f64; k],
            cdf_scratch: Vec::new(),
            proposal_dirty: true,
            cdf_rebuilds: 0,
        })
    }

    /// The stratification in use.
    pub fn strata(&self) -> &Strata {
        &self.strata
    }

    /// The Bayesian oracle-probability model.
    pub fn model(&self) -> &BetaBernoulliModel {
        &self.model
    }

    /// Current posterior means `π̂⁽ᵗ⁾` over the strata.
    pub fn pi_estimates(&self) -> Vec<f64> {
        self.model.posterior_means()
    }

    /// The initial F-measure guess `F̂⁽⁰⁾` produced by Algorithm 2.
    pub fn initial_f_guess(&self) -> f64 {
        self.initial_f_guess
    }

    /// The configuration the sampler was built with.
    pub fn config(&self) -> &OasisConfig {
        &self.config
    }

    /// The ε-greedy instrumental distribution used at the most recent step
    /// (uniform over strata before the first step).
    pub fn current_proposal(&self) -> &[f64] {
        &self.current_proposal
    }

    /// The F-measure value fed into the instrumental distribution: the current
    /// AIS estimate if defined, otherwise the initial guess.
    fn working_f_estimate(&self) -> f64 {
        self.estimator
            .f_measure()
            .filter(|f| f.is_finite())
            .unwrap_or(self.initial_f_guess)
    }

    /// Compute the ε-greedy stratified proposal `v⁽ᵗ⁾` (Eqn. 12) from the
    /// current model state.
    pub fn compute_proposal(&self) -> Vec<f64> {
        let pi = self.model.posterior_means();
        let optimal = stratified_optimal(
            self.strata.weights(),
            self.strata.mean_predictions(),
            &pi,
            self.working_f_estimate(),
            self.config.alpha,
        );
        epsilon_greedy(self.strata.weights(), &optimal, self.config.epsilon)
    }

    /// Refresh the cached instrumental distribution and its cumulative
    /// weights if any label has arrived since they were last computed.
    fn refresh_proposal_cache(&mut self) {
        if self.proposal_dirty {
            // Line 3: v⁽ᵗ⁾ from Eqn. 12, plus its CDF in the reusable
            // scratch buffer (no allocation on the hot path).
            self.current_proposal = self.compute_proposal();
            super::fill_cumulative(&self.current_proposal, &mut self.cdf_scratch);
            self.proposal_dirty = false;
            self.cdf_rebuilds += 1;
        }
    }

    /// How many times the instrumental distribution and its CDF have been
    /// refit so far (the cache-miss count; see
    /// [`InteractiveSampler::propose_batch`] for why batches pay one).
    pub fn cdf_rebuilds(&self) -> u64 {
        self.cdf_rebuilds
    }

    /// Draw one proposal from the (already refreshed) cached distribution.
    fn draw_from_cache<R: Rng + ?Sized>(&self, pool: &ScoredPool, rng: &mut R) -> Proposal {
        debug_assert!(!self.proposal_dirty);
        // Line 4: draw a stratum — binary search over the cached CDF.
        let stratum = super::sample_from_cumulative(rng, &self.cdf_scratch);
        // Line 5: draw an item uniformly within the stratum.
        let members = self.strata.members(stratum);
        let item = members[rng.gen_range(0..members.len())];
        // Line 6: importance weight w_t = ω_k / v_k.
        let weight = self.strata.weights()[stratum] / self.current_proposal[stratum];
        Proposal {
            item,
            stratum,
            prediction: pool.prediction(item),
            weight,
        }
    }

    /// The AIS estimator's running sums — read by the sharded merge.
    pub(crate) fn estimator(&self) -> &AisEstimator {
        &self.estimator
    }

    /// Assemble a sampler from restored components; shared by
    /// [`OasisState::rebuild`].
    pub(super) fn from_parts(
        config: OasisConfig,
        strata: Strata,
        model: BetaBernoulliModel,
        estimator: AisEstimator,
        initial_f_guess: f64,
        current_proposal: Vec<f64>,
        cdf_rebuilds: u64,
    ) -> Result<Self> {
        config.validate()?;
        let k = strata.len();
        if model.strata_count() != k || current_proposal.len() != k {
            return Err(Error::InvalidParameter {
                name: "state",
                message: format!(
                    "inconsistent strata counts: strata {k}, model {}, proposal {}",
                    model.strata_count(),
                    current_proposal.len()
                ),
            });
        }
        Ok(OasisSampler {
            config,
            strata,
            model,
            estimator,
            initial_f_guess,
            current_proposal,
            cdf_scratch: Vec::new(),
            proposal_dirty: true,
            cdf_rebuilds,
        })
    }
}

impl InteractiveSampler for OasisSampler {
    /// Algorithm 3, lines 3–6: refresh the instrumental distribution (if any
    /// label arrived since the last refresh), draw a stratum and an item,
    /// and lock in the importance weight.
    fn propose<R: Rng + ?Sized>(&mut self, pool: &ScoredPool, rng: &mut R) -> Proposal {
        self.refresh_proposal_cache();
        self.draw_from_cache(pool, rng)
    }

    /// Batch form: one refresh of the instrumental distribution serves all
    /// `count` draws.  Because no labels can intervene inside the batch, the
    /// posterior — and therefore the distribution — is identical for every
    /// draw, so this produces the same proposals (bit-for-bit, same RNG
    /// stream) as calling `propose` `count` times while paying the O(K)
    /// distribution/CDF refit at most once.
    fn propose_batch<R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        rng: &mut R,
        count: usize,
    ) -> Vec<Proposal> {
        if count == 0 {
            return Vec::new();
        }
        self.refresh_proposal_cache();
        (0..count)
            .map(|_| self.draw_from_cache(pool, rng))
            .collect()
    }

    /// Algorithm 3, lines 9–11: fold an oracle label for a pending
    /// [`Proposal`] into the Beta–Bernoulli posterior (Eqn. 10) and the AIS
    /// estimator (Eqn. 3), invalidating the cached instrumental
    /// distribution.
    fn apply_label(&mut self, proposal: &Proposal, label: bool) {
        self.model.observe(proposal.stratum, label);
        self.estimator
            .observe(proposal.weight, proposal.prediction, label);
        self.proposal_dirty = true;
    }

    fn estimate(&self) -> Estimate {
        self.estimator.estimate()
    }

    /// The un-normalised total mass of the current stratified-optimal
    /// instrumental distribution — a pure function of the posterior and the
    /// running estimate, recomputed in O(K) without touching the cached
    /// proposal.  A sharded driver uses it to steer shard selection toward
    /// the shards whose strata currently want the most sampling effort.
    fn proposal_mass(&self) -> f64 {
        let pi = self.model.posterior_means();
        let mass = stratified_optimal_mass(
            self.strata.weights(),
            self.strata.mean_predictions(),
            &pi,
            self.working_f_estimate(),
            self.config.alpha,
        );
        if mass > 0.0 {
            mass
        } else {
            // Degenerate posterior (no predicted positives and F̂ = 0):
            // fall back to the neutral unit mass, mirroring
            // `stratified_optimal`'s fallback to the stratum weights.
            1.0
        }
    }

    fn name(&self) -> &'static str {
        "OASIS"
    }

    fn method(&self) -> SamplerMethod {
        SamplerMethod::Oasis
    }

    fn strata_len(&self) -> usize {
        self.strata.len()
    }

    /// Ground-truth-free health report: ESS and weight variance from the AIS
    /// estimator's running sums, per-stratum label counts from the posterior's
    /// observation tallies, and the instrumental distribution of the most
    /// recent step — all pure functions of the serialized state, so the
    /// report is bit-stable across checkpoint/restore.
    fn diagnostics(&self) -> SamplerDiagnostics {
        let (_, _, observed_matches, observed_non_matches) = self.model.snapshot();
        let stratum_labels = observed_matches
            .iter()
            .zip(observed_non_matches.iter())
            .map(|(&m, &n)| m + n)
            .collect();
        SamplerDiagnostics {
            method: SamplerMethod::Oasis,
            iterations: self.estimator.iterations(),
            effective_sample_size: self.estimator.effective_sample_size(),
            normalized_weight_variance: self.estimator.normalized_weight_variance(),
            stratum_labels,
            instrumental: self.current_proposal.clone(),
            cdf_rebuilds: self.cdf_rebuilds,
        }
    }

    /// Capture the full serializable state (strata, posterior, estimator
    /// sums, initialisation products); see [`OasisState`].
    fn state(&self) -> SamplerState {
        let (prior_gamma0, prior_gamma1, observed_matches, observed_non_matches) =
            self.model.snapshot();
        SamplerState::Oasis(OasisState {
            config: self.config.clone(),
            allocations: self.strata.allocations().to_vec(),
            prior_gamma0: prior_gamma0.to_vec(),
            prior_gamma1: prior_gamma1.to_vec(),
            observed_matches: observed_matches.to_vec(),
            observed_non_matches: observed_non_matches.to_vec(),
            decay_prior: self.model.decays_prior(),
            estimator: EstimatorState::capture(&self.estimator),
            initial_f_guess: self.initial_f_guess,
            current_proposal: self.current_proposal.clone(),
            cdf_rebuilds: self.cdf_rebuilds,
            tracker: None,
        })
    }

    fn from_state(pool: &ScoredPool, state: SamplerState) -> Result<Self> {
        match state {
            SamplerState::Oasis(state) => state.rebuild(pool),
            other => Err(other.method_mismatch(SamplerMethod::Oasis)),
        }
    }
}

impl Sampler for OasisSampler {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::exhaustive_measures;
    use crate::oracle::{GroundTruthOracle, Oracle};
    use crate::samplers::PassiveSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// An imbalanced pool whose scores correlate with (but don't perfectly
    /// predict) the truth — the regime OASIS is designed for.
    fn imbalanced_pool(
        n: usize,
        match_rate: f64,
        seed: u64,
        calibrated: bool,
    ) -> (ScoredPool, Vec<bool>) {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scores = Vec::with_capacity(n);
        let mut predictions = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let is_match = rng.gen_bool(match_rate);
            let p: f64 = if is_match {
                0.55 + 0.45 * rng.gen::<f64>()
            } else {
                0.5 * rng.gen::<f64>().powi(2)
            };
            let score = if calibrated { p } else { (p - 0.5) * 6.0 };
            scores.push(score);
            predictions.push(p > 0.5);
            truth.push(is_match);
        }
        (ScoredPool::new(scores, predictions).unwrap(), truth)
    }

    #[test]
    fn config_builder_and_validation() {
        let config = OasisConfig::default()
            .with_alpha(0.7)
            .with_epsilon(0.01)
            .with_strata_count(40)
            .with_prior_strength(10.0)
            .with_prior_decay(false)
            .with_score_threshold(1.0)
            .with_stratifier(StratifierChoice::EqualSize);
        assert_eq!(config.alpha, 0.7);
        assert_eq!(config.strata_count, 40);
        assert!(config.validate().is_ok());

        assert!(OasisConfig::default().with_alpha(1.5).validate().is_err());
        assert!(OasisConfig::default().with_epsilon(0.0).validate().is_err());
        assert!(OasisConfig::default().with_epsilon(1.5).validate().is_err());
        assert!(OasisConfig::default()
            .with_strata_count(0)
            .validate()
            .is_err());
        assert!(OasisConfig::default()
            .with_prior_strength(-1.0)
            .validate()
            .is_err());
    }

    #[test]
    fn initialisation_matches_algorithm_2() {
        let (pool, _) = imbalanced_pool(1000, 0.05, 21, true);
        let strata = CsfStratifier::new(10).stratify(&pool).unwrap();
        let init = initialise(&pool, &strata, 0.5, 0.0);
        assert_eq!(init.pi_guess.len(), strata.len());
        assert!(init.pi_guess.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!((0.0..=1.0).contains(&init.f_guess));
        // π̂⁽⁰⁾ must equal mean score per stratum for probability scores.
        for (k, &pi) in init.pi_guess.iter().enumerate() {
            assert!((pi - strata.mean_scores()[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn initialisation_squashes_uncalibrated_scores() {
        let (pool, _) = imbalanced_pool(1000, 0.05, 22, false);
        assert!(!pool.scores_are_probabilities());
        let strata = CsfStratifier::new(10).stratify(&pool).unwrap();
        let init = initialise(&pool, &strata, 0.5, 0.0);
        assert!(init.pi_guess.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn proposal_is_a_distribution_with_no_starving_stratum() {
        let (pool, _) = imbalanced_pool(2000, 0.02, 23, true);
        let sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(20)).unwrap();
        let v = sampler.compute_proposal();
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // ε-greedy guarantees every stratum keeps at least ε·ω_k mass.
        for (k, &mass) in v.iter().enumerate() {
            let floor = sampler.config().epsilon * sampler.strata().weights()[k];
            assert!(
                mass >= floor - 1e-15,
                "stratum {k} starved: {mass} < {floor}"
            );
        }
    }

    #[test]
    fn weights_are_correct_ratio_of_stratum_weight_to_proposal() {
        let (pool, truth) = imbalanced_pool(500, 0.1, 24, true);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(25);
        let mut sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(8)).unwrap();
        for _ in 0..50 {
            let outcome = sampler.step(&pool, &mut oracle, &mut rng).unwrap();
            let k = sampler.strata().stratum_of(outcome.item).unwrap();
            let expected = sampler.strata().weights()[k] / sampler.current_proposal()[k];
            assert!((outcome.weight - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn converges_to_true_f_measure() {
        let (pool, truth) = imbalanced_pool(5000, 0.02, 26, true);
        let target = exhaustive_measures(pool.predictions(), &truth, 0.5).f_measure;
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(27);
        let mut sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(30)).unwrap();
        let estimate = sampler.run(&pool, &mut oracle, &mut rng, 3000).unwrap();
        assert!(
            (estimate.f_measure - target).abs() < 0.06,
            "estimate {} vs target {target}",
            estimate.f_measure
        );
        // Precision and recall estimates are also produced and sane.
        assert!((0.0..=1.0 + 1e-9).contains(&estimate.precision));
        assert!((0.0..=1.0 + 1e-9).contains(&estimate.recall));
    }

    #[test]
    fn beats_passive_sampling_under_imbalance() {
        // The headline claim: at a fixed (small) label budget, OASIS's error is
        // lower than passive sampling's, averaged over repeats.
        let (pool, truth) = imbalanced_pool(20_000, 0.005, 28, true);
        let target = exhaustive_measures(pool.predictions(), &truth, 0.5).f_measure;
        let budget = 300;
        let repeats = 15;
        let mut oasis_err = 0.0;
        let mut passive_err = 0.0;
        for r in 0..repeats {
            let mut oracle = GroundTruthOracle::new(truth.clone());
            let mut rng = StdRng::seed_from_u64(1000 + r);
            let mut sampler =
                OasisSampler::new(&pool, OasisConfig::default().with_strata_count(30)).unwrap();
            let est = sampler
                .run_until_budget(&pool, &mut oracle, &mut rng, budget, 200_000)
                .unwrap();
            oasis_err += (est.to_measures().f_measure - target).abs();

            let mut oracle = GroundTruthOracle::new(truth.clone());
            let mut rng = StdRng::seed_from_u64(2000 + r);
            let mut passive = PassiveSampler::new(0.5);
            let est = passive
                .run_until_budget(&pool, &mut oracle, &mut rng, budget, 200_000)
                .unwrap();
            passive_err += (est.to_measures().f_measure - target).abs();
        }
        assert!(
            oasis_err < passive_err,
            "OASIS mean abs err {} should beat passive {}",
            oasis_err / repeats as f64,
            passive_err / repeats as f64
        );
    }

    #[test]
    fn posterior_means_track_true_stratum_rates() {
        let (pool, truth) = imbalanced_pool(5000, 0.05, 29, true);
        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut rng = StdRng::seed_from_u64(30);
        let mut sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(10)).unwrap();
        sampler.run(&pool, &mut oracle, &mut rng, 4000).unwrap();
        let true_rates = sampler.strata().true_match_rates(&truth);
        let estimates = sampler.pi_estimates();
        let mae: f64 = true_rates
            .iter()
            .zip(estimates.iter())
            .map(|(&t, &e)| (t - e).abs())
            .sum::<f64>()
            / true_rates.len() as f64;
        assert!(mae < 0.15, "π estimates should approach truth, MAE = {mae}");
    }

    #[test]
    fn works_with_equal_size_stratifier_and_uncalibrated_scores() {
        let (pool, truth) = imbalanced_pool(3000, 0.02, 31, false);
        let target = exhaustive_measures(pool.predictions(), &truth, 0.5).f_measure;
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(32);
        let config = OasisConfig::default()
            .with_strata_count(20)
            .with_stratifier(StratifierChoice::EqualSize)
            .with_score_threshold(0.0);
        let mut sampler = OasisSampler::new(&pool, config).unwrap();
        let estimate = sampler.run(&pool, &mut oracle, &mut rng, 2500).unwrap();
        assert!(
            (estimate.f_measure - target).abs() < 0.1,
            "estimate {} vs target {target}",
            estimate.f_measure
        );
        assert_eq!(sampler.name(), "OASIS");
    }

    #[test]
    fn single_item_pool_is_handled() {
        let pool = ScoredPool::new(vec![0.9], vec![true]).unwrap();
        let mut oracle = GroundTruthOracle::new(vec![true]);
        let mut rng = StdRng::seed_from_u64(33);
        let mut sampler = OasisSampler::new(&pool, OasisConfig::default()).unwrap();
        let est = sampler.run(&pool, &mut oracle, &mut rng, 10).unwrap();
        assert!((est.f_measure - 1.0).abs() < 1e-12);
        assert_eq!(oracle.labels_consumed(), 1);
    }
}
