//! Fault-injection and crash-recovery integration tests.
//!
//! The centrepiece is a crash-point sweep: a scripted protocol session
//! covering every sampler method (plus a sharded and an externally-labelled,
//! lease-limited session) is killed after *every* line — i.e. at every
//! WAL/checkpoint boundary — and resumed on a fresh engine over the same
//! store.  Every response after the crash point must be byte-identical to
//! the uninterrupted run's: estimates, confidence intervals, tickets,
//! watermarks.  The remaining tests drive the scripted [`FaultyStore`]
//! through torn appends, ENOSPC and transient I/O faults and assert the
//! engine's retry/scrub/error paths keep sessions recoverable.

use oasis_engine::server::serve_lines;
use oasis_engine::{
    CheckpointStore, Engine, FaultKind, FaultyStore, FsCheckpointStore, ManualClock, StoreOp,
};
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::Arc;

/// The sweep script: all four methods, a sharded session, an external
/// lease-limited session, mid-script durable checkpoints, and an explicit
/// lease sweep.  No `metrics` or `sessions` lines — their responses
/// legitimately differ across a restart (counters reset, residency differs)
/// and would produce false sweep mismatches.
const SCRIPT: &[&str] = &[
    r#"{"cmd":"load_pool","pool":"demo","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1,0.05,0.02],"predictions":[true,true,true,true,false,false,false,false,false,false]}"#,
    r#"{"cmd":"create_session","session":"m1","pool":"demo","seed":42,"config":{"strata_count":4},"truth":[true,true,false,true,false,false,false,false,false,false]}"#,
    r#"{"cmd":"step","session":"m1","steps":40}"#,
    r#"{"cmd":"estimate","session":"m1"}"#,
    r#"{"cmd":"create_session","session":"m2","pool":"demo","seed":42,"method":"passive","truth":[true,true,false,true,false,false,false,false,false,false]}"#,
    r#"{"cmd":"step","session":"m2","steps":40}"#,
    r#"{"cmd":"create_session","session":"m3","pool":"demo","seed":42,"method":"importance","config":{"strata_count":4},"truth":[true,true,false,true,false,false,false,false,false,false]}"#,
    r#"{"cmd":"step","session":"m3","steps":40}"#,
    r#"{"cmd":"create_session","session":"m4","pool":"demo","seed":42,"method":"stratified","config":{"strata_count":4},"truth":[true,true,false,true,false,false,false,false,false,false]}"#,
    r#"{"cmd":"step","session":"m4","steps":40}"#,
    r#"{"cmd":"create_session","session":"sh","pool":"demo","seed":42,"shards":2,"config":{"strata_count":2},"truth":[true,true,false,true,false,false,false,false,false,false]}"#,
    r#"{"cmd":"step","session":"sh","steps":40}"#,
    r#"{"cmd":"create_session","session":"ext","pool":"demo","seed":7,"config":{"strata_count":4},"lease_timeout_us":60000000,"max_pending":16}"#,
    r#"{"cmd":"propose","session":"ext","count":4}"#,
    r#"{"cmd":"label","session":"ext","labels":[{"ticket":0,"label":true},{"ticket":1,"label":true},{"ticket":2,"label":false},{"ticket":3,"label":false}]}"#,
    r#"{"cmd":"checkpoint_to","session":"m1"}"#,
    r#"{"cmd":"checkpoint_to","session":"ext"}"#,
    r#"{"cmd":"step","session":"m1","steps":30}"#,
    r#"{"cmd":"run_budget","session":"m2","budget":15,"max_steps":500}"#,
    r#"{"cmd":"propose","session":"ext","count":3}"#,
    r#"{"cmd":"label","session":"ext","labels":[{"ticket":4,"label":true},{"ticket":5,"label":false},{"ticket":6,"label":false}]}"#,
    r#"{"cmd":"expire_leases","session":"ext"}"#,
    r#"{"cmd":"estimate","session":"m1"}"#,
    r#"{"cmd":"estimate","session":"m2"}"#,
    r#"{"cmd":"estimate","session":"m3"}"#,
    r#"{"cmd":"estimate","session":"m4"}"#,
    r#"{"cmd":"estimate","session":"sh"}"#,
    r#"{"cmd":"estimate","session":"ext"}"#,
];

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oasis-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable engine on a frozen manual lease clock: every engine in the
/// sweep reads lease time 0, so live runs and post-crash runs agree on the
/// timestamps that end up in the WAL.
fn frozen_engine(dir: &PathBuf) -> Engine {
    Engine::new()
        .with_store(Arc::new(FsCheckpointStore::open(dir).unwrap()) as Arc<dyn CheckpointStore>)
        .with_lease_clock(Arc::new(ManualClock::new()))
}

fn run_lines(engine: &Engine, lines: &[&str]) -> Vec<String> {
    let mut script = lines.join("\n");
    script.push('\n');
    let mut output = Vec::new();
    serve_lines(engine, Cursor::new(script), &mut output).unwrap();
    String::from_utf8(output)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// [`run_lines`] with the transport swapped for the epoll reactor: the
/// script travels over a real TCP connection into an evented server.  The
/// client half-closes after writing, so the server answers everything and
/// closes; a second connection then issues `shutdown` (which never touches
/// the WAL, so it cannot perturb byte-parity with the blocking reference).
#[cfg(target_os = "linux")]
fn run_lines_evented(engine: &Engine, lines: &[&str]) -> Vec<String> {
    use oasis_engine::reactor::{serve_listener_evented_with_config, ReactorConfig};
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    let mut script = lines.join("\n");
    script.push('\n');
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut collected = Vec::new();
    crossbeam::thread::scope(|scope| {
        let server = scope.spawn(move |_| {
            serve_listener_evented_with_config(
                engine,
                listener,
                None,
                None,
                &ReactorConfig::default(),
            )
        });
        let mut stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(_) => std::thread::yield_now(),
            }
        };
        stream.write_all(script.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        stream.read_to_end(&mut collected).unwrap();

        let mut stop = TcpStream::connect(addr).unwrap();
        stop.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
        let _ = stop.read_to_end(&mut Vec::new());
        server.join().unwrap().unwrap();
    })
    .unwrap();
    String::from_utf8(collected)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn crash_point_sweep_replays_bit_identically_at_every_boundary() {
    // Reference: the uninterrupted run.
    let reference_dir = scratch_dir("sweep-ref");
    let reference = run_lines(&frozen_engine(&reference_dir), SCRIPT);
    assert_eq!(reference.len(), SCRIPT.len());
    for line in &reference {
        assert!(line.contains(r#""ok":true"#), "reference failed: {line}");
    }

    for crash_at in 1..SCRIPT.len() {
        let dir = scratch_dir(&format!("sweep-{crash_at}"));
        // Run the prefix, then "kill" the process by dropping the engine —
        // no shutdown, no final checkpoint.
        {
            let engine = frozen_engine(&dir);
            let prefix = run_lines(&engine, &SCRIPT[..crash_at]);
            assert_eq!(prefix, reference[..crash_at].to_vec(), "prefix differs");
        }
        // Restart: a fresh engine over the same store.  Pools are not
        // durable, so the client re-issues load_pool; sessions rehydrate
        // transparently (checkpoint + WAL replay) on first access.
        let revived = frozen_engine(&dir);
        let mut suffix_lines = vec![SCRIPT[0]];
        suffix_lines.extend_from_slice(&SCRIPT[crash_at..]);
        let responses = run_lines(&revived, &suffix_lines);
        assert!(
            responses[0].contains(r#""ok":true"#),
            "crash@{crash_at}: pool reload failed: {}",
            responses[0]
        );
        assert_eq!(
            responses[1..].to_vec(),
            reference[crash_at..].to_vec(),
            "crash@{crash_at}: post-restart responses diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&reference_dir);
}

/// The crash-point sweep again, but with every run served by the epoll
/// reactor over TCP instead of the blocking stdio loop.  This pins the
/// evented transport to the exact same durable semantics: a kill at any
/// WAL/checkpoint boundary, followed by a restart behind a fresh evented
/// server, replays byte-identically with the uninterrupted blocking run.
#[cfg(target_os = "linux")]
#[test]
fn crash_point_sweep_over_the_evented_server_matches_the_blocking_run() {
    // Reference from the *blocking* path — parity across transports and
    // across crashes in one assertion.
    let reference_dir = scratch_dir("esweep-ref");
    let reference = run_lines(&frozen_engine(&reference_dir), SCRIPT);
    for line in &reference {
        assert!(line.contains(r#""ok":true"#), "reference failed: {line}");
    }

    for crash_at in 1..SCRIPT.len() {
        let dir = scratch_dir(&format!("esweep-{crash_at}"));
        {
            let engine = frozen_engine(&dir);
            let prefix = run_lines_evented(&engine, &SCRIPT[..crash_at]);
            assert_eq!(prefix, reference[..crash_at].to_vec(), "prefix differs");
        }
        let revived = frozen_engine(&dir);
        let mut suffix_lines = vec![SCRIPT[0]];
        suffix_lines.extend_from_slice(&SCRIPT[crash_at..]);
        let responses = run_lines_evented(&revived, &suffix_lines);
        assert!(
            responses[0].contains(r#""ok":true"#),
            "crash@{crash_at}: pool reload failed: {}",
            responses[0]
        );
        assert_eq!(
            responses[1..].to_vec(),
            reference[crash_at..].to_vec(),
            "crash@{crash_at}: evented post-restart responses diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&reference_dir);
}

#[test]
fn expired_leases_survive_kill_and_replay_bit_for_bit() {
    let dir = scratch_dir("lease-replay");
    let setup = [
        r#"{"cmd":"load_pool","pool":"demo","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1,0.05,0.02],"predictions":[true,true,true,true,false,false,false,false,false,false]}"#,
        r#"{"cmd":"create_session","session":"ext","pool":"demo","seed":7,"config":{"strata_count":4},"lease_timeout_us":1000}"#,
        r#"{"cmd":"propose","session":"ext","count":3}"#,
    ];
    let (estimate_line, expired_line) = {
        let clock = Arc::new(ManualClock::new());
        let engine =
            Engine::new()
                .with_store(
                    Arc::new(FsCheckpointStore::open(&dir).unwrap()) as Arc<dyn CheckpointStore>
                )
                .with_lease_clock(Arc::clone(&clock) as _);
        run_lines(&engine, &setup);
        // The client vanishes; its leases lapse.
        clock.advance(5_000);
        let responses = run_lines(
            &engine,
            &[
                r#"{"cmd":"propose","session":"ext","count":2}"#,
                r#"{"cmd":"label","session":"ext","labels":[{"ticket":3,"label":true},{"ticket":4,"label":false}]}"#,
                r#"{"cmd":"estimate","session":"ext"}"#,
            ],
        );
        let expired_line = responses[0].clone();
        assert!(
            expired_line.contains(r#""expired":["0","1","2"]"#),
            "stale tickets reclaimed: {expired_line}"
        );
        assert!(responses[1].contains(r#""ok":true"#), "{}", responses[1]);
        (responses[2].clone(), expired_line)
        // Engine dropped here: the kill.  Only the WAL has the expiries.
    };

    // Restart on a clock that restarted from zero: replay must use the
    // WAL-logged timestamps, not the new clock, to expire the same tickets.
    let revived = frozen_engine(&dir);
    let responses = run_lines(
        &revived,
        &[
            setup[0],
            r#"{"cmd":"restore_from","session":"ext"}"#,
            r#"{"cmd":"estimate","session":"ext"}"#,
            r#"{"cmd":"label","session":"ext","labels":[{"ticket":0,"label":true}]}"#,
        ],
    );
    assert!(
        responses[1].contains(r#""replayed":3"#),
        "create is checkpointed, propose+label+propose... : {}",
        responses[1]
    );
    assert_eq!(
        responses[2], estimate_line,
        "estimate after replay must be byte-identical to the live run"
    );
    // The expired ticket stays expired after the replay.
    assert!(
        responses[3].contains(r#""kind":"unknown_ticket""#),
        "expired lease must not be labelable after replay: {}",
        responses[3]
    );
    drop(expired_line);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_append_fails_the_request_but_never_corrupts_the_log() {
    let dir = scratch_dir("torn");
    let inner: Arc<dyn CheckpointStore> = Arc::new(FsCheckpointStore::open(&dir).unwrap());
    // Tear the third WAL append: the session's base checkpoint is a write,
    // not an append, so append indices count only step records.
    let faulty =
        Arc::new(FaultyStore::new(inner).with_fault(StoreOp::AppendWal, 2, FaultKind::Torn));
    let engine = Engine::new().with_store(Arc::clone(&faulty) as Arc<dyn CheckpointStore>);
    let responses = run_lines(
        &engine,
        &[
            r#"{"cmd":"load_pool","pool":"demo","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1,0.05,0.02],"predictions":[true,true,true,true,false,false,false,false,false,false]}"#,
            r#"{"cmd":"create_session","session":"s","pool":"demo","seed":42,"config":{"strata_count":4},"truth":[true,true,false,true,false,false,false,false,false,false]}"#,
            r#"{"cmd":"step","session":"s","steps":10}"#,
            r#"{"cmd":"step","session":"s","steps":10}"#,
            // This one hits the torn append: WAL-first means the step never
            // applies, and the torn prefix is scrubbed before returning.
            r#"{"cmd":"step","session":"s","steps":10}"#,
            // The session is not wedged; the next request succeeds.
            r#"{"cmd":"step","session":"s","steps":10}"#,
            r#"{"cmd":"estimate","session":"s"}"#,
        ],
    );
    assert!(responses[4].contains(r#""ok":false"#), "{}", responses[4]);
    assert!(
        responses[4].contains(r#""kind":"store""#),
        "{}",
        responses[4]
    );
    for (index, line) in responses.iter().enumerate() {
        if index != 4 {
            assert!(line.contains(r#""ok":true"#), "line {index}: {line}");
        }
    }
    assert_eq!(faulty.injected(), 1);
    let live_estimate = responses[6].clone();

    // Kill and replay: the scrubbed WAL replays cleanly (3 applied steps)
    // and reproduces the exact live estimate.
    drop(engine);
    let revived = frozen_engine(&dir);
    let responses = run_lines(
        &revived,
        &[
            r#"{"cmd":"load_pool","pool":"demo","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1,0.05,0.02],"predictions":[true,true,true,true,false,false,false,false,false,false]}"#,
            r#"{"cmd":"restore_from","session":"s"}"#,
            r#"{"cmd":"estimate","session":"s"}"#,
        ],
    );
    assert!(responses[1].contains(r#""replayed":3"#), "{}", responses[1]);
    assert!(
        !responses[1].contains("wal_truncated"),
        "the torn line was scrubbed at append time, not replay time: {}",
        responses[1]
    );
    assert_eq!(responses[2], live_estimate);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_on_checkpoint_is_structured_and_the_session_keeps_serving() {
    let dir = scratch_dir("enospc");
    let inner: Arc<dyn CheckpointStore> = Arc::new(FsCheckpointStore::open(&dir).unwrap());
    // Checkpoint write 0 is the session's base checkpoint; fail write 1,
    // the explicit checkpoint_to.
    let faulty =
        Arc::new(FaultyStore::new(inner).with_fault(StoreOp::PutCheckpoint, 1, FaultKind::Enospc));
    let engine = Engine::new().with_store(Arc::clone(&faulty) as Arc<dyn CheckpointStore>);
    let responses = run_lines(
        &engine,
        &[
            r#"{"cmd":"load_pool","pool":"demo","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1,0.05,0.02],"predictions":[true,true,true,true,false,false,false,false,false,false]}"#,
            r#"{"cmd":"create_session","session":"s","pool":"demo","seed":42,"config":{"strata_count":4},"truth":[true,true,false,true,false,false,false,false,false,false]}"#,
            r#"{"cmd":"step","session":"s","steps":10}"#,
            r#"{"cmd":"checkpoint_to","session":"s"}"#,
            r#"{"cmd":"step","session":"s","steps":10}"#,
            r#"{"cmd":"checkpoint_to","session":"s"}"#,
            r#"{"cmd":"estimate","session":"s"}"#,
        ],
    );
    assert!(responses[3].contains(r#""ok":false"#), "{}", responses[3]);
    assert!(responses[3].contains("ENOSPC"), "{}", responses[3]);
    assert!(
        responses[3].contains(r#""kind":"store""#),
        "{}",
        responses[3]
    );
    // The failed checkpoint neither wedged the session nor lost WAL records:
    // later requests — including the retried checkpoint — succeed.
    for index in [4, 5, 6] {
        assert!(
            responses[index].contains(r#""ok":true"#),
            "line {index}: {}",
            responses[index]
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_faults_are_invisible_to_clients() {
    let dir = scratch_dir("transient");
    let inner: Arc<dyn CheckpointStore> = Arc::new(FsCheckpointStore::open(&dir).unwrap());
    let faulty = Arc::new(
        FaultyStore::new(inner)
            .with_fault(StoreOp::AppendWal, 0, FaultKind::Transient)
            .with_fault(StoreOp::AppendWal, 2, FaultKind::Transient)
            .with_fault(StoreOp::PutCheckpoint, 1, FaultKind::Transient),
    );
    let engine = Engine::new().with_store(Arc::clone(&faulty) as Arc<dyn CheckpointStore>);
    faulty.attach_metrics(engine.metrics_handle());
    let responses = run_lines(
        &engine,
        &[
            r#"{"cmd":"load_pool","pool":"demo","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1,0.05,0.02],"predictions":[true,true,true,true,false,false,false,false,false,false]}"#,
            r#"{"cmd":"create_session","session":"s","pool":"demo","seed":42,"config":{"strata_count":4},"truth":[true,true,false,true,false,false,false,false,false,false]}"#,
            r#"{"cmd":"step","session":"s","steps":10}"#,
            r#"{"cmd":"step","session":"s","steps":10}"#,
            r#"{"cmd":"checkpoint_to","session":"s"}"#,
            r#"{"cmd":"metrics"}"#,
        ],
    );
    for (index, line) in responses.iter().enumerate() {
        assert!(
            line.contains(r#""ok":true"#),
            "transient faults must be absorbed by retries — line {index}: {line}"
        );
    }
    assert!(
        responses[5].contains(r#""retried_write":"3""#),
        "every injected transient shows up as a retry: {}",
        responses[5]
    );
    assert!(
        responses[5].contains(r#""fault_injected":"3""#),
        "{}",
        responses[5]
    );
    let _ = std::fs::remove_dir_all(&dir);
}
