//! Engine-level errors.

use serde::json::JsonError;
use std::fmt;

/// Anything that can go wrong inside the engine: sampler failures, checkpoint
/// (de)serialisation problems, or session/pool bookkeeping errors.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An error bubbled up from the `oasis` sampling library.
    Sampler(oasis::Error),
    /// A JSON parse or conversion failure.
    Json(JsonError),
    /// The named pool is not loaded.
    UnknownPool(String),
    /// The named session does not exist.
    UnknownSession(String),
    /// An id (pool or session) is already taken.
    DuplicateId(String),
    /// A label referenced a ticket that is not pending.
    UnknownTicket(u64),
    /// A label batch named the same ticket more than once.
    DuplicateTicket(u64),
    /// The operation needs an attached oracle (e.g. `step`) but the session
    /// labels externally, or vice versa.
    WrongLabelSource(&'static str),
    /// A label source whose coverage does not match the pool at creation.
    InvalidLabelSource(String),
    /// A checkpoint does not match the pool it is being restored against.
    CheckpointMismatch(String),
    /// A malformed protocol request.
    Protocol(String),
    /// A durable checkpoint store failure: I/O, a missing or corrupt entry,
    /// or a write-ahead log that cannot be replayed.
    Store(String),
    /// A store failure that is expected to succeed on retry (a transient
    /// I/O error).  The engine retries these with bounded backoff before
    /// promoting them to a permanent [`EngineError::Store`].
    StoreTransient(String),
    /// The connection has not presented the configured auth token.
    Unauthorized(String),
    /// The session exceeded its configured request rate; the client should
    /// back off and retry.
    Throttled(String),
    /// The request would grow a bounded queue (e.g. pending tickets) past
    /// its cap; the client must drain it first.
    Backpressure(String),
    /// A request line exceeded the server's per-line byte cap before a
    /// newline appeared.  The payload is the cap; the offending line is
    /// discarded, never buffered whole.
    LineTooLong(usize),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sampler(e) => write!(f, "sampler error: {e}"),
            EngineError::Json(e) => write!(f, "{e}"),
            EngineError::UnknownPool(id) => write!(f, "unknown pool {id:?}"),
            EngineError::UnknownSession(id) => write!(f, "unknown session {id:?}"),
            EngineError::DuplicateId(id) => write!(f, "id {id:?} already exists"),
            EngineError::UnknownTicket(t) => write!(f, "ticket {t} is not pending"),
            EngineError::DuplicateTicket(t) => {
                write!(f, "ticket {t} appears more than once in the batch")
            }
            EngineError::WrongLabelSource(what) => write!(f, "{what}"),
            EngineError::InvalidLabelSource(why) => write!(f, "invalid label source: {why}"),
            EngineError::CheckpointMismatch(why) => write!(f, "checkpoint mismatch: {why}"),
            EngineError::Protocol(why) => write!(f, "bad request: {why}"),
            EngineError::Store(why) => write!(f, "store error: {why}"),
            EngineError::StoreTransient(why) => write!(f, "transient store error: {why}"),
            EngineError::Unauthorized(why) => write!(f, "unauthorized: {why}"),
            EngineError::Throttled(why) => write!(f, "throttled: {why}"),
            EngineError::Backpressure(why) => write!(f, "backpressure: {why}"),
            EngineError::LineTooLong(max) => {
                write!(f, "request line exceeds {max} bytes")
            }
        }
    }
}

impl EngineError {
    /// A stable machine-readable tag for the error family, surfaced as the
    /// `kind` field of `ok:false` protocol responses so clients can branch
    /// without parsing prose.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::Sampler(_) => "sampler",
            EngineError::Json(_) => "json",
            EngineError::UnknownPool(_) => "unknown_pool",
            EngineError::UnknownSession(_) => "unknown_session",
            EngineError::DuplicateId(_) => "duplicate_id",
            EngineError::UnknownTicket(_) => "unknown_ticket",
            EngineError::DuplicateTicket(_) => "duplicate_ticket",
            EngineError::WrongLabelSource(_) => "wrong_label_source",
            EngineError::InvalidLabelSource(_) => "invalid_label_source",
            EngineError::CheckpointMismatch(_) => "checkpoint_mismatch",
            EngineError::Protocol(_) => "protocol",
            EngineError::Store(_) => "store",
            EngineError::StoreTransient(_) => "store_transient",
            EngineError::Unauthorized(_) => "unauthorized",
            EngineError::Throttled(_) => "throttled",
            EngineError::Backpressure(_) => "backpressure",
            EngineError::LineTooLong(_) => "line_too_long",
        }
    }
}

impl std::error::Error for EngineError {}

impl From<oasis::Error> for EngineError {
    fn from(e: oasis::Error) -> Self {
        EngineError::Sampler(e)
    }
}

impl From<JsonError> for EngineError {
    fn from(e: JsonError) -> Self {
        EngineError::Json(e)
    }
}

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;
