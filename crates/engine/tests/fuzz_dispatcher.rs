//! Property-based fuzzing at the protocol boundary, plus lease-expiry and
//! checkpoint round-trip properties.
//!
//! The dispatcher's contract with untrusted clients: *every* input line —
//! arbitrary bytes, truncated JSON, pathological nesting, junk interleaved
//! with real traffic — yields exactly one structured response (`ok:false`
//! with a `kind` tag on rejection), never a panic, and never wedges the
//! sessions being served on the same stream.

use oasis_engine::guard::guarded_dispatch;
use oasis_engine::protocol::Request;
use oasis_engine::server::serve_lines;
use oasis_engine::{ClientPolicy, ConnState, Engine, ManualClock};
use proptest::prelude::*;
use serde::json::Json;
use std::io::Cursor;
use std::sync::Arc;

/// Drive `lines` through the line server and return one response per
/// non-blank input line.
fn serve(engine: &Engine, lines: &[String]) -> Vec<String> {
    let mut script = lines.join("\n");
    script.push('\n');
    let mut output = Vec::new();
    serve_lines(engine, Cursor::new(script), &mut output).expect("transport must not error");
    String::from_utf8(output)
        .expect("responses must be UTF-8")
        .lines()
        .map(str::to_string)
        .collect()
}

/// Junk line strategy: arbitrary bytes rendered as lossy UTF-8 (newlines
/// stripped so each sample stays one protocol line).  The vendored proptest
/// has no `prop_oneof!`, so a selector byte picks the corruption regime:
/// raw bytes, JSON punctuation soup, or a mutilated real request.
fn junk_line() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(any::<u8>(), 0..160),
        any::<u8>(),
        any::<u16>(),
    )
        .prop_map(|(bytes, mode, cut)| {
            let line = match mode % 3 {
                0 => String::from_utf8_lossy(&bytes).into_owned(),
                1 => bytes
                    .iter()
                    .map(|b| b"{}[]:,\"truefalsnu0123456789.-eE "[(*b as usize) % 31] as char)
                    .collect(),
                _ => {
                    let valid = r#"{"cmd":"step","session":"s","steps":1}"#;
                    let cut = (cut as usize) % valid.len();
                    format!("{}{}", &valid[..cut], String::from_utf8_lossy(&bytes))
                }
            };
            line.replace(['\n', '\r'], " ")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_lines_always_get_one_structured_response(
        lines in prop::collection::vec(junk_line(), 1..12),
    ) {
        // A junk line that happens to spell "shutdown" would legitimately
        // stop the loop early; astronomically unlikely, but exclude it so
        // the one-response-per-line invariant is exact.
        let lines: Vec<String> = lines
            .into_iter()
            .filter(|l| !l.contains("shutdown") && !l.trim().is_empty())
            .collect();
        let engine = Engine::new();
        let mut all = lines.clone();
        all.push(r#"{"cmd":"sessions"}"#.to_string());
        let responses = serve(&engine, &all);
        prop_assert_eq!(responses.len(), all.len(), "one response per line");
        for (line, response) in lines.iter().zip(&responses) {
            prop_assert!(
                response.starts_with('{') && response.contains(r#""ok":"#),
                "unstructured response to {line:?}: {response:?}"
            );
            if response.contains(r#""ok":false"#) {
                prop_assert!(
                    response.contains(r#""kind":"#),
                    "rejection without a kind tag: {response:?}"
                );
            }
        }
        // The server survived the abuse and still answers real requests.
        prop_assert!(responses.last().unwrap().contains(r#""ok":true"#));
    }

    #[test]
    fn pathological_nesting_is_rejected_not_stack_overflowed(
        depth in 1usize..600,
        close in any::<bool>(),
    ) {
        let mut line = format!(r#"{{"cmd":{}"#, "[".repeat(depth));
        if close {
            line.push_str(&"]".repeat(depth));
            line.push('}');
        }
        let engine = Engine::new();
        let responses = serve(
            &engine,
            &[line, r#"{"cmd":"sessions"}"#.to_string()],
        );
        prop_assert!(responses[0].contains(r#""ok":false"#), "{}", responses[0]);
        prop_assert!(responses[1].contains(r#""ok":true"#), "{}", responses[1]);
    }

    #[test]
    fn junk_interleaved_with_real_traffic_leaves_sessions_usable(
        junk in prop::collection::vec(junk_line(), 1..8),
        interleave_at in any::<u16>(),
    ) {
        let real = [
            r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.7,0.3,0.1],"predictions":[true,true,false,false]}"#,
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":9,"config":{"strata_count":2},"truth":[true,false,false,true]}"#,
            r#"{"cmd":"step","session":"s","steps":25}"#,
            r#"{"cmd":"estimate","session":"s"}"#,
        ];
        // Splice the junk block between two real requests (never after the
        // final estimate, which the assertions below read).  Junk can spell
        // verbs by accident only if it parses as a JSON object with a string
        // "cmd" field — the mutilated-request regime never survives parsing
        // with its tail of random bytes — so the real session is unaffected.
        let at = (interleave_at as usize) % real.len();
        let mut lines: Vec<String> = Vec::new();
        lines.extend(real[..at].iter().map(|s| s.to_string()));
        lines.extend(
            junk.iter()
                .filter(|l| !l.contains("shutdown") && !l.trim().is_empty())
                .cloned(),
        );
        lines.extend(real[at..].iter().map(|s| s.to_string()));

        let engine = Engine::new();
        let responses = serve(&engine, &lines);
        prop_assert_eq!(responses.len(), lines.len());
        let estimate = responses.last().unwrap();
        prop_assert!(estimate.contains(r#""ok":true"#), "{}", estimate);
        prop_assert!(estimate.contains(r#""f_measure":"#), "{}", estimate);
    }

    #[test]
    fn guarded_dispatch_never_panics_and_never_leaks_past_auth(
        junk in prop::collection::vec(junk_line(), 1..8),
    ) {
        let engine = Engine::new();
        let policy = ClientPolicy::new().with_auth_token("secret").with_rate_limit(2);
        let mut conn = ConnState::default();
        for line in &junk {
            // Lines that don't even parse never reach the guard; the rest
            // must come back unauthorized — junk cannot guess the token.
            if let Ok(request) = Request::parse(line) {
                if matches!(&request, Request::Auth { token } if token == "secret") {
                    continue; // junk spelling the exact secret: not this universe
                }
                let rendered = guarded_dispatch(&engine, Some(&policy), &mut conn, request)
                    .response
                    .render();
                prop_assert!(rendered.contains(r#""ok":false"#), "{rendered}");
                prop_assert!(!conn.authenticated);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn leases_expire_exactly_at_their_deadline(
        timeout in 1u64..10_000,
        advance in 0u64..20_000,
    ) {
        let clock = Arc::new(ManualClock::new());
        let engine = Engine::new().with_lease_clock(Arc::clone(&clock) as _);
        let setup: Vec<String> = vec![
            r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.7,0.3,0.1],"predictions":[true,true,false,false]}"#.to_string(),
            format!(
                r#"{{"cmd":"create_session","session":"s","pool":"p","seed":3,"config":{{"strata_count":2}},"lease_timeout_us":{timeout}}}"#
            ),
            r#"{"cmd":"propose","session":"s","count":2}"#.to_string(),
        ];
        for response in serve(&engine, &setup) {
            prop_assert!(response.contains(r#""ok":true"#), "{response}");
        }
        clock.advance(advance);
        let response = &serve(&engine, &[r#"{"cmd":"expire_leases","session":"s"}"#.to_string()])[0];
        if advance >= timeout {
            prop_assert!(
                response.contains(r#""expired":["0","1"]"#),
                "t={timeout} dt={advance}: {response}"
            );
            prop_assert!(response.contains(r#""pending":0"#), "{response}");
        } else {
            prop_assert!(
                response.contains(r#""expired":[]"#),
                "t={timeout} dt={advance}: {response}"
            );
            prop_assert!(response.contains(r#""pending":2"#), "{response}");
        }
    }

    #[test]
    fn checkpoint_restore_round_trips_bit_for_bit(
        // Seeds ride the wire as JSON numbers (f64), so the protocol's
        // contract covers exactly-representable integers: < 2^53.
        seed in 0u64..(1u64 << 53),
        steps in 0usize..50,
        method_selector in 0usize..4,
    ) {
        let method = ["oasis", "passive", "importance", "stratified"][method_selector];
        let engine = Engine::new();
        let script: Vec<String> = vec![
            r#"{"cmd":"load_pool","pool":"p","scores":[0.95,0.8,0.6,0.4,0.2,0.1],"predictions":[true,true,true,false,false,false]}"#.to_string(),
            format!(
                r#"{{"cmd":"create_session","session":"a","pool":"p","seed":{seed},"method":"{method}","config":{{"strata_count":2}},"truth":[true,false,true,false,false,true]}}"#
            ),
            format!(r#"{{"cmd":"step","session":"a","steps":{steps}}}"#),
            r#"{"cmd":"checkpoint","session":"a"}"#.to_string(),
            r#"{"cmd":"estimate","session":"a"}"#.to_string(),
        ];
        let responses = serve(&engine, &script);
        for response in &responses {
            prop_assert!(response.contains(r#""ok":true"#), "{response}");
        }
        // Checkpoints and estimates embed the session name; normalize it so
        // the comparison sees only sampler/RNG/estimator state.
        let checkpoint = Json::parse(&responses[3])
            .unwrap()
            .get("checkpoint")
            .unwrap()
            .render()
            .replace(r#""session":"a""#, r#""session":"b""#);
        let estimate_a = responses[4].replace(r#""session":"a""#, r#""session":"b""#);

        // Restore the serialized state into a fresh engine under a new name:
        // the estimate — point value and confidence interval — must be
        // byte-identical, and re-checkpointing must reproduce the bytes.
        let other = Engine::new();
        let script: Vec<String> = vec![
            // Checkpoints reference their pool; the fresh engine loads it first.
            r#"{"cmd":"load_pool","pool":"p","scores":[0.95,0.8,0.6,0.4,0.2,0.1],"predictions":[true,true,true,false,false,false]}"#.to_string(),
            format!(r#"{{"cmd":"restore","session":"b","checkpoint":{checkpoint}}}"#),
            r#"{"cmd":"estimate","session":"b"}"#.to_string(),
            r#"{"cmd":"checkpoint","session":"b"}"#.to_string(),
        ];
        let responses = serve(&other, &script);
        prop_assert!(responses[1].contains(r#""restored":true"#), "{}", responses[1]);
        prop_assert_eq!(&responses[2], &estimate_a);
        let round_tripped = Json::parse(&responses[3])
            .unwrap()
            .get("checkpoint")
            .unwrap()
            .render();
        prop_assert_eq!(round_tripped, checkpoint);
    }
}

/// Regression for the framing overflow path: a line longer than
/// [`MAX_LINE_BYTES`] must yield the *structured* `kind:"line_too_long"`
/// rejection (clients need to tell a framing overflow apart from malformed
/// JSON), and the very next request on the same stream must still be
/// served — the oversized line is discarded, never buffered whole.
#[test]
fn overlong_lines_get_a_structured_kind_and_do_not_wedge_the_stream() {
    use oasis_engine::server::MAX_LINE_BYTES;

    let engine = Engine::new();
    let mut script = Vec::from(&br#"{"cmd":"sessions"}"#[..]);
    script.push(b'\n');
    let overlong_from = script.len();
    script.resize(overlong_from + MAX_LINE_BYTES + 1024, b'x');
    script.extend_from_slice(b"\n{\"cmd\":\"sessions\"}\n");

    let mut output = Vec::new();
    serve_lines(&engine, Cursor::new(script), &mut output).expect("transport must not error");
    let text = String::from_utf8(output).expect("responses must be UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one response per line:\n{text}");
    assert!(lines[0].contains(r#""ok":true"#), "{}", lines[0]);
    assert!(lines[1].contains(r#""ok":false"#), "{}", lines[1]);
    assert!(
        lines[1].contains(r#""kind":"line_too_long""#),
        "overflow must be machine-distinguishable from a parse error: {}",
        lines[1]
    );
    assert!(
        lines[2].contains(r#""ok":true"#),
        "the stream must keep serving after an overlong line: {}",
        lines[2]
    );
}
