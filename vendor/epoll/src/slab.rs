//! A registration slab: stable `usize` keys for connection state.
//!
//! Freed slots are recycled in LIFO order, so keys stay small and dense —
//! exactly what an event loop wants for turning epoll tokens back into
//! connection state without a hash map.  Purely safe code.

/// A vector-backed slab with free-list slot reuse.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Insert a value, returning its key.  Recycles the most recently freed
    /// slot when one exists.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(key) => {
                debug_assert!(self.entries[key].is_none());
                self.entries[key] = Some(value);
                key
            }
            None => {
                self.entries.push(Some(value));
                self.entries.len() - 1
            }
        }
    }

    /// Remove and return the value under `key`, freeing the slot.
    pub fn remove(&mut self, key: usize) -> Option<T> {
        let value = self.entries.get_mut(key)?.take()?;
        self.free.push(key);
        self.len -= 1;
        Some(value)
    }

    /// The value under `key`, if occupied.
    pub fn get(&self, key: usize) -> Option<&T> {
        self.entries.get(key)?.as_ref()
    }

    /// Mutable access to the value under `key`, if occupied.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        self.entries.get_mut(key)?.as_mut()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over `(key, &value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(key, slot)| slot.as_ref().map(|value| (key, value)))
    }

    /// Drain every occupied slot, leaving the slab empty.
    pub fn drain(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::with_capacity(self.len);
        for (key, slot) in self.entries.iter_mut().enumerate() {
            if let Some(value) = slot.take() {
                out.push((key, value));
                self.free.push(key);
            }
        }
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None, "double-remove is a no-op");
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(b), Some(&"b"));
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let _b = slab.insert(2);
        slab.remove(a);
        let c = slab.insert(3);
        assert_eq!(c, a, "the freed slot is reused");
        assert_eq!(slab.get(c), Some(&3));
    }

    #[test]
    fn iter_and_drain_see_only_occupied_slots() {
        let mut slab = Slab::new();
        let keys: Vec<usize> = (0..5).map(|i| slab.insert(i * 10)).collect();
        slab.remove(keys[1]);
        slab.remove(keys[3]);
        let seen: Vec<(usize, i32)> = slab.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(seen, vec![(keys[0], 0), (keys[2], 20), (keys[4], 40)]);
        let drained = slab.drain();
        assert_eq!(drained.len(), 3);
        assert!(slab.is_empty());
        // Every slot is free again.
        let reused = slab.insert(99);
        assert!(reused < 5);
    }

    #[test]
    fn out_of_range_keys_are_none() {
        let slab: Slab<u8> = Slab::new();
        assert!(slab.get(7).is_none());
        assert!(slab.is_empty());
    }
}
