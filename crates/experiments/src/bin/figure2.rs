//! Regenerate Figure 2 (error vs label budget for every pool and method).
//!
//! Usage:
//! `cargo run --release -p experiments --bin figure2 -- --scale=0.1 --repeats=100 --datasets=Abt-Buy,cora`

use experiments::figure2::{run, Figure2Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let datasets_arg: String = experiments::parse_arg(&args, "datasets", String::new());
    let datasets = if datasets_arg.is_empty() {
        Vec::new()
    } else {
        datasets_arg.split(',').map(str::to_string).collect()
    };
    let config = Figure2Config {
        scale: experiments::parse_arg(&args, "scale", 0.1f64),
        repeats: experiments::parse_arg(&args, "repeats", 100usize),
        budget_fraction: experiments::parse_arg(&args, "budget-fraction", 0.06f64),
        checkpoints: experiments::parse_arg(&args, "checkpoints", 12usize),
        seed: experiments::parse_arg(&args, "seed", 2017u64),
        threads: experiments::parse_arg(&args, "threads", 4usize),
        datasets,
    };
    let figure = run(&config);
    println!("{}", figure.render());
    println!("\nLabel-budget savings of OASIS vs Passive (ratio of budgets to reach OASIS's final error):");
    for (name, ratio) in figure.label_savings() {
        if ratio.is_finite() {
            println!("  {name}: {ratio:.1}x");
        } else {
            println!("  {name}: passive never reaches OASIS's error within the budget");
        }
    }
}
