//! Repeated-run error curves: expected absolute error and standard deviation
//! of the F-measure estimate as a function of the consumed label budget
//! (the quantities plotted in the paper's Figures 2 and 3).

use crate::methods::Method;
use crate::pools::ExperimentPool;
use crossbeam::thread;
use oasis::oracle::{GroundTruthOracle, Oracle};
use oasis::samplers::{InteractiveSampler, Sampler};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a curve experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveConfig {
    /// Label budgets at which the estimate is recorded (checkpoints).
    pub checkpoints: Vec<usize>,
    /// Number of independent repeats per method.
    pub repeats: usize,
    /// F-measure weight α.
    pub alpha: f64,
    /// Base RNG seed; repeat `r` uses `seed + r`.
    pub seed: u64,
    /// Number of worker threads for the repeats (1 = sequential).
    pub threads: usize,
}

impl CurveConfig {
    /// Evenly spaced checkpoints from `step` to `max_budget`.
    pub fn with_linear_checkpoints(max_budget: usize, step: usize, repeats: usize) -> Self {
        let step = step.max(1);
        let checkpoints = (1..=max_budget / step).map(|i| i * step).collect();
        CurveConfig {
            checkpoints,
            repeats,
            alpha: 0.5,
            seed: 2017,
            threads: 4,
        }
    }
}

/// The curve of one method on one pool.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCurve {
    /// The method's display label.
    pub label: String,
    /// The label budgets of the checkpoints.
    pub budgets: Vec<usize>,
    /// Expected absolute error `E|F̂ − F|` at each checkpoint (NaN when no
    /// repeat had a defined estimate).
    pub absolute_error: Vec<f64>,
    /// Standard deviation of the estimate at each checkpoint.
    pub std_dev: Vec<f64>,
    /// Fraction of repeats with a defined (non-NaN) estimate at each
    /// checkpoint — the paper only plots points where this exceeds 95%.
    pub defined_fraction: Vec<f64>,
}

impl MethodCurve {
    /// The smallest budget at which at least `fraction` of the repeats had a
    /// defined estimate (the paper's plotting-start convention with 0.95).
    pub fn first_defined_budget(&self, fraction: f64) -> Option<usize> {
        self.budgets
            .iter()
            .zip(self.defined_fraction.iter())
            .find(|(_, &f)| f >= fraction)
            .map(|(&b, _)| b)
    }

    /// The absolute error at the final checkpoint.
    pub fn final_error(&self) -> f64 {
        *self.absolute_error.last().unwrap_or(&f64::NAN)
    }
}

/// Record the estimate trajectory of one run at the requested checkpoints.
fn run_once(pool: &ExperimentPool, method: Method, config: &CurveConfig, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler = method
        .build(&pool.pool, config.alpha, pool.score_threshold)
        .expect("method configuration is valid for this pool");
    let mut oracle = GroundTruthOracle::new(pool.truth.clone());
    let mut estimates = Vec::with_capacity(config.checkpoints.len());
    let max_budget = *config.checkpoints.last().unwrap_or(&0);
    let mut next_checkpoint = 0usize;
    // Hard cap on iterations: with-replacement draws can revisit labelled
    // items, so allow a multiple of the budget (the estimate is carried
    // forward for any checkpoints not reached before the cap).
    let max_iterations = max_budget.saturating_mul(10).max(1000);
    let mut iterations = 0usize;
    while next_checkpoint < config.checkpoints.len() && iterations < max_iterations {
        sampler
            .step(&pool.pool, &mut oracle, &mut rng)
            .expect("sampling step cannot fail on a valid pool");
        iterations += 1;
        while next_checkpoint < config.checkpoints.len()
            && oracle.labels_consumed() >= config.checkpoints[next_checkpoint]
        {
            estimates.push(sampler.estimate().f_measure);
            next_checkpoint += 1;
        }
    }
    // If the pool was exhausted before reaching later checkpoints, carry the
    // final estimate forward (the estimate can no longer change).
    while estimates.len() < config.checkpoints.len() {
        estimates.push(sampler.estimate().f_measure);
    }
    estimates
}

/// Run the repeated-run experiment for one method.
pub fn method_curve(pool: &ExperimentPool, method: Method, config: &CurveConfig) -> MethodCurve {
    let repeats = config.repeats.max(1);
    let trajectories: Vec<Vec<f64>> = if config.threads <= 1 || repeats == 1 {
        (0..repeats)
            .map(|r| run_once(pool, method, config, config.seed + r as u64))
            .collect()
    } else {
        let collected = Mutex::new(vec![Vec::new(); repeats]);
        let threads = config.threads.min(repeats);
        thread::scope(|scope| {
            for worker in 0..threads {
                let collected = &collected;
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    for r in (worker..repeats).step_by(threads) {
                        local.push((r, run_once(pool, method, config, config.seed + r as u64)));
                    }
                    let mut guard = collected.lock();
                    for (r, trajectory) in local {
                        guard[r] = trajectory;
                    }
                });
            }
        })
        .expect("worker threads do not panic");
        collected.into_inner()
    };

    let checkpoints = config.checkpoints.len();
    let mut absolute_error = Vec::with_capacity(checkpoints);
    let mut std_dev = Vec::with_capacity(checkpoints);
    let mut defined_fraction = Vec::with_capacity(checkpoints);
    for c in 0..checkpoints {
        let values: Vec<f64> = trajectories
            .iter()
            .map(|t| t[c])
            .filter(|v| v.is_finite())
            .collect();
        let defined = values.len();
        defined_fraction.push(defined as f64 / repeats as f64);
        if defined == 0 {
            absolute_error.push(f64::NAN);
            std_dev.push(f64::NAN);
            continue;
        }
        let mean_abs_err: f64 = values
            .iter()
            .map(|v| (v - pool.true_f_measure).abs())
            .sum::<f64>()
            / defined as f64;
        let mean: f64 = values.iter().sum::<f64>() / defined as f64;
        let variance: f64 = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / defined as f64;
        absolute_error.push(mean_abs_err);
        std_dev.push(variance.sqrt());
    }
    MethodCurve {
        label: method.label(),
        budgets: config.checkpoints.clone(),
        absolute_error,
        std_dev,
        defined_fraction,
    }
}

/// Run the repeated-run experiment for several methods on the same pool.
pub fn compare_methods(
    pool: &ExperimentPool,
    methods: &[Method],
    config: &CurveConfig,
) -> Vec<MethodCurve> {
    methods
        .iter()
        .map(|&m| method_curve(pool, m, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pools::direct_pool;
    use er_core::datasets::DatasetProfile;

    fn small_pool() -> ExperimentPool {
        // 15% of Abt-Buy keeps the strong class imbalance but leaves enough
        // matches (~7) that the F-estimate is defined at the early
        // checkpoints for every repeat seed, not just lucky ones.
        direct_pool(&DatasetProfile::abt_buy(), 0.15, true, 7)
    }

    #[test]
    fn linear_checkpoints_are_evenly_spaced() {
        let config = CurveConfig::with_linear_checkpoints(100, 25, 3);
        assert_eq!(config.checkpoints, vec![25, 50, 75, 100]);
        // Step of zero is coerced to 1.
        let config = CurveConfig::with_linear_checkpoints(3, 0, 1);
        assert_eq!(config.checkpoints, vec![1, 2, 3]);
    }

    #[test]
    fn curves_have_one_entry_per_checkpoint() {
        let pool = small_pool();
        let config = CurveConfig {
            checkpoints: vec![20, 50, 100],
            repeats: 4,
            alpha: 0.5,
            seed: 1,
            threads: 1,
        };
        let curve = method_curve(&pool, Method::oasis(10), &config);
        assert_eq!(curve.budgets.len(), 3);
        assert_eq!(curve.absolute_error.len(), 3);
        assert_eq!(curve.std_dev.len(), 3);
        assert_eq!(curve.defined_fraction.len(), 3);
        assert_eq!(curve.label, "OASIS 10");
        assert!(curve.final_error().is_finite());
    }

    #[test]
    fn oasis_error_shrinks_with_budget() {
        let pool = small_pool();
        let config = CurveConfig {
            checkpoints: vec![30, 400],
            repeats: 8,
            alpha: 0.5,
            seed: 3,
            threads: 2,
        };
        let curve = method_curve(&pool, Method::oasis(20), &config);
        assert!(
            curve.absolute_error[1] <= curve.absolute_error[0] + 0.02,
            "error should not grow with budget: {:?}",
            curve.absolute_error
        );
    }

    #[test]
    fn parallel_and_sequential_runs_agree() {
        let pool = small_pool();
        let base = CurveConfig {
            checkpoints: vec![25, 75],
            repeats: 6,
            alpha: 0.5,
            seed: 11,
            threads: 1,
        };
        let sequential = method_curve(&pool, Method::Passive, &base);
        let parallel = method_curve(&pool, Method::Passive, &CurveConfig { threads: 3, ..base });
        // Identical seeds per repeat → identical statistics regardless of threading.
        for (a, b) in sequential
            .absolute_error
            .iter()
            .zip(parallel.absolute_error.iter())
        {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => {}
                _ => assert!((a - b).abs() < 1e-12, "{a} vs {b}"),
            }
        }
    }

    #[test]
    fn defined_fraction_tracks_estimate_definedness() {
        // A pool with no positives of either kind: the F-measure can never be
        // defined, so every checkpoint reports a zero defined fraction and a
        // NaN error.
        let never_defined = ExperimentPool {
            pool: oasis::ScoredPool::new(vec![0.1; 50], vec![false; 50]).unwrap(),
            truth: vec![false; 50],
            true_f_measure: 0.0,
            true_precision: 0.0,
            true_recall: 0.0,
            score_threshold: 0.5,
            profile_name: "degenerate".to_string(),
        };
        let config = CurveConfig {
            checkpoints: vec![5, 20],
            repeats: 4,
            alpha: 0.5,
            seed: 5,
            threads: 1,
        };
        let curve = method_curve(&never_defined, Method::Passive, &config);
        assert_eq!(curve.defined_fraction, vec![0.0, 0.0]);
        assert!(curve.absolute_error.iter().all(|e| e.is_nan()));
        assert!(curve.first_defined_budget(0.95).is_none());

        // A balanced pool: the estimate is defined almost immediately for
        // every repeat.
        let balanced = direct_pool(&DatasetProfile::tweets100k(), 0.02, true, 13);
        let curve = method_curve(&balanced, Method::Passive, &config);
        assert!(curve.defined_fraction[1] > 0.95);
        assert_eq!(curve.first_defined_budget(0.95), Some(5));
    }

    #[test]
    fn compare_methods_returns_one_curve_per_method() {
        let pool = small_pool();
        let config = CurveConfig {
            checkpoints: vec![40],
            repeats: 2,
            alpha: 0.5,
            seed: 17,
            threads: 1,
        };
        let methods = [Method::Passive, Method::oasis(10)];
        let curves = compare_methods(&pool, &methods, &config);
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].label, "Passive");
    }
}
