//! Property-based tests of the latency histogram's structural guarantees:
//! bucket boundaries, the 2× quantile error bound, and merge associativity.

use oasis_engine::LatencyHistogram;
use proptest::prelude::*;

/// Strategy: latency samples spanning the full dynamic range, biased toward
/// the small values real request latencies live in.  (The vendored proptest
/// has no `prop_oneof!`, so a selector byte picks the regime by hand.)
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((any::<u64>(), 0u32..8), 0..200).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(raw, mode)| match mode {
                0..=3 => raw % 1_000,
                4..=6 => 1_000 + raw % 10_000_000,
                _ => raw,
            })
            .collect()
    })
}

fn build(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The true order statistic the histogram approximates: the smallest value
/// with at least `ceil(q * n)` samples at or below it.
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_value_lands_in_a_bucket_that_contains_it(value in any::<u64>()) {
        let index = LatencyHistogram::bucket_index(value);
        prop_assert!(value <= LatencyHistogram::bucket_upper_bound(index));
        if index > 0 {
            // The value is too big for the previous bucket — buckets tile
            // the range with no overlap.
            prop_assert!(value > LatencyHistogram::bucket_upper_bound(index - 1));
        }
    }

    #[test]
    fn bucket_upper_bounds_double(index in 1usize..62) {
        let lower = LatencyHistogram::bucket_upper_bound(index - 1);
        let upper = LatencyHistogram::bucket_upper_bound(index);
        // [2^(i-1), 2^i - 1]: each bucket's span is one power of two.
        prop_assert_eq!(upper, 2 * lower + 1);
    }

    #[test]
    fn quantile_is_within_2x_of_the_true_order_statistic(
        raw in samples(),
        q in 0.01f64..=1.0,
    ) {
        // The 2× guarantee is documented for values below 2^62 — the
        // saturating tail bucket spans more than one doubling.  Real
        // microsecond latencies sit ~12 orders of magnitude below the cap.
        let values: Vec<u64> = raw.into_iter().map(|v| v % (1u64 << 62)).collect();
        prop_assume!(!values.is_empty());
        let h = build(&values);
        let estimate = h.quantile(q);
        let truth = exact_quantile(&values, q);
        prop_assert!(estimate >= truth, "estimate {estimate} < true quantile {truth}");
        prop_assert!(
            estimate <= truth.saturating_mul(2),
            "estimate {estimate} > 2 × true quantile {truth}"
        );
    }

    #[test]
    fn count_sum_max_are_exact(values in samples()) {
        let h = build(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        let sum: u64 = values.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(h.sum(), sum);
        prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        // b ⊕ a == a ⊕ b
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // And merging equals recording the concatenation directly.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &build(&all));
    }
}
