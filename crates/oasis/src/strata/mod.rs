//! Stratification of the record-pair pool by similarity score.
//!
//! The paper (Section 4.2.1) uses stratification as a *parameter-reduction*
//! device: instead of estimating one oracle probability `p(1|z)` per pair, it
//! estimates one per stratum, relying on the similarity score being a good
//! proxy for the oracle probability within a stratum.
//!
//! Two stratifiers are provided:
//! * [`CsfStratifier`] — the cumulative-√F rule of Dalenius & Hodges (paper
//!   Algorithm 1), which aims for minimal intra-stratum score variance.
//! * [`EqualSizeStratifier`] — equal-count bins over the score order, the
//!   alternative mentioned from Druck & McCallum.

mod csf;
mod equal_size;

pub use csf::CsfStratifier;
pub use equal_size::EqualSizeStratifier;

use crate::error::{Error, Result};
use crate::pool::ScoredPool;

/// A partition of the pool into `K` disjoint strata.
#[derive(Debug, Clone, PartialEq)]
pub struct Strata {
    /// `allocations[k]` lists the pool indices belonging to stratum `k`.
    allocations: Vec<Vec<usize>>,
    /// `assignment[i]` is the stratum index of pool item `i` (the map `κ`).
    assignment: Vec<usize>,
    /// Stratum weights `ω_k = |P_k| / N`.
    weights: Vec<f64>,
    /// Mean similarity score per stratum.
    mean_scores: Vec<f64>,
    /// Mean predicted label per stratum (`λ_k` in the paper).
    mean_predictions: Vec<f64>,
}

impl Strata {
    /// Build the stratum summary data from raw allocations.
    ///
    /// Empty strata are removed (paper Algorithm 1, line 19).
    ///
    /// # Errors
    /// [`Error::EmptyStrata`] if every allocation is empty, or
    /// [`Error::IndexOutOfBounds`] if an allocation references an item outside
    /// the pool.
    pub fn from_allocations(pool: &ScoredPool, allocations: Vec<Vec<usize>>) -> Result<Self> {
        let non_empty: Vec<Vec<usize>> = allocations
            .into_iter()
            .filter(|stratum| !stratum.is_empty())
            .collect();
        if non_empty.is_empty() {
            return Err(Error::EmptyStrata);
        }
        let n = pool.len();
        let mut assignment = vec![usize::MAX; n];
        let mut weights = Vec::with_capacity(non_empty.len());
        let mut mean_scores = Vec::with_capacity(non_empty.len());
        let mut mean_predictions = Vec::with_capacity(non_empty.len());
        for (k, stratum) in non_empty.iter().enumerate() {
            let mut score_sum = 0.0;
            let mut pred_sum = 0.0;
            for &index in stratum {
                if index >= n {
                    return Err(Error::IndexOutOfBounds { index, len: n });
                }
                assignment[index] = k;
                score_sum += pool.score(index);
                pred_sum += f64::from(u8::from(pool.prediction(index)));
            }
            let size = stratum.len() as f64;
            weights.push(size / n as f64);
            mean_scores.push(score_sum / size);
            mean_predictions.push(pred_sum / size);
        }
        Ok(Strata {
            allocations: non_empty,
            assignment,
            weights,
            mean_scores,
            mean_predictions,
        })
    }

    /// Number of strata `K`.
    pub fn len(&self) -> usize {
        self.allocations.len()
    }

    /// Whether there are zero strata (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.allocations.is_empty()
    }

    /// Pool indices belonging to stratum `k`.
    pub fn members(&self, k: usize) -> &[usize] {
        &self.allocations[k]
    }

    /// All allocations, one `Vec<usize>` of pool indices per stratum.  Used by
    /// checkpointing to persist the exact partition; feed them back through
    /// [`Strata::from_allocations`] to rebuild identical summary statistics.
    pub fn allocations(&self) -> &[Vec<usize>] {
        &self.allocations
    }

    /// Number of items in stratum `k`.
    pub fn size(&self, k: usize) -> usize {
        self.allocations[k].len()
    }

    /// Stratum index `κ(z)` of pool item `index`, or `None` if the item was
    /// not allocated to any stratum (possible when stratifying a sub-pool).
    pub fn stratum_of(&self, index: usize) -> Option<usize> {
        match self.assignment.get(index) {
            Some(&k) if k != usize::MAX => Some(k),
            _ => None,
        }
    }

    /// Stratum weights `ω_k = |P_k| / N`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mean similarity score of each stratum.
    pub fn mean_scores(&self) -> &[f64] {
        &self.mean_scores
    }

    /// Mean predicted label `λ_k` of each stratum.
    pub fn mean_predictions(&self) -> &[f64] {
        &self.mean_predictions
    }

    /// Compute the true per-stratum match rate given full ground truth.  Used
    /// only for diagnostics (paper Figure 4), never by the samplers.
    pub fn true_match_rates(&self, truth: &[bool]) -> Vec<f64> {
        self.allocations
            .iter()
            .map(|stratum| {
                let matches = stratum.iter().filter(|&&i| truth[i]).count();
                matches as f64 / stratum.len() as f64
            })
            .collect()
    }
}

/// A strategy for partitioning a pool into strata based on similarity scores.
pub trait Stratifier {
    /// Partition `pool` into (approximately) the configured number of strata.
    fn stratify(&self, pool: &ScoredPool) -> Result<Strata>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ScoredPool {
        ScoredPool::new(
            vec![0.9, 0.8, 0.7, 0.3, 0.2, 0.1],
            vec![true, true, true, false, false, false],
        )
        .unwrap()
    }

    #[test]
    fn from_allocations_computes_summaries() {
        let p = pool();
        let strata = Strata::from_allocations(&p, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata.size(0), 3);
        assert_eq!(strata.members(1), &[3, 4, 5]);
        assert!((strata.weights()[0] - 0.5).abs() < 1e-12);
        assert!((strata.mean_scores()[0] - 0.8).abs() < 1e-12);
        assert!((strata.mean_scores()[1] - 0.2).abs() < 1e-12);
        assert!((strata.mean_predictions()[0] - 1.0).abs() < 1e-12);
        assert!((strata.mean_predictions()[1] - 0.0).abs() < 1e-12);
        assert_eq!(strata.stratum_of(0), Some(0));
        assert_eq!(strata.stratum_of(5), Some(1));
    }

    #[test]
    fn empty_strata_are_dropped() {
        let p = pool();
        let strata =
            Strata::from_allocations(&p, vec![vec![], vec![0, 1], vec![], vec![2, 3, 4, 5]])
                .unwrap();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata.size(0), 2);
        assert_eq!(strata.size(1), 4);
    }

    #[test]
    fn all_empty_is_an_error() {
        let p = pool();
        assert_eq!(
            Strata::from_allocations(&p, vec![vec![], vec![]]),
            Err(Error::EmptyStrata)
        );
    }

    #[test]
    fn out_of_bounds_allocation_is_an_error() {
        let p = pool();
        let err = Strata::from_allocations(&p, vec![vec![0, 99]]).unwrap_err();
        assert_eq!(err, Error::IndexOutOfBounds { index: 99, len: 6 });
    }

    #[test]
    fn unallocated_items_report_no_stratum() {
        let p = pool();
        let strata = Strata::from_allocations(&p, vec![vec![0, 1]]).unwrap();
        assert_eq!(strata.stratum_of(5), None);
        assert_eq!(strata.stratum_of(0), Some(0));
    }

    #[test]
    fn weights_sum_to_one_when_all_items_allocated() {
        let p = pool();
        let strata =
            Strata::from_allocations(&p, vec![vec![0], vec![1, 2], vec![3, 4, 5]]).unwrap();
        let total: f64 = strata.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn true_match_rates_match_ground_truth() {
        let p = pool();
        let strata = Strata::from_allocations(&p, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        let truth = vec![true, true, false, false, false, false];
        let rates = strata.true_match_rates(&truth);
        assert!((rates[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((rates[1] - 0.0).abs() < 1e-12);
    }
}
