//! Bench: regenerate Table 3 (CPU time per run / iteration on cora).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::table3::{run, Table3Config};

fn bench_table3(c: &mut Criterion) {
    let config = Table3Config {
        scale: 0.1,
        iterations: 2000,
        runs: 1,
        seed: 2017,
    };
    let table = run(&config);
    println!("\n{}", table.render());

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    let quick = Table3Config {
        scale: 0.05,
        iterations: 500,
        runs: 1,
        seed: 2017,
    };
    group.bench_function("time_all_methods_scale_0.05", |b| b.iter(|| run(&quick)));
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
