//! Large-pool sharded-session smoke: one logical evaluation bigger than one
//! flat sampler wants to be.  Builds a synthetic 1M-pair pool (set
//! `OASIS_SMOKE_PAIRS` to override), carves it into 64 shards behind a
//! single session, spends a label budget, and prints the merged estimate —
//! the exact AIS estimate, not an approximation, because every proposal
//! weight is corrected by its shard's routing probability at proposal time.
//!
//! CI pins the printed `f_measure` as a golden: the pool is generated from a
//! fixed seed and every step is deterministic IEEE-754 arithmetic, so the
//! line is stable across platforms.
//!
//! Run with: `cargo run --release --example sharded_session`

use oasis::oracle::GroundTruthOracle;
use oasis::samplers::{OasisConfig, SamplerMethod};
use oasis::ScoredPool;
use oasis_engine::{Engine, LabelSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic imbalanced pool plus its hidden truth: skewed calibrated
/// scores (most mass near zero — the low-prevalence regime the paper's
/// entity-resolution pools have) with the truth drawn *from* the score, so
/// predictions correlate with but don't perfectly reproduce the labels.
fn synthetic_pool(n: usize, seed: u64) -> (ScoredPool, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = Vec::with_capacity(n);
    let mut predictions = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for _ in 0..n {
        let p = rng.gen::<f64>().powi(3);
        scores.push(p);
        predictions.push(p > 0.5);
        truth.push(rng.gen_bool(p));
    }
    (ScoredPool::new(scores, predictions).unwrap(), truth)
}

fn main() {
    let pairs: usize = std::env::var("OASIS_SMOKE_PAIRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let shards = 64usize;
    let labels = 2_000usize;

    // Timings go to stderr: stdout must be byte-identical across runs (CI
    // pins it), and wall-clock is the one nondeterministic thing here.
    let start = std::time::Instant::now();
    let (pool, truth) = synthetic_pool(pairs, 2017);
    println!("Pool: {pairs} synthetic pairs");
    eprintln!("pool generated in {:.2?}", start.elapsed());

    let engine = Engine::new();
    engine.load_pool("large", pool).expect("load pool");
    let start = std::time::Instant::now();
    engine
        .create_session_sharded(
            "sharded",
            "large",
            SamplerMethod::Oasis,
            OasisConfig::default().with_strata_count(10),
            Some(shards),
            42,
            LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
        )
        .expect("create sharded session");
    println!("Session: {shards} shards, 10 strata each");
    eprintln!("session built in {:.2?}", start.elapsed());

    let session = engine.session("sharded").expect("exists");
    let start = std::time::Instant::now();
    let estimate = session.lock().step(labels).expect("run");
    let interval = session
        .lock()
        .confidence_interval(0.95)
        .expect("enough samples");
    eprintln!("{labels} labels spent in {:.2?}", start.elapsed());
    println!(
        "estimate after {labels} labels: f_measure={} precision={} recall={}",
        estimate.f_measure, estimate.precision, estimate.recall,
    );
    println!("ci95: [{}, {}]", interval.lower, interval.upper);
}
