//! Table 1: the dataset inventory.
//!
//! The paper's Table 1 lists, for each dataset, its size (number of record
//! pairs), class-imbalance ratio and number of matches.  This experiment
//! reports the published numbers alongside the same statistics measured on our
//! synthetic stand-in datasets (at a configurable scale), so the fidelity of
//! the substitution is visible at a glance.

use crate::report::{fmt_count, fmt_float, TextTable};
use er_core::datasets::{all_profiles, SyntheticDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of the reproduced Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Dataset name.
    pub name: String,
    /// Published dataset size (record pairs).
    pub published_size: u64,
    /// Published imbalance ratio.
    pub published_imbalance: f64,
    /// Published number of matches.
    pub published_matches: u64,
    /// Size of our synthetic stand-in (pairs) at the chosen scale, when a
    /// record-level generator exists for the profile.
    pub synthetic_size: Option<u64>,
    /// Imbalance ratio of the synthetic stand-in.
    pub synthetic_imbalance: Option<f64>,
    /// Number of matches in the synthetic stand-in.
    pub synthetic_matches: Option<u64>,
}

/// The reproduced Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// One row per dataset, in the paper's order.
    pub rows: Vec<Table1Row>,
    /// The pool scale the synthetic columns were generated at.
    pub scale: f64,
}

/// Generate the reproduced Table 1 at the given synthetic scale.
pub fn run(scale: f64, seed: u64) -> Table1 {
    let mut rows = Vec::new();
    for profile in all_profiles() {
        let synthetic = profile.generator_config(scale).map(|config| {
            let mut rng = StdRng::seed_from_u64(seed);
            let dataset = SyntheticDataset::generate(config, &mut rng);
            (
                dataset.pair_count() as u64,
                dataset.imbalance_ratio().unwrap_or(f64::NAN),
                dataset.match_count() as u64,
            )
        });
        rows.push(Table1Row {
            name: profile.name.to_string(),
            published_size: profile.dataset_size,
            published_imbalance: profile.dataset_imbalance,
            published_matches: profile.dataset_matches,
            synthetic_size: synthetic.map(|(s, _, _)| s),
            synthetic_imbalance: synthetic.map(|(_, i, _)| i),
            synthetic_matches: synthetic.map(|(_, _, m)| m),
        });
    }
    Table1 { rows, scale }
}

impl Table1 {
    /// Render as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Dataset",
            "Size (paper)",
            "Imb. (paper)",
            "Matches (paper)",
            "Size (ours)",
            "Imb. (ours)",
            "Matches (ours)",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.name.clone(),
                fmt_count(row.published_size),
                fmt_float(row.published_imbalance, 2),
                fmt_count(row.published_matches),
                row.synthetic_size
                    .map(fmt_count)
                    .unwrap_or_else(|| "direct-pool only".to_string()),
                row.synthetic_imbalance
                    .map(|i| fmt_float(i, 2))
                    .unwrap_or_else(|| "-".to_string()),
                row.synthetic_matches
                    .map(fmt_count)
                    .unwrap_or_else(|| "-".to_string()),
            ]);
        }
        format!(
            "Table 1: datasets (synthetic stand-ins generated at scale {:.3})\n{}",
            self.scale,
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_six_rows_in_paper_order() {
        let table = run(0.002, 1);
        assert_eq!(table.rows.len(), 6);
        assert_eq!(table.rows[0].name, "Amazon-GoogleProducts");
        assert_eq!(table.rows[5].name, "tweets100k");
        // Published numbers are carried through unchanged.
        assert_eq!(table.rows[3].published_size, 1_180_452);
        assert_eq!(table.rows[3].published_matches, 1097);
    }

    #[test]
    fn er_profiles_have_synthetic_counterparts() {
        let table = run(0.002, 2);
        for row in &table.rows {
            if row.name == "tweets100k" {
                assert!(row.synthetic_size.is_none());
            } else {
                assert!(row.synthetic_size.unwrap() > 10);
                assert!(row.synthetic_matches.unwrap() >= 1);
                assert!(row.synthetic_imbalance.unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn render_contains_every_dataset_name() {
        let table = run(0.002, 3);
        let text = table.render();
        for row in &table.rows {
            assert!(text.contains(&row.name));
        }
        assert!(text.contains("Table 1"));
    }
}
