//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use core::marker::PhantomData;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite values across a wide dynamic range (no NaN/inf: the tests
        // that want those construct them explicitly).
        let magnitude: f64 = rng.gen_range(-300.0..300.0);
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        mantissa * magnitude.exp2()
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
