//! Bench: `oasis-engine` session throughput (steps/sec) for concurrent
//! sessions driven by the scoped-thread worker pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::datasets::DatasetProfile;
use experiments::pools::direct_pool;
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::OasisConfig;
use oasis_engine::{Engine, LabelSource, SessionJob};

const SESSIONS: usize = 8;
const STEPS: usize = 500;

/// Build an engine with `SESSIONS` fresh sessions over one shared pool.
fn build_engine(pool: &experiments::pools::ExperimentPool) -> (Engine, Vec<SessionJob>) {
    let engine = Engine::new();
    engine.load_pool("cora", pool.pool.clone()).unwrap();
    let config = OasisConfig::default().with_strata_count(30);
    let mut jobs = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS as u64 {
        let id = format!("s{i}");
        engine
            .create_session(
                &id,
                "cora",
                config.clone(),
                2017 + i,
                LabelSource::GroundTruth(GroundTruthOracle::new(pool.truth.clone())),
            )
            .unwrap();
        jobs.push(SessionJob::Steps {
            session: id,
            steps: STEPS,
        });
    }
    (engine, jobs)
}

fn bench_engine_throughput(c: &mut Criterion) {
    let pool = direct_pool(&DatasetProfile::cora(), 0.05, true, 2017);

    // One-off headline number: total steps / wall-clock at each worker count.
    for workers in [1usize, 2, 4, 8] {
        let (engine, jobs) = build_engine(&pool);
        let start = std::time::Instant::now();
        engine.run_parallel(&jobs, workers).unwrap();
        let seconds = start.elapsed().as_secs_f64();
        println!(
            "engine throughput: {SESSIONS} sessions x {STEPS} steps, {workers} workers -> {:.0} steps/s",
            (SESSIONS * STEPS) as f64 / seconds
        );
    }

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        group.bench_function(
            BenchmarkId::new(format!("{SESSIONS}_sessions"), format!("{workers}_workers")),
            |b| {
                b.iter(|| {
                    // Session state advances across iterations (sessions are
                    // long-lived by design), so rebuild per measurement to
                    // keep the workload comparable.
                    let (engine, jobs) = build_engine(&pool);
                    engine.run_parallel(&jobs, workers).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
