//! Planning a crowdsourcing budget: how many labels does each sampling method
//! need before its F-measure estimate is trustworthy?
//!
//! This example sweeps the label budget on a strongly imbalanced pool
//! (Amazon-GoogleProducts profile) and reports, for Passive, Stratified,
//! static IS and OASIS, the expected absolute error at each budget — the
//! numbers a team would use to decide how much annotation to buy.  It also
//! demonstrates evaluation against a *noisy* crowd oracle.
//!
//! Run with: `cargo run --release --example crowdsourcing_budget`

use er_core::datasets::DatasetProfile;
use experiments::curves::{compare_methods, CurveConfig};
use experiments::methods::Method;
use experiments::pools::direct_pool;
use oasis::oracle::{NoisyOracle, Oracle};
use oasis::samplers::{InteractiveSampler, OasisConfig, OasisSampler, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let profile = DatasetProfile::amazon_google();
    let pool = direct_pool(&profile, 0.05, true, 11);
    println!(
        "Pool: {} pairs from the {} profile, true F1/2 = {:.3}\n",
        pool.len(),
        pool.profile_name,
        pool.true_f_measure
    );

    // Sweep budgets with a modest number of repeats (raise for smoother numbers).
    let config = CurveConfig {
        checkpoints: vec![50, 100, 200, 400, 800],
        repeats: 40,
        alpha: 0.5,
        seed: 3,
        threads: 4,
    };
    let methods = [
        Method::Passive,
        Method::Stratified { strata: 30 },
        Method::ImportanceSampling,
        Method::oasis(30),
    ];
    let curves = compare_methods(&pool, &methods, &config);

    println!(
        "Expected |F̂ − F| by label budget (averaged over {} repeats):",
        config.repeats
    );
    print!("{:>10}", "budget");
    for curve in &curves {
        print!("{:>12}", curve.label);
    }
    println!();
    for (i, budget) in config.checkpoints.iter().enumerate() {
        print!("{budget:>10}");
        for curve in &curves {
            let err = curve.absolute_error[i];
            if err.is_nan() {
                print!("{:>12}", "undefined");
            } else {
                print!("{err:>12.4}");
            }
        }
        println!();
    }

    // Bonus: the oracle need not be perfect.  Evaluate once against a noisy
    // crowd that flips 5% of labels; OASIS estimates the *oracle-defined*
    // F-measure, which is the operational quantity a crowd can measure.
    let mut rng = StdRng::seed_from_u64(19);
    let mut crowd = NoisyOracle::from_ground_truth(&pool.truth, 0.05).expect("valid error rate");
    let mut sampler = OasisSampler::new(&pool.pool, OasisConfig::default().with_strata_count(30))
        .expect("valid configuration");
    sampler
        .run_until_budget(&pool.pool, &mut crowd, &mut rng, 800, 1_000_000)
        .expect("sampling succeeds");
    println!(
        "\nWith a noisy crowd oracle (5% label errors), OASIS estimates F1/2 ≈ {:.3} after {} labels.",
        sampler.estimate().f_measure,
        crowd.labels_consumed()
    );
}
