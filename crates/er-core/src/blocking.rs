//! Blocking: cheap candidate-pair generation.
//!
//! Blocking reduces the quadratic pair space to a manageable candidate set by
//! a linear scan over each source (paper Section 2.1).  Two classic schemes
//! are implemented:
//!
//! * [`token_blocking`] — pairs share a candidate block if they share at least
//!   one token of the blocking field.
//! * [`sorted_neighbourhood`] — sort both sources by a key and pair records
//!   that fall within a sliding window.
//!
//! The paper cautions (Section 1, practice (iii)) that evaluating only within
//! blocks biases estimates; blocking here is provided as part of the ER
//! substrate, while the evaluation pools are drawn from the full pair space.

use crate::pairs::RecordPair;
use crate::record::Record;
use std::collections::{HashMap, HashSet};

/// Token blocking on a text field: a candidate pair is generated whenever two
/// records (one per source) share at least one whitespace token of the field
/// at `field_index`.
pub fn token_blocking(
    source_a: &[Record],
    source_b: &[Record],
    field_index: usize,
) -> Vec<RecordPair> {
    let mut blocks: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, record) in source_a.iter().enumerate() {
        if let Some(text) = record.value(field_index).as_text() {
            for token in text.split_whitespace() {
                blocks.entry(token).or_default().push(i);
            }
        }
    }
    let mut seen: HashSet<RecordPair> = HashSet::new();
    let mut candidates = Vec::new();
    for (j, record) in source_b.iter().enumerate() {
        if let Some(text) = record.value(field_index).as_text() {
            for token in text.split_whitespace() {
                if let Some(as_in_block) = blocks.get(token) {
                    for &i in as_in_block {
                        let pair = RecordPair { a: i, b: j };
                        if seen.insert(pair) {
                            candidates.push(pair);
                        }
                    }
                }
            }
        }
    }
    candidates
}

/// Sorted-neighbourhood blocking: sort the union of both sources by the value
/// of the field at `field_index` and emit all cross-source pairs that fall
/// within a sliding window of the given size.
pub fn sorted_neighbourhood(
    source_a: &[Record],
    source_b: &[Record],
    field_index: usize,
    window: usize,
) -> Vec<RecordPair> {
    assert!(window >= 2, "window must cover at least two records");
    // (sort key, source flag, index within source); source flag false = A.
    let mut entries: Vec<(String, bool, usize)> = Vec::new();
    for (i, record) in source_a.iter().enumerate() {
        entries.push((record.value(field_index).to_string(), false, i));
    }
    for (j, record) in source_b.iter().enumerate() {
        entries.push((record.value(field_index).to_string(), true, j));
    }
    entries.sort();
    let mut seen: HashSet<RecordPair> = HashSet::new();
    let mut candidates = Vec::new();
    for start in 0..entries.len() {
        let end = (start + window).min(entries.len());
        for i in start..end {
            for j in (i + 1)..end {
                let (ref _ka, sa, ia) = entries[i];
                let (ref _kb, sb, ib) = entries[j];
                if sa != sb {
                    let pair = if sa {
                        RecordPair { a: ib, b: ia }
                    } else {
                        RecordPair { a: ia, b: ib }
                    };
                    if seen.insert(pair) {
                        candidates.push(pair);
                    }
                }
            }
        }
    }
    candidates
}

/// Pair-completeness of a candidate set: the fraction of true matches that are
/// covered by the candidates (the recall ceiling that blocking imposes).
pub fn pair_completeness(candidates: &[RecordPair], true_matches: &HashSet<RecordPair>) -> f64 {
    if true_matches.is_empty() {
        return 1.0;
    }
    let covered = true_matches
        .iter()
        .filter(|m| candidates.contains(m))
        .count();
    covered as f64 / true_matches.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FieldValue;

    fn text_record(id: u64, name: &str) -> Record {
        Record::new(id, vec![FieldValue::Text(name.into())])
    }

    fn sources() -> (Vec<Record>, Vec<Record>) {
        let a = vec![
            text_record(0, "canon powershot a520"),
            text_record(1, "hp laserjet 1020"),
            text_record(2, "sony cybershot w70"),
        ];
        let b = vec![
            text_record(0, "canon power shot a520"),
            text_record(1, "sony cybershot dsc w70"),
            text_record(2, "dell monitor 24"),
        ];
        (a, b)
    }

    #[test]
    fn token_blocking_finds_shared_token_pairs() {
        let (a, b) = sources();
        let candidates = token_blocking(&a, &b, 0);
        // canon↔canon, sony↔sony (via "sony"/"cybershot"/"w70"), but not hp↔dell.
        assert!(candidates.contains(&RecordPair { a: 0, b: 0 }));
        assert!(candidates.contains(&RecordPair { a: 2, b: 1 }));
        assert!(!candidates.contains(&RecordPair { a: 1, b: 2 }));
        // Far fewer candidates than the full 3×3 product minus... well, at most 9.
        assert!(candidates.len() < 9);
        // No duplicates.
        let unique: HashSet<_> = candidates.iter().collect();
        assert_eq!(unique.len(), candidates.len());
    }

    #[test]
    fn token_blocking_missing_fields_are_skipped() {
        let a = vec![Record::new(0, vec![FieldValue::Missing])];
        let b = vec![text_record(0, "anything")];
        assert!(token_blocking(&a, &b, 0).is_empty());
    }

    #[test]
    fn sorted_neighbourhood_pairs_nearby_keys() {
        let (a, b) = sources();
        let candidates = sorted_neighbourhood(&a, &b, 0, 3);
        assert!(candidates.contains(&RecordPair { a: 0, b: 0 }));
        let unique: HashSet<_> = candidates.iter().collect();
        assert_eq!(unique.len(), candidates.len());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn sorted_neighbourhood_rejects_tiny_window() {
        let (a, b) = sources();
        sorted_neighbourhood(&a, &b, 0, 1);
    }

    #[test]
    fn larger_windows_generate_supersets() {
        let (a, b) = sources();
        let small: HashSet<RecordPair> = sorted_neighbourhood(&a, &b, 0, 2).into_iter().collect();
        let large: HashSet<RecordPair> = sorted_neighbourhood(&a, &b, 0, 4).into_iter().collect();
        assert!(small.is_subset(&large));
        assert!(large.len() >= small.len());
    }

    #[test]
    fn pair_completeness_measures_match_coverage() {
        let (a, b) = sources();
        let candidates = token_blocking(&a, &b, 0);
        let mut truth = HashSet::new();
        truth.insert(RecordPair { a: 0, b: 0 });
        truth.insert(RecordPair { a: 2, b: 1 });
        assert_eq!(pair_completeness(&candidates, &truth), 1.0);
        truth.insert(RecordPair { a: 1, b: 2 }); // not covered by blocking
        assert!((pair_completeness(&candidates, &truth) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pair_completeness(&candidates, &HashSet::new()), 1.0);
    }
}
