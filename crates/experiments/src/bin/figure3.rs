//! Regenerate Figure 3 (calibrated vs uncalibrated scores for IS and OASIS).
//!
//! Usage: `cargo run --release -p experiments --bin figure3 -- --scale=0.1 --repeats=100`

use experiments::figure3::{run, Figure3Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = Figure3Config {
        scale: experiments::parse_arg(&args, "scale", 0.1f64),
        repeats: experiments::parse_arg(&args, "repeats", 100usize),
        budget_fraction: experiments::parse_arg(&args, "budget-fraction", 0.1f64),
        checkpoints: experiments::parse_arg(&args, "checkpoints", 10usize),
        seed: experiments::parse_arg(&args, "seed", 2017u64),
        threads: experiments::parse_arg(&args, "threads", 4usize),
    };
    let figure = run(&config);
    println!("{}", figure.render());
    println!("\nDegradation (uncalibrated minus calibrated final abs. err.):");
    for (dataset, method, delta) in figure.calibration_degradation() {
        println!("  {dataset} / {method}: {delta:+.4}");
    }
}
