//! Scripted fault injection for the durable store.
//!
//! [`FaultyStore`] wraps any [`CheckpointStore`] and injects failures at
//! chosen operation indices: transient I/O errors (succeed on retry),
//! permanent ENOSPC-style errors, and torn writes that leave a partial
//! trailing WAL record behind — the exact shapes the engine's retry,
//! error-taxonomy and truncate-and-warn recovery paths exist to absorb.
//! Faults are scripted per operation kind ("fail the 2nd `append_wal`"), so
//! tests pick crash points without counting unrelated store traffic.
//!
//! The wrapper is deliberately part of the library (not test-only code): it
//! is the reference implementation of how a flaky backend is allowed to
//! fail, and operators can wire it up to rehearse recovery in staging.

use crate::error::{EngineError, EngineResult};
use crate::metrics::{Counter, MetricsRegistry};
use crate::store::CheckpointStore;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How an injected fault behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails once with [`EngineError::StoreTransient`] and is
    /// *not* applied; a retry goes through to the inner store.
    Transient,
    /// The operation fails permanently ("no space left on device") and is
    /// not applied.
    Enospc,
    /// A torn write.  For `append_wal` the inner store receives a *prefix*
    /// of the record — the partial trailing line a crash mid-append leaves
    /// behind.  For `put_checkpoint` nothing is applied (tmp+rename means a
    /// torn checkpoint write leaves the previous checkpoint intact).  Other
    /// operations fail without side effects.
    Torn,
}

/// The store operations faults can be scripted against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// [`CheckpointStore::put_checkpoint`].
    PutCheckpoint,
    /// [`CheckpointStore::load_checkpoint`].
    LoadCheckpoint,
    /// [`CheckpointStore::append_wal`].
    AppendWal,
    /// [`CheckpointStore::read_wal`].
    ReadWal,
    /// [`CheckpointStore::truncate_wal`].
    TruncateWal,
    /// [`CheckpointStore::list_sessions`].
    ListSessions,
    /// [`CheckpointStore::remove`].
    Remove,
}

impl StoreOp {
    fn as_str(self) -> &'static str {
        match self {
            StoreOp::PutCheckpoint => "put_checkpoint",
            StoreOp::LoadCheckpoint => "load_checkpoint",
            StoreOp::AppendWal => "append_wal",
            StoreOp::ReadWal => "read_wal",
            StoreOp::TruncateWal => "truncate_wal",
            StoreOp::ListSessions => "list_sessions",
            StoreOp::Remove => "remove",
        }
    }
}

#[derive(Debug)]
struct FaultState {
    /// Scripted faults keyed by `(op, zero-based index among calls of that
    /// op)`.  One-shot: a fault is removed when it fires.
    plan: HashMap<(StoreOp, u64), FaultKind>,
    /// How many calls of each op have been seen so far.
    seen: HashMap<StoreOp, u64>,
}

/// A [`CheckpointStore`] wrapper that injects scripted faults.
#[derive(Debug)]
pub struct FaultyStore {
    inner: Arc<dyn CheckpointStore>,
    state: Mutex<FaultState>,
    injected: AtomicU64,
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
}

impl FaultyStore {
    /// Wrap `inner` with an empty fault plan (fully transparent until faults
    /// are scripted).
    pub fn new(inner: Arc<dyn CheckpointStore>) -> Self {
        FaultyStore {
            inner,
            state: Mutex::new(FaultState {
                plan: HashMap::new(),
                seen: HashMap::new(),
            }),
            injected: AtomicU64::new(0),
            metrics: Mutex::new(None),
        }
    }

    /// Script `kind` to fire on the `index`-th (zero-based) call of `op`.
    /// Later scripts for the same `(op, index)` replace earlier ones.
    pub fn fail_nth(&self, op: StoreOp, index: u64, kind: FaultKind) {
        self.state.lock().plan.insert((op, index), kind);
    }

    /// Builder form of [`FaultyStore::fail_nth`].
    pub fn with_fault(self, op: StoreOp, index: u64, kind: FaultKind) -> Self {
        self.fail_nth(op, index, kind);
        self
    }

    /// Report injections to `registry` as [`Counter::FaultInjected`].
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        *self.metrics.lock() = Some(registry);
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// How many calls of `op` the wrapper has seen (useful when scripting a
    /// fault relative to traffic that already happened).
    pub fn calls(&self, op: StoreOp) -> u64 {
        self.state.lock().seen.get(&op).copied().unwrap_or(0)
    }

    /// Advance the per-op call counter and pop a scripted fault, if any.
    fn gate(&self, op: StoreOp) -> Option<FaultKind> {
        let fault = {
            let mut state = self.state.lock();
            let index = state.seen.entry(op).or_insert(0);
            let at = *index;
            *index += 1;
            state.plan.remove(&(op, at))
        };
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
            if let Some(metrics) = self.metrics.lock().as_ref() {
                metrics.incr(Counter::FaultInjected);
            }
        }
        fault
    }

    fn fail(op: StoreOp, kind: FaultKind) -> EngineError {
        match kind {
            FaultKind::Transient => EngineError::StoreTransient(format!(
                "injected transient I/O error on {}",
                op.as_str()
            )),
            FaultKind::Enospc => EngineError::Store(format!(
                "injected ENOSPC on {}: no space left on device",
                op.as_str()
            )),
            FaultKind::Torn => {
                EngineError::Store(format!("injected torn write on {}", op.as_str()))
            }
        }
    }
}

impl CheckpointStore for FaultyStore {
    fn put_checkpoint(&self, session_id: &str, document: &str) -> EngineResult<()> {
        match self.gate(StoreOp::PutCheckpoint) {
            // Torn checkpoint writes leave the inner store untouched: the
            // tmp+rename contract says a crash mid-write preserves the
            // previous checkpoint.
            Some(kind) => Err(Self::fail(StoreOp::PutCheckpoint, kind)),
            None => self.inner.put_checkpoint(session_id, document),
        }
    }

    fn load_checkpoint(&self, session_id: &str) -> EngineResult<Option<String>> {
        match self.gate(StoreOp::LoadCheckpoint) {
            Some(kind) => Err(Self::fail(StoreOp::LoadCheckpoint, kind)),
            None => self.inner.load_checkpoint(session_id),
        }
    }

    fn append_wal(&self, session_id: &str, line: &str) -> EngineResult<()> {
        match self.gate(StoreOp::AppendWal) {
            Some(FaultKind::Torn) => {
                // Crash mid-append: a prefix of the record reaches the log,
                // then the write "fails".  Replay must truncate-and-warn.
                let torn = &line[..line.len() / 2];
                let _ = self.inner.append_wal(session_id, torn);
                Err(Self::fail(StoreOp::AppendWal, FaultKind::Torn))
            }
            Some(kind) => Err(Self::fail(StoreOp::AppendWal, kind)),
            None => self.inner.append_wal(session_id, line),
        }
    }

    fn read_wal(&self, session_id: &str) -> EngineResult<Vec<String>> {
        match self.gate(StoreOp::ReadWal) {
            Some(kind) => Err(Self::fail(StoreOp::ReadWal, kind)),
            None => self.inner.read_wal(session_id),
        }
    }

    fn truncate_wal(&self, session_id: &str) -> EngineResult<()> {
        match self.gate(StoreOp::TruncateWal) {
            Some(kind) => Err(Self::fail(StoreOp::TruncateWal, kind)),
            None => self.inner.truncate_wal(session_id),
        }
    }

    fn list_sessions(&self) -> EngineResult<Vec<String>> {
        match self.gate(StoreOp::ListSessions) {
            Some(kind) => Err(Self::fail(StoreOp::ListSessions, kind)),
            None => self.inner.list_sessions(),
        }
    }

    fn remove(&self, session_id: &str) -> EngineResult<()> {
        match self.gate(StoreOp::Remove) {
            Some(kind) => Err(Self::fail(StoreOp::Remove, kind)),
            None => self.inner.remove(session_id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FsCheckpointStore;
    use std::fs;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("oasis-fault-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn faults_fire_once_at_their_scripted_index() {
        let dir = scratch_dir("index");
        let inner: Arc<dyn CheckpointStore> = Arc::new(FsCheckpointStore::open(&dir).unwrap());
        let store = FaultyStore::new(inner)
            .with_fault(StoreOp::AppendWal, 1, FaultKind::Transient)
            .with_fault(StoreOp::PutCheckpoint, 0, FaultKind::Enospc);

        let err = store.put_checkpoint("s", "{}").unwrap_err();
        assert!(matches!(err, EngineError::Store(_)), "{err}");
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        // One-shot: the next call goes through.
        store.put_checkpoint("s", "{}").unwrap();

        store.append_wal("s", "a").unwrap();
        let err = store.append_wal("s", "b").unwrap_err();
        assert!(matches!(err, EngineError::StoreTransient(_)), "{err}");
        store.append_wal("s", "b").unwrap();
        assert_eq!(store.read_wal("s").unwrap(), vec!["a", "b"]);
        assert_eq!(store.injected(), 2);
        assert_eq!(store.calls(StoreOp::AppendWal), 3);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_leaves_a_partial_trailing_line() {
        let dir = scratch_dir("torn");
        let inner: Arc<dyn CheckpointStore> = Arc::new(FsCheckpointStore::open(&dir).unwrap());
        let store = FaultyStore::new(inner).with_fault(StoreOp::AppendWal, 1, FaultKind::Torn);
        let metrics = Arc::new(MetricsRegistry::new());
        store.attach_metrics(Arc::clone(&metrics));

        store
            .append_wal("s", "{\"seq\":\"0\",\"op\":\"step\",\"steps\":1}")
            .unwrap();
        let err = store
            .append_wal("s", "{\"seq\":\"1\",\"op\":\"step\",\"steps\":2}")
            .unwrap_err();
        assert!(matches!(err, EngineError::Store(_)), "{err}");

        let lines = store.read_wal("s").unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"seq\":\"0\",\"op\":\"step\",\"steps\":1}");
        assert!(
            crate::wal::WalRecord::parse(&lines[1]).is_err(),
            "the torn tail must not parse: {:?}",
            lines[1]
        );
        assert_eq!(metrics.counter(Counter::FaultInjected), 1);

        let _ = fs::remove_dir_all(&dir);
    }
}
