//! Integration tests for the epoll reactor (`oasis_engine::reactor`).
//!
//! The contract under test: the evented server speaks *exactly* the same
//! wire protocol as the blocking path (byte-identical responses to the CI
//! smoke script, regardless of how the bytes are sliced across reads), and
//! its resource bounds — line cap, write-buffer watermark, connection cap —
//! degrade service gracefully instead of wedging the loop.
#![cfg(target_os = "linux")]

use oasis_engine::reactor::{serve_listener_evented_with_config, ReactorConfig};
use oasis_engine::server::serve_lines;
use oasis_engine::{ClientPolicy, Engine};
use proptest::prelude::*;
use std::io::{BufRead as _, BufReader, Cursor, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

const SMOKE_SCRIPT: &str = include_str!("smoke/session.jsonl");

/// Connect with retry (the server thread may not be accepting yet) and a
/// read timeout so a regression hangs a test, not the whole suite.
fn connect(addr: SocketAddr) -> TcpStream {
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(stream) => break stream,
            Err(_) => std::thread::yield_now(),
        }
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Stop an evented server by issuing `shutdown` on a fresh connection.
/// The auth preamble covers guarded servers (every test policy uses the
/// token `sesame`); unguarded servers answer it and carry on.
fn send_shutdown(addr: SocketAddr) {
    let mut stream = connect(addr);
    stream
        .write_all(b"{\"cmd\":\"auth\",\"token\":\"sesame\"}\n{\"cmd\":\"shutdown\"}\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let _ = reader.read_line(&mut line);
    line.clear();
    let _ = reader.read_line(&mut line);
}

/// Run `body` against an evented server over a fresh engine, shutting the
/// server down afterwards.  Returns the engine for metric assertions.
fn with_evented_server<F>(config: ReactorConfig, policy: Option<ClientPolicy>, body: F) -> Engine
where
    F: FnOnce(SocketAddr),
{
    let engine = Engine::new();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    crossbeam::thread::scope(|scope| {
        let engine = &engine;
        let policy = policy.as_ref();
        let config = &config;
        let server = scope.spawn(move |_| {
            serve_listener_evented_with_config(engine, listener, None, policy, config)
        });
        body(addr);
        send_shutdown(addr);
        server.join().unwrap().unwrap();
    })
    .unwrap();
    engine
}

/// The blocking path's responses to a script — the parity reference.
fn blocking_reference(script: &[u8]) -> Vec<u8> {
    let engine = Engine::new();
    let mut output = Vec::new();
    serve_lines(&engine, Cursor::new(script.to_vec()), &mut output).unwrap();
    output
}

#[test]
fn smoke_script_responses_are_byte_identical_to_the_blocking_path() {
    let reference = blocking_reference(SMOKE_SCRIPT.as_bytes());

    let engine = Engine::new();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    crossbeam::thread::scope(|scope| {
        let engine = &engine;
        let server = scope.spawn(move |_| {
            serve_listener_evented_with_config(
                engine,
                listener,
                None,
                None,
                &ReactorConfig::default(),
            )
        });
        // The smoke script ends with `shutdown`, so the server exits and
        // the client reads responses until EOF.
        let mut stream = connect(addr);
        stream.write_all(SMOKE_SCRIPT.as_bytes()).unwrap();
        let mut evented = Vec::new();
        stream.read_to_end(&mut evented).unwrap();
        server.join().unwrap().unwrap();

        assert_eq!(
            String::from_utf8_lossy(&evented),
            String::from_utf8_lossy(&reference),
            "evented and blocking transports must be wire-identical"
        );
    })
    .unwrap();
}

#[test]
fn final_unterminated_line_is_answered_like_the_blocking_path() {
    // The blocking path answers a final line with no trailing newline; the
    // reactor must do the same when the peer half-closes mid-line.
    let script = b"{\"cmd\":\"sessions\"}\n{\"cmd\":\"sessions\"}";
    let reference = blocking_reference(script);
    assert_eq!(reference.iter().filter(|&&b| b == b'\n').count(), 2);

    with_evented_server(ReactorConfig::default(), None, |addr| {
        let mut stream = connect(addr);
        stream.write_all(script).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut evented = Vec::new();
        stream.read_to_end(&mut evented).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&evented),
            String::from_utf8_lossy(&reference)
        );
    });
}

#[test]
fn slowloris_client_does_not_starve_concurrent_clients() {
    const FAN_OUT: usize = 100;
    let engine = with_evented_server(ReactorConfig::default(), None, |addr| {
        crossbeam::thread::scope(|scope| {
            // A slowloris client dribbles one request byte at a time, the
            // connection held open throughout.
            let slow = scope.spawn(move |_| {
                let mut stream = connect(addr);
                for &byte in b"{\"cmd\":\"sessions\"}\n" {
                    stream.write_all(&[byte]).unwrap();
                    stream.flush().unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                }
                let mut line = String::new();
                BufReader::new(stream).read_line(&mut line).unwrap();
                assert!(line.contains(r#""ok":true"#), "{line}");
            });
            // Meanwhile a fan-out of normal clients all complete round
            // trips — the reactor never blocks on the slow one.
            let mut clients = Vec::new();
            for _ in 0..FAN_OUT {
                clients.push(scope.spawn(move |_| {
                    let mut stream = connect(addr);
                    stream.write_all(b"{\"cmd\":\"sessions\"}\n").unwrap();
                    let mut line = String::new();
                    BufReader::new(stream).read_line(&mut line).unwrap();
                    assert!(line.contains(r#""ok":true"#), "{line}");
                }));
            }
            for client in clients {
                client.join().unwrap();
            }
            slow.join().unwrap();
        })
        .unwrap();
    });
    assert!(engine.metrics().counter(oasis_engine::Counter::Connection) >= (FAN_OUT + 1) as u64);
}

#[test]
fn overlong_lines_get_the_structured_error_and_the_connection_survives() {
    let config = ReactorConfig {
        max_line_bytes: 64,
        ..ReactorConfig::default()
    };
    let engine = with_evented_server(config, None, |addr| {
        let mut stream = connect(addr);
        // 200 bytes of junk without a newline — crosses the 64-byte cap
        // mid-line, so the error must arrive *before* the newline does.
        stream.write_all(&[b'x'; 200]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""kind":"line_too_long""#), "{line}");
        // The rest of the overlong line is silently discarded…
        stream.write_all(&[b'y'; 100]).unwrap();
        stream.write_all(b"\n").unwrap();
        // …and the connection keeps serving.
        stream.write_all(b"{\"cmd\":\"sessions\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""ok":true"#), "{line}");
    });
    assert_eq!(
        engine.metrics().counter(oasis_engine::Counter::LineTooLong),
        1
    );
}

#[test]
fn write_backpressure_pauses_reading_without_blocking_other_clients() {
    const PIPELINED: usize = 200;
    let config = ReactorConfig {
        // A tiny watermark so a non-draining client trips backpressure
        // after a handful of responses.
        max_write_buffer: 1024,
        ..ReactorConfig::default()
    };
    with_evented_server(config, None, |addr| {
        // Client A pipelines requests without reading any responses.
        let mut hog = connect(addr);
        let mut batch = Vec::new();
        for _ in 0..PIPELINED {
            batch.extend_from_slice(b"{\"cmd\":\"sessions\"}\n");
        }
        hog.write_all(&batch).unwrap();
        // Client B still gets prompt service while A is backpressured.
        let started = Instant::now();
        let mut other = connect(addr);
        other.write_all(b"{\"cmd\":\"sessions\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(other).read_line(&mut line).unwrap();
        assert!(line.contains(r#""ok":true"#), "{line}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "a backpressured connection must not stall the reactor"
        );
        // Once A drains, every pipelined response arrives in order.
        let mut responses = 0usize;
        let mut reader = BufReader::new(hog);
        let mut response = String::new();
        while responses < PIPELINED {
            response.clear();
            let n = reader.read_line(&mut response).unwrap();
            assert!(n > 0, "EOF after {responses} responses");
            assert!(response.contains(r#""ok":true"#), "{response}");
            responses += 1;
        }
    });
}

#[test]
fn auth_state_is_per_connection() {
    let policy = ClientPolicy::new().with_auth_token("sesame");
    with_evented_server(ReactorConfig::default(), Some(policy), |addr| {
        let mut authed = connect(addr);
        authed
            .write_all(b"{\"cmd\":\"auth\",\"token\":\"sesame\"}\n{\"cmd\":\"sessions\"}\n")
            .unwrap();
        let mut reader = BufReader::new(authed);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""ok":true"#), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""ok":true"#), "{line}");

        // A second connection does not inherit the first one's auth.
        let mut fresh = connect(addr);
        fresh.write_all(b"{\"cmd\":\"sessions\"}\n").unwrap();
        line.clear();
        BufReader::new(fresh).read_line(&mut line).unwrap();
        assert!(line.contains(r#""kind":"unauthorized""#), "{line}");
    });
}

#[test]
fn connection_cap_parks_new_clients_in_the_backlog_until_a_slot_frees() {
    let config = ReactorConfig {
        max_connections: 2,
        ..ReactorConfig::default()
    };
    with_evented_server(config, None, |addr| {
        let first = connect(addr);
        let mut second = connect(addr);
        // Prove both slots are live.
        second.write_all(b"{\"cmd\":\"sessions\"}\n").unwrap();
        let mut line = String::new();
        let mut second_reader = BufReader::new(second.try_clone().unwrap());
        second_reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""ok":true"#), "{line}");

        // The third client connects (kernel backlog) but is not accepted
        // while the cap is held; dropping a connection frees its slot and
        // the parked client gets served.
        let mut third = connect(addr);
        third.write_all(b"{\"cmd\":\"sessions\"}\n").unwrap();
        drop(first);
        line.clear();
        BufReader::new(third).read_line(&mut line).unwrap();
        assert!(line.contains(r#""ok":true"#), "{line}");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Framing is independent of packetisation: however the script's bytes
    /// are sliced across writes (including splits inside a request line and
    /// inside multi-byte UTF-8), the responses are byte-identical to the
    /// blocking path over the same script.
    #[test]
    fn responses_are_invariant_under_arbitrary_packetisation(
        cuts in prop::collection::vec(0usize..200, 1..6),
    ) {
        let script = b"{\"cmd\":\"load_pool\",\"pool\":\"p\",\"scores\":[0.9,0.4],\"predictions\":[true,false]}\n\
                       {\"cmd\":\"create_session\",\"session\":\"s\",\"pool\":\"p\",\"seed\":7,\"truth\":[true,false]}\n\
                       {\"cmd\":\"step\",\"session\":\"s\",\"steps\":5}\n\
                       {\"cmd\":\"estimate\",\"session\":\"s\"}\n";
        let reference = blocking_reference(script);

        // Sorted, deduped cut points inside the script.
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % script.len()).collect();
        cuts.sort_unstable();
        cuts.dedup();

        with_evented_server(ReactorConfig::default(), None, |addr| {
            let mut stream = connect(addr);
            stream.set_nodelay(true).unwrap();
            let mut start = 0;
            for cut in cuts.iter().chain(std::iter::once(&script.len())) {
                if *cut > start {
                    stream.write_all(&script[start..*cut]).unwrap();
                    stream.flush().unwrap();
                    // Give the reactor a chance to observe the partial
                    // chunk as its own read.
                    std::thread::sleep(Duration::from_millis(1));
                    start = *cut;
                }
            }
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut evented = Vec::new();
            stream.read_to_end(&mut evented).unwrap();
            assert_eq!(
                String::from_utf8_lossy(&evented),
                String::from_utf8_lossy(&reference)
            );
        });
    }
}
