//! The bias-corrected AIS estimator of the F-measure (paper Definition 5).
//!
//! The estimator accumulates importance-weighted sums of the numerator
//! (`ℓ·ℓ̂`) and denominator components (`ℓ̂` and `ℓ`) of Eqn. 3,
//!
//! ```text
//!           Σ_t w_t ℓ_t ℓ̂_t
//! F̂_α = ─────────────────────────────────
//!        α Σ_t w_t ℓ̂_t + (1−α) Σ_t w_t ℓ_t
//! ```
//!
//! which also yields the weighted precision (`α = 1`) and recall (`α = 0`).
//! Passive sampling is the special case of unit weights.

use crate::error::{Error, Result};
use crate::measures::Measures;
use serde::{Deserialize, Serialize};

/// A point estimate of the ER evaluation measures plus sampling metadata.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Estimated α-weighted F-measure.  `NaN` while undefined (no weighted
    /// positives observed yet).
    pub f_measure: f64,
    /// Estimated precision.  `NaN` while undefined.
    pub precision: f64,
    /// Estimated recall.  `NaN` while undefined.
    pub recall: f64,
    /// The α the F-measure was computed at.
    pub alpha: f64,
    /// Number of sampling iterations that produced this estimate.
    pub iterations: usize,
}

impl Estimate {
    /// Whether the F-measure is currently well defined.
    pub fn is_defined(&self) -> bool {
        self.f_measure.is_finite()
    }

    /// Convert to a [`Measures`] value, mapping undefined entries to 0.
    pub fn to_measures(&self) -> Measures {
        Measures {
            precision: if self.precision.is_finite() {
                self.precision
            } else {
                0.0
            },
            recall: if self.recall.is_finite() {
                self.recall
            } else {
                0.0
            },
            f_measure: if self.f_measure.is_finite() {
                self.f_measure
            } else {
                0.0
            },
            alpha: self.alpha,
        }
    }
}

/// Accumulator for the adaptive importance sampling estimator of Eqn. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AisEstimator {
    alpha: f64,
    /// Σ w·ℓ·ℓ̂ — weighted true positives.
    weighted_tp: f64,
    /// Σ w·ℓ̂ — weighted predicted positives.
    weighted_predicted: f64,
    /// Σ w·ℓ — weighted actual positives.
    weighted_actual: f64,
    /// Σ w — total weight (for the sample-average normalisation).
    total_weight: f64,
    /// Σ w² — second moment of the weights, feeding the ground-truth-free
    /// effective-sample-size diagnostic.  `None` when the weight history is
    /// unknown: the estimator was rebuilt from a snapshot written before the
    /// second moment was tracked, so reporting a fabricated ESS would be
    /// worse than reporting none.
    weight_sq: Option<f64>,
    iterations: usize,
}

impl AisEstimator {
    /// Create an estimator for the α-weighted F-measure.
    pub fn new(alpha: f64) -> Self {
        AisEstimator {
            alpha,
            weighted_tp: 0.0,
            weighted_predicted: 0.0,
            weighted_actual: 0.0,
            total_weight: 0.0,
            weight_sq: Some(0.0),
            iterations: 0,
        }
    }

    /// The α this estimator targets.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Rebuild an estimator from a previously captured snapshot: the four
    /// weighted sums returned by [`AisEstimator::sums`], the optional weight
    /// second moment (`None` for snapshots written before it was tracked —
    /// the ESS diagnostic then stays unavailable rather than fabricated),
    /// plus the iteration count.  The restored accumulator continues
    /// bit-for-bit.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if `alpha` lies outside `[0, 1]` or any
    /// sum is non-finite or negative — snapshots come from untrusted
    /// checkpoint documents, and corrupt sums would silently poison every
    /// later estimate.
    pub fn from_parts(
        alpha: f64,
        weighted_tp: f64,
        weighted_predicted: f64,
        weighted_actual: f64,
        total_weight: f64,
        weight_sq: Option<f64>,
        iterations: usize,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&alpha) || alpha.is_nan() {
            return Err(Error::InvalidParameter {
                name: "alpha",
                message: format!("must be in [0, 1], got {alpha}"),
            });
        }
        if [
            weighted_tp,
            weighted_predicted,
            weighted_actual,
            total_weight,
        ]
        .iter()
        .any(|x| !x.is_finite() || *x < 0.0)
        {
            return Err(Error::InvalidParameter {
                name: "sums",
                message: format!(
                    "estimator sums must be finite and non-negative, got \
                     ({weighted_tp}, {weighted_predicted}, {weighted_actual}, {total_weight})"
                ),
            });
        }
        if let Some(sq) = weight_sq {
            if !sq.is_finite() || sq < 0.0 {
                return Err(Error::InvalidParameter {
                    name: "weight_sq",
                    message: format!("must be finite and non-negative, got {sq}"),
                });
            }
        }
        Ok(AisEstimator {
            alpha,
            weighted_tp,
            weighted_predicted,
            weighted_actual,
            total_weight,
            weight_sq,
            iterations,
        })
    }

    /// Record one sampled item with importance weight `weight`, predicted
    /// label `prediction` and oracle label `label`.
    pub fn observe(&mut self, weight: f64, prediction: bool, label: bool) {
        let l_hat = f64::from(u8::from(prediction));
        let l = f64::from(u8::from(label));
        self.weighted_tp += weight * l * l_hat;
        self.weighted_predicted += weight * l_hat;
        self.weighted_actual += weight * l;
        self.total_weight += weight;
        if let Some(sq) = self.weight_sq.as_mut() {
            *sq += weight * weight;
        }
        self.iterations += 1;
    }

    /// Number of sampling iterations observed (not the label budget — repeats
    /// of the same pool item each count as an iteration).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The current F-measure estimate, or `None` while undefined.
    pub fn f_measure(&self) -> Option<f64> {
        let denom =
            self.alpha * self.weighted_predicted + (1.0 - self.alpha) * self.weighted_actual;
        if denom > 0.0 {
            Some(self.weighted_tp / denom)
        } else {
            None
        }
    }

    /// The current precision estimate (`α = 1`), or `None` while undefined.
    pub fn precision(&self) -> Option<f64> {
        if self.weighted_predicted > 0.0 {
            Some(self.weighted_tp / self.weighted_predicted)
        } else {
            None
        }
    }

    /// The current recall estimate (`α = 0`), or `None` while undefined.
    pub fn recall(&self) -> Option<f64> {
        if self.weighted_actual > 0.0 {
            Some(self.weighted_tp / self.weighted_actual)
        } else {
            None
        }
    }

    /// Snapshot of the full estimate (undefined quantities become `NaN`).
    pub fn estimate(&self) -> Estimate {
        Estimate {
            f_measure: self.f_measure().unwrap_or(f64::NAN),
            precision: self.precision().unwrap_or(f64::NAN),
            recall: self.recall().unwrap_or(f64::NAN),
            alpha: self.alpha,
            iterations: self.iterations,
        }
    }

    /// The accumulated weighted sums `(Σ wℓℓ̂, Σ wℓ̂, Σ wℓ, Σ w)` — exposed for
    /// diagnostics and tests.
    pub fn sums(&self) -> (f64, f64, f64, f64) {
        (
            self.weighted_tp,
            self.weighted_predicted,
            self.weighted_actual,
            self.total_weight,
        )
    }

    /// The accumulated weight second moment `Σ w²`, or `None` when the
    /// estimator was restored from a snapshot that predates its tracking.
    pub fn weight_sq(&self) -> Option<f64> {
        self.weight_sq
    }

    /// Kish effective sample size of the importance weights,
    /// `(Σ w)² / Σ w²` — a ground-truth-free convergence proxy (Delyon &
    /// Portier): it equals the iteration count under unit weights and shrinks
    /// as the weights grow uneven.  `None` before any observation, or when
    /// the weight history is unknown (see [`AisEstimator::weight_sq`]).
    pub fn effective_sample_size(&self) -> Option<f64> {
        let sq = self.weight_sq?;
        if sq > 0.0 {
            Some(self.total_weight * self.total_weight / sq)
        } else {
            None
        }
    }

    /// Normalized variance of the importance weights,
    /// `Var(w) / mean(w)² = n·Σw²/(Σw)² − 1` — zero under unit weights,
    /// growing with weight imbalance.  `None` whenever
    /// [`AisEstimator::effective_sample_size`] is.
    pub fn normalized_weight_variance(&self) -> Option<f64> {
        let ess = self.effective_sample_size()?;
        Some(self.iterations as f64 / ess - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::exhaustive_measures;

    #[test]
    fn unit_weights_recover_the_plain_f_measure() {
        let predictions = vec![true, true, true, false, false, false];
        let truth = vec![true, false, true, true, false, false];
        let mut est = AisEstimator::new(0.5);
        for (&p, &t) in predictions.iter().zip(truth.iter()) {
            est.observe(1.0, p, t);
        }
        let expected = exhaustive_measures(&predictions, &truth, 0.5);
        assert!((est.f_measure().unwrap() - expected.f_measure).abs() < 1e-12);
        assert!((est.precision().unwrap() - expected.precision).abs() < 1e-12);
        assert!((est.recall().unwrap() - expected.recall).abs() < 1e-12);
        assert_eq!(est.iterations(), 6);
    }

    #[test]
    fn undefined_until_a_positive_is_seen() {
        let mut est = AisEstimator::new(0.5);
        assert!(est.f_measure().is_none());
        est.observe(1.0, false, false);
        assert!(est.f_measure().is_none());
        assert!(!est.estimate().is_defined());
        est.observe(1.0, true, false);
        // A predicted positive defines the denominator even without a true positive.
        assert_eq!(est.f_measure(), Some(0.0));
        assert!(est.estimate().is_defined());
    }

    #[test]
    fn importance_weights_correct_sampling_bias() {
        // Population: 1000 items, 10 predicted+true matches, the rest true negatives.
        // Sample matches 50x more often than non-matches but weight by p/q; the
        // estimate must still recover the population F-measure exactly because
        // within each group all items are identical.
        let n = 1000.0;
        let matches = 10.0;
        let p_uniform = 1.0 / n;
        let q_match = 0.5 / matches; // half the proposal mass on the matches
        let q_non = 0.5 / (n - matches);
        let mut est = AisEstimator::new(0.5);
        // Sample 200 match draws and 200 non-match draws.
        for _ in 0..200 {
            est.observe(p_uniform / q_match, true, true);
            est.observe(p_uniform / q_non, false, false);
        }
        // Population: TP = 10, FP = 0, FN = 0 → F = 1.
        assert!((est.f_measure().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mixture_matches_hand_computation() {
        let mut est = AisEstimator::new(0.5);
        est.observe(2.0, true, true); // wTP += 2, wPred += 2, wAct += 2
        est.observe(4.0, true, false); // wPred += 4
        est.observe(1.0, false, true); // wAct += 1
        let f = est.f_measure().unwrap();
        let expected = 2.0 / (0.5 * 6.0 + 0.5 * 3.0);
        assert!((f - expected).abs() < 1e-12);
        let (tp, pred, act, w) = est.sums();
        assert_eq!((tp, pred, act, w), (2.0, 6.0, 3.0, 7.0));
    }

    #[test]
    fn alpha_one_is_precision_alpha_zero_is_recall() {
        let mut prec = AisEstimator::new(1.0);
        let mut rec = AisEstimator::new(0.0);
        let data = [
            (1.0, true, true),
            (1.0, true, false),
            (1.0, false, true),
            (1.0, false, true),
        ];
        for &(w, p, t) in &data {
            prec.observe(w, p, t);
            rec.observe(w, p, t);
        }
        assert!((prec.f_measure().unwrap() - 0.5).abs() < 1e-12);
        assert!((rec.f_measure().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(prec.alpha(), 1.0);
    }

    #[test]
    fn ess_equals_iterations_under_unit_weights() {
        let mut est = AisEstimator::new(0.5);
        assert_eq!(est.effective_sample_size(), None);
        for i in 0..40 {
            est.observe(1.0, i % 3 == 0, i % 2 == 0);
        }
        assert_eq!(est.effective_sample_size(), Some(40.0));
        assert_eq!(est.normalized_weight_variance(), Some(0.0));
    }

    #[test]
    fn ess_shrinks_with_uneven_weights() {
        // Two observations with weights (1, 9): ESS = 100/82 ≈ 1.22 < 2.
        let mut est = AisEstimator::new(0.5);
        est.observe(1.0, true, true);
        est.observe(9.0, false, false);
        let ess = est.effective_sample_size().unwrap();
        assert!((ess - 100.0 / 82.0).abs() < 1e-12);
        assert!(ess > 0.0 && ess < 2.0);
        // Normalized weight variance = n/ESS − 1 = 2·82/100 − 1 = 0.64.
        let cv2 = est.normalized_weight_variance().unwrap();
        assert!((cv2 - 0.64).abs() < 1e-12);
    }

    #[test]
    fn snapshots_without_a_weight_history_report_no_ess() {
        // A pre-observability snapshot restores without Σw²: the estimate is
        // exact but the ESS stays unavailable, before and after continuing.
        let mut est = AisEstimator::from_parts(0.5, 2.0, 3.0, 2.0, 5.0, None, 4).unwrap();
        assert_eq!(est.weight_sq(), None);
        assert_eq!(est.effective_sample_size(), None);
        est.observe(1.0, true, true);
        assert_eq!(est.effective_sample_size(), None);
        assert!(est.f_measure().is_some());
        // A corrupt second moment is rejected like every other sum.
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(AisEstimator::from_parts(0.5, 0.0, 0.0, 0.0, 0.0, Some(bad), 0).is_err());
        }
    }

    #[test]
    fn estimate_to_measures_maps_nan_to_zero() {
        let est = AisEstimator::new(0.5);
        let snapshot = est.estimate();
        assert!(snapshot.f_measure.is_nan());
        let m = snapshot.to_measures();
        assert_eq!(m.f_measure, 0.0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
    }
}
