//! Direct (record-free) pool synthesis.
//!
//! For very large pools — and for the non-ER `tweets100k` dataset — running
//! the full record-generation + feature-extraction + classification pipeline
//! is unnecessary: OASIS and all baselines consume only the per-item triple
//! *(similarity score, predicted label, true label)*.  The
//! [`DirectPoolModel`] draws those triples from a two-component latent model:
//!
//! * exactly `match_count` items are true matches;
//! * each item carries a latent logit `x = μ_class + σ·ξ` with `ξ ~ N(0, 1)`,
//!   where matches and non-matches have different means `μ`;
//! * the prediction is `sigmoid(x) > threshold` (a margin rule, like an SVM);
//! * the reported *calibrated* score is the Bayes posterior
//!   `P(match | x)` under the generating mixture — calibrated by
//!   construction (paper Definition 3) — while the *uncalibrated* score is
//!   the raw logit `x`, reproducing the raw-SVM-margin regime of Figure 3.
//!
//! The separation `μ_match − μ_non` and the noise `σ` control the classifier
//! operating point (precision/recall).

use oasis::pool::ScoredPool;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the direct pool generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectPoolConfig {
    /// Number of items (record pairs) in the pool.
    pub pool_size: usize,
    /// Expected number of true matches (the realised count is exact, not
    /// binomial: exactly this many items are matches).
    pub match_count: usize,
    /// Mean logit score of matching items.
    pub match_logit_mean: f64,
    /// Mean logit score of non-matching items.
    pub non_match_logit_mean: f64,
    /// Standard deviation of the logit noise (same for both classes).
    pub logit_noise: f64,
    /// Decision threshold on the (sigmoid) score.
    pub decision_threshold: f64,
    /// If `true`, output raw logits instead of sigmoid scores — the
    /// "uncalibrated SVM decision value" regime.
    pub uncalibrated_scores: bool,
}

impl DirectPoolConfig {
    /// A strongly imbalanced, well-separated configuration (DBLP-ACM-like).
    pub fn easy(pool_size: usize, match_count: usize) -> Self {
        DirectPoolConfig {
            pool_size,
            match_count,
            match_logit_mean: 2.5,
            non_match_logit_mean: -4.0,
            logit_noise: 1.2,
            decision_threshold: 0.5,
            uncalibrated_scores: false,
        }
    }

    /// A harder configuration with overlapping classes (Abt-Buy-like: high
    /// precision, low recall).
    pub fn hard(pool_size: usize, match_count: usize) -> Self {
        DirectPoolConfig {
            pool_size,
            match_count,
            match_logit_mean: 0.3,
            non_match_logit_mean: -4.5,
            logit_noise: 1.6,
            decision_threshold: 0.62,
            uncalibrated_scores: false,
        }
    }

    /// A balanced-classes configuration (tweets100k-like).
    pub fn balanced(pool_size: usize) -> Self {
        DirectPoolConfig {
            pool_size,
            match_count: pool_size / 2,
            match_logit_mean: 1.2,
            non_match_logit_mean: -1.2,
            logit_noise: 1.4,
            decision_threshold: 0.5,
            uncalibrated_scores: false,
        }
    }

    /// Switch to uncalibrated (raw logit) scores.
    pub fn with_uncalibrated_scores(mut self, uncalibrated: bool) -> Self {
        self.uncalibrated_scores = uncalibrated;
        self
    }
}

/// Generator producing [`ScoredPool`]s plus hidden ground truth from a
/// [`DirectPoolConfig`].
#[derive(Debug, Clone, Copy)]
pub struct DirectPoolModel {
    config: DirectPoolConfig,
}

/// Draw a standard normal variate via the Box–Muller transform (the `rand`
/// crate alone does not ship a normal distribution).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl DirectPoolModel {
    /// Create a generator from a configuration.
    pub fn new(config: DirectPoolConfig) -> Self {
        DirectPoolModel { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DirectPoolConfig {
        &self.config
    }

    /// The Bayes posterior probability `P(match | logit)` under the generating
    /// two-component Gaussian mixture — the perfectly calibrated score.
    fn posterior(&self, logit: f64) -> f64 {
        let c = &self.config;
        let prior = c.match_count as f64 / c.pool_size as f64;
        if prior <= 0.0 {
            return 0.0;
        }
        if prior >= 1.0 {
            return 1.0;
        }
        let variance = c.logit_noise * c.logit_noise;
        // log N(x; μ_m, σ) − log N(x; μ_n, σ)
        let log_likelihood_ratio = ((logit - c.non_match_logit_mean).powi(2)
            - (logit - c.match_logit_mean).powi(2))
            / (2.0 * variance);
        let log_odds = log_likelihood_ratio + (prior / (1.0 - prior)).ln();
        sigmoid(log_odds)
    }

    /// Generate a pool and its hidden ground truth.
    ///
    /// # Panics
    /// Panics if `match_count > pool_size` or `pool_size == 0`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> (ScoredPool, Vec<bool>) {
        let c = &self.config;
        assert!(c.pool_size > 0, "pool_size must be positive");
        assert!(
            c.match_count <= c.pool_size,
            "match_count must not exceed pool_size"
        );
        let mut scores = Vec::with_capacity(c.pool_size);
        let mut predictions = Vec::with_capacity(c.pool_size);
        let mut truth = Vec::with_capacity(c.pool_size);
        // Exactly `match_count` matches, placed at random positions.
        let mut is_match = vec![false; c.pool_size];
        // Rejection sampling of distinct positions.
        let mut chosen = std::collections::HashSet::with_capacity(c.match_count);
        while chosen.len() < c.match_count {
            chosen.insert(rng.gen_range(0..c.pool_size));
        }
        for &position in &chosen {
            is_match[position] = true;
        }
        for &matched in &is_match {
            let mean = if matched {
                c.match_logit_mean
            } else {
                c.non_match_logit_mean
            };
            let logit = mean + c.logit_noise * standard_normal(rng);
            let score = if c.uncalibrated_scores {
                logit
            } else {
                self.posterior(logit)
            };
            scores.push(score);
            predictions.push(sigmoid(logit) > c.decision_threshold);
            truth.push(matched);
        }
        let pool = ScoredPool::new(scores, predictions).expect("generated pool is valid");
        (pool, truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis::measures::exhaustive_measures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pool_has_exact_size_and_match_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = DirectPoolModel::new(DirectPoolConfig::easy(5000, 25));
        let (pool, truth) = model.generate(&mut rng);
        assert_eq!(pool.len(), 5000);
        assert_eq!(truth.iter().filter(|&&t| t).count(), 25);
        assert!(pool.scores_are_probabilities());
    }

    #[test]
    fn easy_config_yields_high_precision_and_recall() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = DirectPoolModel::new(DirectPoolConfig::easy(50_000, 500));
        let (pool, truth) = model.generate(&mut rng);
        let m = exhaustive_measures(pool.predictions(), &truth, 0.5);
        assert!(m.precision > 0.85, "precision {}", m.precision);
        assert!(m.recall > 0.85, "recall {}", m.recall);
    }

    #[test]
    fn hard_config_yields_low_recall() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = DirectPoolModel::new(DirectPoolConfig::hard(50_000, 500));
        let (pool, truth) = model.generate(&mut rng);
        let m = exhaustive_measures(pool.predictions(), &truth, 0.5);
        assert!(m.recall < 0.7, "recall {}", m.recall);
        assert!(m.precision > 0.6, "precision {}", m.precision);
        assert!(m.f_measure < 0.8);
    }

    #[test]
    fn balanced_config_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = DirectPoolModel::new(DirectPoolConfig::balanced(10_000));
        let (pool, truth) = model.generate(&mut rng);
        let matches = truth.iter().filter(|&&t| t).count();
        assert_eq!(matches, 5000);
        let m = exhaustive_measures(pool.predictions(), &truth, 0.5);
        assert!(m.f_measure > 0.6 && m.f_measure < 0.95);
    }

    #[test]
    fn uncalibrated_scores_leave_probability_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = DirectPoolConfig::easy(2000, 50).with_uncalibrated_scores(true);
        let (pool, _) = DirectPoolModel::new(config).generate(&mut rng);
        assert!(!pool.scores_are_probabilities());
    }

    #[test]
    fn calibrated_scores_are_roughly_calibrated() {
        // Bin items by score; the empirical match rate per bin should be close
        // to the bin's mean score (Definition 3 in the paper).
        let mut rng = StdRng::seed_from_u64(6);
        let config = DirectPoolConfig {
            pool_size: 200_000,
            match_count: 20_000,
            match_logit_mean: 1.0,
            non_match_logit_mean: -3.0,
            logit_noise: 1.5,
            decision_threshold: 0.5,
            uncalibrated_scores: false,
        };
        let (pool, truth) = DirectPoolModel::new(config).generate(&mut rng);
        let bins = 10usize;
        let mut bin_score_sum = vec![0.0; bins];
        let mut bin_match_sum = vec![0.0; bins];
        let mut bin_count = vec![0usize; bins];
        for (i, &s) in pool.scores().iter().enumerate() {
            let b = ((s * bins as f64) as usize).min(bins - 1);
            bin_score_sum[b] += s;
            bin_match_sum[b] += f64::from(u8::from(truth[i]));
            bin_count[b] += 1;
        }
        for b in 0..bins {
            if bin_count[b] > 500 {
                let mean_score = bin_score_sum[b] / bin_count[b] as f64;
                let match_rate = bin_match_sum[b] / bin_count[b] as f64;
                assert!(
                    (mean_score - match_rate).abs() < 0.15,
                    "bin {b}: mean score {mean_score:.3} vs match rate {match_rate:.3}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "match_count")]
    fn match_count_larger_than_pool_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        DirectPoolModel::new(DirectPoolConfig::easy(10, 20)).generate(&mut rng);
    }

    #[test]
    fn standard_normal_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = draws.iter().sum::<f64>() / n as f64;
        let variance: f64 = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((variance - 1.0).abs() < 0.1, "variance {variance}");
    }
}
