//! Quickstart: evaluate an ER system's F-measure with OASIS using a fraction
//! of the labels passive sampling would need.
//!
//! Run with: `cargo run --release --example quickstart`

use er_core::datasets::{DatasetProfile, DirectPoolModel};
use oasis::measures::exhaustive_measures;
use oasis::oracle::{GroundTruthOracle, Oracle};
use oasis::samplers::{InteractiveSampler, OasisConfig, OasisSampler, PassiveSampler, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Obtain a pool of record pairs with similarity scores and predicted
    //    labels.  Here we synthesise one that mirrors the paper's Abt-Buy
    //    pool (scaled to 20%): ~10,750 pairs, extreme class imbalance, a
    //    classifier with high precision but low recall.
    let profile = DatasetProfile::abt_buy();
    let config = profile.direct_pool_config(0.2);
    let mut rng = StdRng::seed_from_u64(42);
    let (pool, truth) = DirectPoolModel::new(config).generate(&mut rng);
    println!(
        "Pool: {} record pairs, {} true matches (imbalance 1:{:.0})",
        pool.len(),
        truth.iter().filter(|&&t| t).count(),
        (pool.len() - truth.iter().filter(|&&t| t).count()) as f64
            / truth.iter().filter(|&&t| t).count().max(1) as f64
    );

    // The quantity we want to estimate (normally unknown — we compute it here
    // only to show how close the estimates get).
    let target = exhaustive_measures(pool.predictions(), &truth, 0.5);
    println!(
        "True (hidden) performance: precision {:.3}, recall {:.3}, F1/2 {:.3}\n",
        target.precision, target.recall, target.f_measure
    );

    // 2. The oracle answers label queries from the hidden ground truth and
    //    charges budget only for the first query of each pair.
    let label_budget = 300;

    // 3a. OASIS: stratify by score, adapt the proposal as labels arrive.
    let mut oracle = GroundTruthOracle::new(truth.clone());
    let mut oasis = OasisSampler::new(&pool, OasisConfig::default().with_strata_count(30))
        .expect("valid configuration");
    oasis
        .run_until_budget(&pool, &mut oracle, &mut rng, label_budget, 1_000_000)
        .expect("sampling succeeds");
    let estimate = oasis.estimate();
    println!(
        "OASIS   after {:>4} labels: F1/2 ≈ {:.3} (precision ≈ {:.3}, recall ≈ {:.3})",
        oracle.labels_consumed(),
        estimate.f_measure,
        estimate.precision,
        estimate.recall
    );

    // 3b. Passive sampling with the same budget, for contrast.
    let mut oracle = GroundTruthOracle::new(truth);
    let mut passive = PassiveSampler::new(0.5);
    passive
        .run_until_budget(&pool, &mut oracle, &mut rng, label_budget, 1_000_000)
        .expect("sampling succeeds");
    let estimate = passive.estimate();
    if estimate.is_defined() {
        println!(
            "Passive after {:>4} labels: F1/2 ≈ {:.3}",
            oracle.labels_consumed(),
            estimate.f_measure
        );
    } else {
        println!(
            "Passive after {:>4} labels: estimate still undefined (no match sampled yet!)",
            oracle.labels_consumed()
        );
    }

    println!(
        "\nTrue F1/2 is {:.3}; OASIS is typically several times closer than passive at this budget.",
        target.f_measure
    );
}
