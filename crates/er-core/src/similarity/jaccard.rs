//! Jaccard similarity over character n-grams and word tokens.

use std::collections::HashSet;

/// Character n-grams of a string (over its raw chars, no padding).
fn char_ngrams(text: &str, n: usize) -> HashSet<Vec<char>> {
    let chars: Vec<char> = text.chars().collect();
    let mut grams = HashSet::new();
    if chars.len() < n {
        if !chars.is_empty() {
            grams.insert(chars);
        }
        return grams;
    }
    for window in chars.windows(n) {
        grams.insert(window.to_vec());
    }
    grams
}

/// Jaccard similarity of the character n-gram sets of two strings.
///
/// The paper's pipeline uses `n = 3` (trigrams) for short textual fields.
/// Two empty strings are defined to have similarity 1; an empty string versus
/// a non-empty one has similarity 0.
pub fn ngram_jaccard(a: &str, b: &str, n: usize) -> f64 {
    assert!(n > 0, "n-gram size must be positive");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let grams_a = char_ngrams(a, n);
    let grams_b = char_ngrams(b, n);
    let intersection = grams_a.intersection(&grams_b).count();
    let union = grams_a.union(&grams_b).count();
    if union == 0 {
        return 0.0;
    }
    intersection as f64 / union as f64
}

/// Jaccard similarity of the whitespace-token sets of two strings.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let tokens_a: HashSet<&str> = a.split_whitespace().collect();
    let tokens_b: HashSet<&str> = b.split_whitespace().collect();
    if tokens_a.is_empty() && tokens_b.is_empty() {
        return 1.0;
    }
    if tokens_a.is_empty() || tokens_b.is_empty() {
        return 0.0;
    }
    let intersection = tokens_a.intersection(&tokens_b).count();
    let union = tokens_a.union(&tokens_b).count();
    intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_similarity_one() {
        assert_eq!(ngram_jaccard("canon powershot", "canon powershot", 3), 1.0);
        assert_eq!(token_jaccard("canon powershot", "canon powershot"), 1.0);
    }

    #[test]
    fn disjoint_strings_have_similarity_zero() {
        assert_eq!(ngram_jaccard("aaaa", "bbbb", 3), 0.0);
        assert_eq!(token_jaccard("alpha beta", "gamma delta"), 0.0);
    }

    #[test]
    fn empty_string_conventions() {
        assert_eq!(ngram_jaccard("", "", 3), 1.0);
        assert_eq!(ngram_jaccard("", "abc", 3), 0.0);
        assert_eq!(token_jaccard("", ""), 1.0);
        assert_eq!(token_jaccard("", "abc"), 0.0);
    }

    #[test]
    fn similar_strings_score_between_zero_and_one() {
        let s = ngram_jaccard("canon powershot a520", "canon powershot a530", 3);
        assert!(s > 0.5 && s < 1.0, "similarity {s}");
        let t = token_jaccard("canon powershot a520", "canon powershot a530");
        assert!(t > 0.4 && t < 1.0);
    }

    #[test]
    fn short_strings_fall_back_to_whole_string_grams() {
        // Strings shorter than n are treated as a single gram.
        assert_eq!(ngram_jaccard("ab", "ab", 3), 1.0);
        assert_eq!(ngram_jaccard("ab", "cd", 3), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = "sony cybershot dsc w70";
        let b = "sony cyber shot dscw70";
        assert!((ngram_jaccard(a, b, 3) - ngram_jaccard(b, a, 3)).abs() < 1e-15);
        assert!((token_jaccard(a, b) - token_jaccard(b, a)).abs() < 1e-15);
    }

    #[test]
    fn range_always_unit_interval() {
        let pairs = [
            ("", ""),
            ("a", "a"),
            ("abcdef", "abcxyz"),
            ("x y z", "z y x"),
            ("completely different", "utterly distinct"),
        ];
        for (a, b) in pairs {
            for n in 1..=4 {
                let s = ngram_jaccard(a, b, n);
                assert!((0.0..=1.0).contains(&s), "ngram({a:?},{b:?},{n}) = {s}");
            }
            let t = token_jaccard(a, b);
            assert!((0.0..=1.0).contains(&t));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gram_size_panics() {
        ngram_jaccard("a", "b", 0);
    }
}
