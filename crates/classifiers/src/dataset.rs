//! Training sets and train/test splitting.

use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled training set of similarity feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSet {
    /// Row-major feature matrix.
    pub features: Vec<Vec<f64>>,
    /// Binary labels (`true` = match), aligned with the rows.
    pub labels: Vec<bool>,
}

impl TrainingSet {
    /// Create a training set.
    ///
    /// # Panics
    /// Panics if the number of rows and labels disagree.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<bool>) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "feature rows and labels must align"
        );
        TrainingSet { features, labels }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per example (0 for an empty set).
    pub fn feature_count(&self) -> usize {
        self.features.first().map(Vec::len).unwrap_or(0)
    }

    /// Number of positive (match) examples.
    pub fn positive_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Draw a class-balanced subsample of up to `per_class` examples per class
    /// (useful for training on heavily imbalanced pair data; the paper trains
    /// on a random subset of the dataset with ground truth).
    pub fn balanced_subsample<R: Rng + ?Sized>(
        &self,
        per_class: usize,
        rng: &mut R,
    ) -> TrainingSet {
        let mut positive_indices: Vec<usize> = Vec::new();
        let mut negative_indices: Vec<usize> = Vec::new();
        for (i, &label) in self.labels.iter().enumerate() {
            if label {
                positive_indices.push(i);
            } else {
                negative_indices.push(i);
            }
        }
        positive_indices.shuffle(rng);
        negative_indices.shuffle(rng);
        positive_indices.truncate(per_class);
        negative_indices.truncate(per_class);
        let mut indices = positive_indices;
        indices.extend(negative_indices);
        indices.shuffle(rng);
        TrainingSet {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }
}

/// Split a training set into a training part and a held-out test part.
///
/// `test_fraction` is clamped to `[0, 1]`.  The split is random but the two
/// parts always cover the whole input exactly once.
pub fn train_test_split<R: Rng + ?Sized>(
    set: &TrainingSet,
    test_fraction: f64,
    rng: &mut R,
) -> (TrainingSet, TrainingSet) {
    let test_fraction = test_fraction.clamp(0.0, 1.0);
    let mut indices: Vec<usize> = (0..set.len()).collect();
    indices.shuffle(rng);
    let test_size = (set.len() as f64 * test_fraction).round() as usize;
    let (test_idx, train_idx) = indices.split_at(test_size.min(set.len()));
    let subset = |idx: &[usize]| TrainingSet {
        features: idx.iter().map(|&i| set.features[i].clone()).collect(),
        labels: idx.iter().map(|&i| set.labels[i]).collect(),
    };
    (subset(train_idx), subset(test_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_set(n: usize) -> TrainingSet {
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        TrainingSet::new(features, labels)
    }

    #[test]
    fn construction_and_accessors() {
        let set = toy_set(12);
        assert_eq!(set.len(), 12);
        assert!(!set.is_empty());
        assert_eq!(set.feature_count(), 2);
        assert_eq!(set.positive_count(), 3);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        TrainingSet::new(vec![vec![1.0]], vec![true, false]);
    }

    #[test]
    fn split_partitions_the_data() {
        let set = toy_set(100);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = train_test_split(&set, 0.25, &mut rng);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 25);
        // Extreme fractions behave sensibly.
        let (train, test) = train_test_split(&set, 0.0, &mut rng);
        assert_eq!(train.len(), 100);
        assert_eq!(test.len(), 0);
        let (train, test) = train_test_split(&set, 1.5, &mut rng);
        assert_eq!(train.len(), 0);
        assert_eq!(test.len(), 100);
    }

    #[test]
    fn balanced_subsample_balances_classes() {
        let set = toy_set(200); // 50 positives, 150 negatives
        let mut rng = StdRng::seed_from_u64(2);
        let sub = set.balanced_subsample(30, &mut rng);
        assert_eq!(sub.len(), 60);
        assert_eq!(sub.positive_count(), 30);
        // Requesting more than available caps at what exists.
        let sub = set.balanced_subsample(1000, &mut rng);
        assert_eq!(sub.positive_count(), 50);
        assert_eq!(sub.len(), 200);
    }

    #[test]
    fn empty_set_is_handled() {
        let set = TrainingSet::new(vec![], vec![]);
        assert!(set.is_empty());
        assert_eq!(set.feature_count(), 0);
        let mut rng = StdRng::seed_from_u64(3);
        let (train, test) = train_test_split(&set, 0.5, &mut rng);
        assert!(train.is_empty() && test.is_empty());
    }
}
