//! Candidate record-pair spaces.
//!
//! The pair space `Z = D₁ × D₂` (or a blocked subset of it) is the domain the
//! evaluation pool is drawn from.  [`PairSpace`] enumerates candidate pairs as
//! `(index into source A, index into source B)` and knows which of them are
//! true matches according to the hidden relation `R`.

use std::collections::HashSet;

/// A candidate pair, referencing records by their position in each source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordPair {
    /// Index into source A.
    pub a: usize,
    /// Index into source B.
    pub b: usize,
}

/// A set of candidate pairs with ground-truth match information.
#[derive(Debug, Clone)]
pub struct PairSpace {
    pairs: Vec<RecordPair>,
    matches: HashSet<RecordPair>,
}

impl PairSpace {
    /// The full cross product of two sources of the given sizes, with the
    /// given set of true matching pairs.
    pub fn full_product(size_a: usize, size_b: usize, matches: HashSet<RecordPair>) -> Self {
        let mut pairs = Vec::with_capacity(size_a * size_b);
        for a in 0..size_a {
            for b in 0..size_b {
                pairs.push(RecordPair { a, b });
            }
        }
        PairSpace { pairs, matches }
    }

    /// A pair space from an explicit candidate list (e.g. produced by
    /// blocking) and the set of true matches.  Matches that are not in the
    /// candidate list stay in the ground truth (they count as recall losses of
    /// the blocking, not of the classifier).
    pub fn from_candidates(pairs: Vec<RecordPair>, matches: HashSet<RecordPair>) -> Self {
        PairSpace { pairs, matches }
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no candidate pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The candidate pairs.
    pub fn pairs(&self) -> &[RecordPair] {
        &self.pairs
    }

    /// Whether a pair is a true match.
    pub fn is_match(&self, pair: RecordPair) -> bool {
        self.matches.contains(&pair)
    }

    /// The ground-truth labels of the candidate pairs, in order.
    pub fn labels(&self) -> Vec<bool> {
        self.pairs.iter().map(|&p| self.is_match(p)).collect()
    }

    /// Number of true matches among the candidate pairs.
    pub fn candidate_match_count(&self) -> usize {
        self.pairs.iter().filter(|&&p| self.is_match(p)).count()
    }

    /// Number of true matches in the ground truth overall (including any not
    /// covered by the candidates).
    pub fn total_match_count(&self) -> usize {
        self.matches.len()
    }

    /// The class-imbalance ratio (non-matches : matches) among the candidates,
    /// or `None` if there are no candidate matches.
    pub fn imbalance_ratio(&self) -> Option<f64> {
        let matches = self.candidate_match_count();
        if matches == 0 {
            None
        } else {
            Some((self.len() - matches) as f64 / matches as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(pairs: &[(usize, usize)]) -> HashSet<RecordPair> {
        pairs.iter().map(|&(a, b)| RecordPair { a, b }).collect()
    }

    #[test]
    fn full_product_enumerates_all_pairs() {
        let space = PairSpace::full_product(3, 4, matches(&[(0, 0), (2, 3)]));
        assert_eq!(space.len(), 12);
        assert!(!space.is_empty());
        assert_eq!(space.candidate_match_count(), 2);
        assert_eq!(space.total_match_count(), 2);
        assert!(space.is_match(RecordPair { a: 0, b: 0 }));
        assert!(!space.is_match(RecordPair { a: 0, b: 1 }));
        let labels = space.labels();
        assert_eq!(labels.len(), 12);
        assert_eq!(labels.iter().filter(|&&l| l).count(), 2);
    }

    #[test]
    fn imbalance_ratio_matches_definition() {
        let space = PairSpace::full_product(10, 10, matches(&[(0, 0), (1, 1)]));
        // 100 pairs, 2 matches → 98:2 = 49
        assert_eq!(space.imbalance_ratio(), Some(49.0));
        let empty_matches = PairSpace::full_product(2, 2, HashSet::new());
        assert_eq!(empty_matches.imbalance_ratio(), None);
    }

    #[test]
    fn candidates_constructor_counts_only_covered_matches() {
        let truth = matches(&[(0, 0), (5, 5)]);
        let candidates = vec![RecordPair { a: 0, b: 0 }, RecordPair { a: 0, b: 1 }];
        let space = PairSpace::from_candidates(candidates, truth);
        assert_eq!(space.len(), 2);
        assert_eq!(space.candidate_match_count(), 1);
        assert_eq!(space.total_match_count(), 2);
    }

    #[test]
    fn empty_space() {
        let space = PairSpace::from_candidates(vec![], HashSet::new());
        assert!(space.is_empty());
        assert_eq!(space.labels().len(), 0);
    }
}
