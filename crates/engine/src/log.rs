//! Structured event logging for the serving layer.
//!
//! `oasis-serve` historically scattered `eprintln!`s for startup, shutdown
//! and transport errors.  [`EventLog`] routes all of that through one sink
//! with two formats:
//!
//! * [`LogFormat::Text`] — the default: the same human-oriented
//!   `oasis-serve: …` lines as before, and *no* per-request output.
//! * [`LogFormat::Json`] (`oasis-serve --log-json`) — one JSON object per
//!   line (JSONL), machine-parseable, including one `request` event per
//!   protocol request with its verb, session, latency and outcome.
//!
//! Events go to the log's sink (stderr in the binary), never stdout —
//! stdout is the protocol channel.
//!
//! ## Event schema (JSON format)
//!
//! ```json
//! {"event":"message","message":"listening on 127.0.0.1:4000"}
//! {"event":"request","verb":"propose","session":"s1","latency_us":"142","ok":true}
//! {"event":"request","verb":"metrics","session":null,"latency_us":"57","ok":true}
//! ```
//!
//! `latency_us` uses the crate-wide u64-as-string wire encoding.

use parking_lot::Mutex;
use serde::json::{Json, ToJson};
use std::io::Write;

/// Output format of an [`EventLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-oriented `oasis-serve: …` lines; request events are suppressed.
    Text,
    /// One JSON object per line, including per-request events.
    Json,
}

/// A line-oriented event sink shared by the server loop and the binary.
pub struct EventLog {
    format: LogFormat,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("format", &self.format)
            .finish_non_exhaustive()
    }
}

impl EventLog {
    /// An event log writing to stderr (the binary's configuration).
    pub fn stderr(format: LogFormat) -> Self {
        EventLog::to_writer(format, Box::new(std::io::stderr()))
    }

    /// An event log writing to an arbitrary sink (tests capture a buffer).
    pub fn to_writer(format: LogFormat, sink: Box<dyn Write + Send>) -> Self {
        EventLog {
            format,
            sink: Mutex::new(sink),
        }
    }

    /// The configured format.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    fn emit(&self, line: &str) {
        let mut sink = self.sink.lock();
        // A logging failure must never take down the serving loop; the
        // protocol channel (stdout) is the contract, stderr is best-effort.
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }

    /// A freeform operational message (startup, shutdown, transport errors).
    pub fn message(&self, text: &str) {
        match self.format {
            LogFormat::Text => self.emit(&format!("oasis-serve: {text}")),
            LogFormat::Json => {
                let mut obj = Json::object();
                obj.set("event", Json::String("message".to_string()));
                obj.set("message", Json::String(text.to_string()));
                self.emit(&obj.render());
            }
        }
    }

    /// One event per protocol request: the verb, the session it addressed
    /// (if any), wall-clock latency in microseconds, and whether the
    /// response was `ok`.  Suppressed in [`LogFormat::Text`] to keep the
    /// default stderr as quiet as the pre-logging binary.
    pub fn request(&self, verb: &str, session: Option<&str>, latency_us: u64, ok: bool) {
        if self.format == LogFormat::Text {
            return;
        }
        let mut obj = Json::object();
        obj.set("event", Json::String("request".to_string()));
        obj.set("verb", Json::String(verb.to_string()));
        obj.set(
            "session",
            match session {
                Some(id) => Json::String(id.to_string()),
                None => Json::Null,
            },
        );
        obj.set("latency_us", latency_us.to_json());
        obj.set("ok", ok.to_json());
        self.emit(&obj.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A sink tests can read back.
    #[derive(Clone, Default)]
    struct Buffer(Arc<Mutex<Vec<u8>>>);

    impl Write for Buffer {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn capture(format: LogFormat) -> (EventLog, Buffer) {
        let buffer = Buffer::default();
        let log = EventLog::to_writer(format, Box::new(buffer.clone()));
        (log, buffer)
    }

    #[test]
    fn text_format_keeps_the_legacy_prefix_and_drops_request_events() {
        let (log, buffer) = capture(LogFormat::Text);
        log.message("listening on 127.0.0.1:4000");
        log.request("propose", Some("s1"), 42, true);
        let out = String::from_utf8(buffer.0.lock().clone()).unwrap();
        assert_eq!(out, "oasis-serve: listening on 127.0.0.1:4000\n");
    }

    #[test]
    fn json_format_emits_one_parseable_object_per_line() {
        let (log, buffer) = capture(LogFormat::Json);
        log.message("shutdown requested");
        log.request("propose", Some("s1"), 42, true);
        log.request("metrics", None, 7, false);
        let out = String::from_utf8(buffer.0.lock().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        let parsed = Json::parse(lines[1]).unwrap();
        assert_eq!(
            parsed.require("event").unwrap().as_str().unwrap(),
            "request"
        );
        assert_eq!(parsed.require("verb").unwrap().as_str().unwrap(), "propose");
        assert_eq!(parsed.require("session").unwrap().as_str().unwrap(), "s1");
        assert_eq!(parsed.require("latency_us").unwrap().as_u64().unwrap(), 42);
        assert!(parsed.require("ok").unwrap().as_bool().unwrap());
        let no_session = Json::parse(lines[2]).unwrap();
        assert!(matches!(no_session.require("session").unwrap(), Json::Null));
        assert!(!no_session.require("ok").unwrap().as_bool().unwrap());
    }
}
