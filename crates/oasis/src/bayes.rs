//! The stratified Beta–Bernoulli model of the oracle probabilities.
//!
//! Section 4.2.2 of the paper: within stratum `P_k` the oracle's labels are
//! modelled as `ℓ ∼ Bernoulli(π_k)` with a conjugate prior
//! `π_k ∼ Beta(γ⁽⁰⁾_{0,k}, γ⁽⁰⁾_{1,k})`.  Each stratum is modelled
//! independently, so the joint posterior factorises and the posterior update
//! after observing a label from stratum `k*` is a single increment of the
//! corresponding hyperparameter (Eqn. 10).  Point estimates use the posterior
//! mean (Eqn. 11).
//!
//! The model also implements the practical modification of Remark 4: the prior
//! pseudo-counts of a stratum are down-weighted by the number of real labels
//! observed there, which speeds convergence and adds robustness to
//! misspecified priors.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Per-stratum Beta–Bernoulli posterior over the match probabilities `π`.
///
/// Hyperparameter naming follows the paper: row 0 (`gamma0`) counts matches
/// (label 1), row 1 (`gamma1`) counts non-matches (label 0), so the posterior
/// mean of stratum `k` is `γ₀ₖ / (γ₀ₖ + γ₁ₖ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BetaBernoulliModel {
    /// Prior pseudo-counts for label 1 (matches), one entry per stratum.
    prior_gamma0: Vec<f64>,
    /// Prior pseudo-counts for label 0 (non-matches), one entry per stratum.
    prior_gamma1: Vec<f64>,
    /// Observed counts of label 1 per stratum.
    observed_matches: Vec<f64>,
    /// Observed counts of label 0 per stratum.
    observed_non_matches: Vec<f64>,
    /// Whether to decay the prior by the number of observations (Remark 4).
    decay_prior: bool,
}

impl BetaBernoulliModel {
    /// Construct the model from an initial guess `π̂⁽⁰⁾` of the per-stratum
    /// match probabilities and a prior strength `η > 0`, setting
    /// `Γ⁽⁰⁾ = η [π̂⁽⁰⁾ ; 1 − π̂⁽⁰⁾]` as in Algorithm 3, line 1.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if `eta` is not positive and finite, if the
    /// guess is empty, or if any guessed probability lies outside `[0, 1]`.
    pub fn from_prior_guess(pi_guess: &[f64], eta: f64, decay_prior: bool) -> Result<Self> {
        if pi_guess.is_empty() {
            return Err(Error::InvalidParameter {
                name: "pi_guess",
                message: "initial probability guess must not be empty".to_string(),
            });
        }
        if eta <= 0.0 || !eta.is_finite() {
            return Err(Error::InvalidParameter {
                name: "eta",
                message: format!("prior strength must be positive and finite, got {eta}"),
            });
        }
        if let Some(p) = pi_guess.iter().find(|p| !(0.0..=1.0).contains(*p)) {
            return Err(Error::InvalidParameter {
                name: "pi_guess",
                message: format!("guessed probability {p} outside [0, 1]"),
            });
        }
        let k = pi_guess.len();
        let prior_gamma0: Vec<f64> = pi_guess.iter().map(|&p| eta * p).collect();
        let prior_gamma1: Vec<f64> = pi_guess.iter().map(|&p| eta * (1.0 - p)).collect();
        Ok(BetaBernoulliModel {
            prior_gamma0,
            prior_gamma1,
            observed_matches: vec![0.0; k],
            observed_non_matches: vec![0.0; k],
            decay_prior,
        })
    }

    /// Construct the model with explicit prior hyperparameters.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] on empty or mismatching vectors, or on
    /// non-positive hyperparameters.
    pub fn from_hyperparameters(
        gamma0: Vec<f64>,
        gamma1: Vec<f64>,
        decay_prior: bool,
    ) -> Result<Self> {
        if gamma0.is_empty() || gamma0.len() != gamma1.len() {
            return Err(Error::InvalidParameter {
                name: "gamma",
                message: format!(
                    "hyperparameter rows must be non-empty and equal length (got {} and {})",
                    gamma0.len(),
                    gamma1.len()
                ),
            });
        }
        if gamma0
            .iter()
            .chain(gamma1.iter())
            .any(|&g| g < 0.0 || !g.is_finite())
        {
            return Err(Error::InvalidParameter {
                name: "gamma",
                message: "hyperparameters must be finite and non-negative".to_string(),
            });
        }
        let k = gamma0.len();
        Ok(BetaBernoulliModel {
            prior_gamma0: gamma0,
            prior_gamma1: gamma1,
            observed_matches: vec![0.0; k],
            observed_non_matches: vec![0.0; k],
            decay_prior,
        })
    }

    /// Rebuild a model from a previously captured snapshot (see
    /// [`BetaBernoulliModel::snapshot`]): prior pseudo-counts *and* observed
    /// counts.  The restored model continues bit-for-bit where the snapshot
    /// was taken.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] on empty, mismatched or non-finite vectors.
    pub fn from_state(
        prior_gamma0: Vec<f64>,
        prior_gamma1: Vec<f64>,
        observed_matches: Vec<f64>,
        observed_non_matches: Vec<f64>,
        decay_prior: bool,
    ) -> Result<Self> {
        let k = prior_gamma0.len();
        if k == 0
            || prior_gamma1.len() != k
            || observed_matches.len() != k
            || observed_non_matches.len() != k
        {
            return Err(Error::InvalidParameter {
                name: "state",
                message: format!(
                    "state rows must be non-empty and equal length (got {}, {}, {}, {})",
                    k,
                    prior_gamma1.len(),
                    observed_matches.len(),
                    observed_non_matches.len()
                ),
            });
        }
        if prior_gamma0
            .iter()
            .chain(prior_gamma1.iter())
            .chain(observed_matches.iter())
            .chain(observed_non_matches.iter())
            .any(|&g| g < 0.0 || !g.is_finite())
        {
            return Err(Error::InvalidParameter {
                name: "state",
                message: "state counts must be finite and non-negative".to_string(),
            });
        }
        Ok(BetaBernoulliModel {
            prior_gamma0,
            prior_gamma1,
            observed_matches,
            observed_non_matches,
            decay_prior,
        })
    }

    /// The full internal state as `(prior γ₀, prior γ₁, observed matches,
    /// observed non-matches)`, for checkpointing.  Feed the rows back through
    /// [`BetaBernoulliModel::from_state`] to restore.
    pub fn snapshot(&self) -> (&[f64], &[f64], &[f64], &[f64]) {
        (
            &self.prior_gamma0,
            &self.prior_gamma1,
            &self.observed_matches,
            &self.observed_non_matches,
        )
    }

    /// Number of strata `K`.
    pub fn strata_count(&self) -> usize {
        self.prior_gamma0.len()
    }

    /// Record an oracle label for stratum `stratum` (Eqn. 10).
    ///
    /// # Panics
    /// Panics if `stratum` is out of bounds.
    pub fn observe(&mut self, stratum: usize, label: bool) {
        if label {
            self.observed_matches[stratum] += 1.0;
        } else {
            self.observed_non_matches[stratum] += 1.0;
        }
    }

    /// Number of labels observed in stratum `k` so far.
    pub fn observations(&self, stratum: usize) -> f64 {
        self.observed_matches[stratum] + self.observed_non_matches[stratum]
    }

    /// Effective posterior hyperparameters `(γ₀ₖ, γ₁ₖ)` of stratum `k`,
    /// including the prior decay of Remark 4 when enabled.
    pub fn posterior_hyperparameters(&self, stratum: usize) -> (f64, f64) {
        let n_k = self.observations(stratum);
        let prior_scale = if self.decay_prior && n_k > 0.0 {
            1.0 / n_k
        } else {
            1.0
        };
        let g0 = self.prior_gamma0[stratum] * prior_scale + self.observed_matches[stratum];
        let g1 = self.prior_gamma1[stratum] * prior_scale + self.observed_non_matches[stratum];
        (g0, g1)
    }

    /// Posterior mean estimate `π̂_k` of stratum `k` (Eqn. 11).
    pub fn posterior_mean(&self, stratum: usize) -> f64 {
        let (g0, g1) = self.posterior_hyperparameters(stratum);
        let total = g0 + g1;
        if total > 0.0 {
            g0 / total
        } else {
            // Completely uninformative: fall back to ½.
            0.5
        }
    }

    /// Posterior means of all strata.
    pub fn posterior_means(&self) -> Vec<f64> {
        (0..self.strata_count())
            .map(|k| self.posterior_mean(k))
            .collect()
    }

    /// Posterior variance of `π_k` (useful for diagnostics / uncertainty
    /// reporting): `g0·g1 / ((g0+g1)²·(g0+g1+1))`.
    pub fn posterior_variance(&self, stratum: usize) -> f64 {
        let (g0, g1) = self.posterior_hyperparameters(stratum);
        let total = g0 + g1;
        if total > 0.0 {
            g0 * g1 / (total * total * (total + 1.0))
        } else {
            0.25
        }
    }

    /// Whether prior decay (Remark 4) is enabled.
    pub fn decays_prior(&self) -> bool {
        self.decay_prior
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_guess_initialises_posterior_mean() {
        let model = BetaBernoulliModel::from_prior_guess(&[0.1, 0.5, 0.9], 4.0, false).unwrap();
        assert_eq!(model.strata_count(), 3);
        assert!((model.posterior_mean(0) - 0.1).abs() < 1e-12);
        assert!((model.posterior_mean(1) - 0.5).abs() < 1e-12);
        assert!((model.posterior_mean(2) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn observations_shift_posterior_towards_data() {
        let mut model = BetaBernoulliModel::from_prior_guess(&[0.5], 2.0, false).unwrap();
        for _ in 0..98 {
            model.observe(0, true);
        }
        for _ in 0..2 {
            model.observe(0, false);
        }
        // prior Beta(1,1), observations 98/2 → mean 99/102
        let expected = 99.0 / 102.0;
        assert!((model.posterior_mean(0) - expected).abs() < 1e-12);
        assert_eq!(model.observations(0), 100.0);
    }

    #[test]
    fn prior_decay_reduces_prior_influence() {
        let mut with_decay = BetaBernoulliModel::from_prior_guess(&[0.9], 100.0, true).unwrap();
        let mut without_decay = BetaBernoulliModel::from_prior_guess(&[0.9], 100.0, false).unwrap();
        // The data say the true rate is 0, contradicting the strong prior of 0.9.
        for _ in 0..20 {
            with_decay.observe(0, false);
            without_decay.observe(0, false);
        }
        assert!(
            with_decay.posterior_mean(0) < 0.2,
            "decayed prior should defer to data, got {}",
            with_decay.posterior_mean(0)
        );
        assert!(
            without_decay.posterior_mean(0) > 0.7,
            "undecayed strong prior should still dominate, got {}",
            without_decay.posterior_mean(0)
        );
        assert!(with_decay.decays_prior());
        assert!(!without_decay.decays_prior());
    }

    #[test]
    fn posterior_variance_shrinks_with_data() {
        let mut model = BetaBernoulliModel::from_prior_guess(&[0.5], 2.0, false).unwrap();
        let before = model.posterior_variance(0);
        for i in 0..200 {
            model.observe(0, i % 2 == 0);
        }
        let after = model.posterior_variance(0);
        assert!(after < before);
        assert!(after > 0.0);
    }

    #[test]
    fn explicit_hyperparameters_round_trip() {
        let model = BetaBernoulliModel::from_hyperparameters(vec![2.0, 1.0], vec![8.0, 1.0], false)
            .unwrap();
        assert!((model.posterior_mean(0) - 0.2).abs() < 1e-12);
        assert!((model.posterior_mean(1) - 0.5).abs() < 1e-12);
        let (g0, g1) = model.posterior_hyperparameters(0);
        assert_eq!((g0, g1), (2.0, 8.0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(BetaBernoulliModel::from_prior_guess(&[], 2.0, false).is_err());
        assert!(BetaBernoulliModel::from_prior_guess(&[0.5], 0.0, false).is_err());
        assert!(BetaBernoulliModel::from_prior_guess(&[0.5], f64::NAN, false).is_err());
        assert!(BetaBernoulliModel::from_prior_guess(&[1.5], 2.0, false).is_err());
        assert!(BetaBernoulliModel::from_hyperparameters(vec![], vec![], false).is_err());
        assert!(
            BetaBernoulliModel::from_hyperparameters(vec![1.0], vec![1.0, 2.0], false).is_err()
        );
        assert!(BetaBernoulliModel::from_hyperparameters(vec![-1.0], vec![1.0], false).is_err());
    }

    #[test]
    fn extreme_prior_guesses_are_allowed() {
        // π̂ = 0 or 1 is legitimate (e.g. an empty-looking stratum); the model
        // must not produce NaN.
        let mut model = BetaBernoulliModel::from_prior_guess(&[0.0, 1.0], 2.0, false).unwrap();
        assert_eq!(model.posterior_mean(0), 0.0);
        assert_eq!(model.posterior_mean(1), 1.0);
        model.observe(0, true);
        assert!(model.posterior_mean(0) > 0.0);
        assert!(model.posterior_mean(0).is_finite());
    }

    #[test]
    fn posterior_means_vector_matches_individual_queries() {
        let mut model = BetaBernoulliModel::from_prior_guess(&[0.2, 0.8], 2.0, true).unwrap();
        model.observe(0, true);
        model.observe(1, false);
        let means = model.posterior_means();
        assert_eq!(means.len(), 2);
        assert!((means[0] - model.posterior_mean(0)).abs() < 1e-15);
        assert!((means[1] - model.posterior_mean(1)).abs() < 1e-15);
    }
}
