//! Property-based tests of the classifier crate's invariants.

use classifiers::calibration::PlattScaler;
use classifiers::linalg::{sigmoid, Standardizer};
use classifiers::metrics::{accuracy, f1_score, roc_auc};
use classifiers::{
    AdaBoostClassifier, Classifier, LinearSvm, LogisticRegression, MlpClassifier, TrainingSet,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing a small labelled dataset with at least one example of
/// each class and two informative features plus one noise feature.
fn labelled_data() -> impl Strategy<Value = TrainingSet> {
    (prop::collection::vec((0.0f64..1.0, any::<bool>()), 20..120).prop_map(|items| {
        let mut features = Vec::with_capacity(items.len() + 2);
        let mut labels = Vec::with_capacity(items.len() + 2);
        for (noise, label) in items {
            let base = if label { 0.8 } else { 0.2 };
            features.push(vec![base + 0.1 * (noise - 0.5), base - 0.05 * noise, noise]);
            labels.push(label);
        }
        // Guarantee both classes are present.
        features.push(vec![0.85, 0.8, 0.1]);
        labels.push(true);
        features.push(vec![0.15, 0.2, 0.9]);
        labels.push(false);
        TrainingSet::new(features, labels)
    }))
    .prop_map(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ----- metrics -----

    #[test]
    fn metrics_are_bounded(
        outcomes in prop::collection::vec((any::<bool>(), any::<bool>(), 0.0f64..1.0), 1..200),
    ) {
        let predictions: Vec<bool> = outcomes.iter().map(|(p, _, _)| *p).collect();
        let labels: Vec<bool> = outcomes.iter().map(|(_, l, _)| *l).collect();
        let scores: Vec<f64> = outcomes.iter().map(|(_, _, s)| *s).collect();
        let acc = accuracy(&predictions, &labels);
        let f1 = f1_score(&predictions, &labels);
        let auc = roc_auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert!((0.0..=1.0).contains(&auc));
        // Perfect predictions give accuracy 1 and F1 consistent with class presence.
        let perfect = labels.clone();
        prop_assert_eq!(accuracy(&perfect, &labels), 1.0);
    }

    #[test]
    fn auc_is_invariant_to_monotone_score_transformations(
        items in prop::collection::vec((0.0f64..1.0, any::<bool>()), 5..100),
    ) {
        let scores: Vec<f64> = items.iter().map(|(s, _)| *s).collect();
        let labels: Vec<bool> = items.iter().map(|(_, l)| *l).collect();
        let transformed: Vec<f64> = scores.iter().map(|&s| sigmoid(5.0 * s - 1.0)).collect();
        let a = roc_auc(&scores, &labels);
        let b = roc_auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-9, "AUC changed under monotone map: {a} vs {b}");
    }

    // ----- standardiser -----

    #[test]
    fn standardised_columns_have_zero_mean(rows in prop::collection::vec(
        prop::collection::vec(-100.0f64..100.0, 3), 2..60,
    )) {
        let standardizer = Standardizer::fit(&rows);
        let transformed: Vec<Vec<f64>> = rows.iter().map(|r| standardizer.transform(r)).collect();
        for column in 0..3 {
            let mean: f64 = transformed.iter().map(|r| r[column]).sum::<f64>() / rows.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "column {column} mean {mean}");
        }
    }

    // ----- classifier training -----

    #[test]
    fn trained_classifiers_beat_chance_on_separable_data(data in labelled_data(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(LinearSvm::train(&data, &mut rng)),
            Box::new(LogisticRegression::train(&data, &mut rng)),
            Box::new(AdaBoostClassifier::train(&data)),
        ];
        for model in models {
            let predictions: Vec<bool> = data.features.iter().map(|f| model.predict(f)).collect();
            let acc = accuracy(&predictions, &data.labels);
            prop_assert!(acc > 0.7, "{} training accuracy {acc}", model.name());
            // Probability-scored models stay in [0, 1].
            if model.scores_are_probabilities() {
                for f in &data.features {
                    let s = model.score(f);
                    prop_assert!((0.0..=1.0).contains(&s));
                }
            }
        }
    }

    #[test]
    fn mlp_outputs_valid_probabilities(data in labelled_data(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = MlpClassifier::train_with(
            &data,
            classifiers::mlp::MlpConfig { hidden_units: 6, epochs: 30, learning_rate: 0.05, l2: 1e-5 },
            &mut rng,
        );
        for f in &data.features {
            let p = mlp.probability(f);
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    // ----- Platt scaling -----

    #[test]
    fn platt_scaling_is_monotone_and_bounded(
        scores in prop::collection::vec(-10.0f64..10.0, 10..200),
        threshold in -2.0f64..2.0,
    ) {
        // Labels defined by a noiseless threshold rule: scaling must preserve order.
        let labels: Vec<bool> = scores.iter().map(|&s| s > threshold).collect();
        // Need both classes for a meaningful fit.
        prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
        let scaler = PlattScaler::fit(&scores, &labels);
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let calibrated: Vec<f64> = sorted.iter().map(|&s| scaler.calibrate(s)).collect();
        for pair in calibrated.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-12, "calibration must be monotone");
        }
        for p in calibrated {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
