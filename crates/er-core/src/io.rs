//! Loading and saving record sources as delimited text.
//!
//! The synthetic generators in [`crate::datasets`] stand in for the paper's
//! datasets, but downstream users will want to evaluate *their own* data.
//! This module parses a record source from tab- or comma-separated text (one
//! record per line, fields in schema order) and writes sources back out, so
//! real catalogues can be dropped into the same pipeline.

use crate::error_text::ParseError;
use crate::record::{FieldType, FieldValue, Record, Schema};

/// Options for parsing delimited text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelimitedFormat {
    /// The field delimiter (e.g. `'\t'` or `','`).
    pub delimiter: char,
    /// Whether the first line is a header naming the fields (it is checked
    /// against the schema when present).
    pub has_header: bool,
}

impl Default for DelimitedFormat {
    fn default() -> Self {
        DelimitedFormat {
            delimiter: '\t',
            has_header: true,
        }
    }
}

/// Parse one field value according to its declared type.  Empty cells become
/// [`FieldValue::Missing`]; numeric cells that fail to parse are an error.
fn parse_field(cell: &str, field_type: FieldType, line: usize) -> Result<FieldValue, ParseError> {
    let trimmed = cell.trim();
    if trimmed.is_empty() {
        return Ok(FieldValue::Missing);
    }
    match field_type {
        FieldType::Numeric => {
            trimmed
                .parse::<f64>()
                .map(FieldValue::Number)
                .map_err(|_| ParseError::InvalidNumber {
                    line,
                    value: trimmed.to_string(),
                })
        }
        FieldType::ShortText | FieldType::LongText | FieldType::Categorical => {
            Ok(FieldValue::Text(trimmed.to_string()))
        }
    }
}

/// Parse a record source from delimited text.
///
/// Each line becomes one [`Record`]; record ids are assigned sequentially from
/// zero.  Lines with more cells than the schema are an error; lines with fewer
/// are padded with missing values.
pub fn parse_records(
    text: &str,
    schema: &Schema,
    format: DelimitedFormat,
) -> Result<Vec<Record>, ParseError> {
    let mut records = Vec::new();
    let mut lines = text.lines().enumerate();
    if format.has_header {
        if let Some((line_number, header)) = lines.next() {
            let names: Vec<&str> = header.split(format.delimiter).map(str::trim).collect();
            if names.len() != schema.len() {
                return Err(ParseError::HeaderMismatch {
                    line: line_number + 1,
                    expected: schema.len(),
                    found: names.len(),
                });
            }
            for (name, spec) in names.iter().zip(schema.fields()) {
                if !name.eq_ignore_ascii_case(&spec.name) {
                    return Err(ParseError::HeaderFieldMismatch {
                        expected: spec.name.clone(),
                        found: name.to_string(),
                    });
                }
            }
        }
    }
    for (line_number, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(format.delimiter).collect();
        if cells.len() > schema.len() {
            return Err(ParseError::TooManyFields {
                line: line_number + 1,
                expected: schema.len(),
                found: cells.len(),
            });
        }
        let mut values = Vec::with_capacity(schema.len());
        for (index, spec) in schema.fields().iter().enumerate() {
            let cell = cells.get(index).copied().unwrap_or("");
            values.push(parse_field(cell, spec.field_type, line_number + 1)?);
        }
        records.push(Record::new(records.len() as u64, values));
    }
    Ok(records)
}

/// Serialise a record source to delimited text (inverse of
/// [`parse_records`]).  Missing values become empty cells.
pub fn write_records(records: &[Record], schema: &Schema, format: DelimitedFormat) -> String {
    let mut out = String::new();
    let delimiter = format.delimiter;
    if format.has_header {
        let header: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
        out.push_str(&header.join(&delimiter.to_string()));
        out.push('\n');
    }
    for record in records {
        let cells: Vec<String> = (0..schema.len())
            .map(|i| record.value(i).to_string())
            .collect();
        out.push_str(&cells.join(&delimiter.to_string()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("name", FieldType::ShortText),
            ("description", FieldType::LongText),
            ("price", FieldType::Numeric),
        ])
    }

    const SAMPLE: &str = "name\tdescription\tprice\n\
        acme camera 100\tcompact digital camera\t199.99\n\
        nordwind printer 7\tlaser printer duplex\t\n\
        \n\
        kestrel laptop 3\t\t899.5\n";

    #[test]
    fn parses_records_with_missing_values_and_blank_lines() {
        let records = parse_records(SAMPLE, &schema(), DelimitedFormat::default()).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].value(0).as_text(), Some("acme camera 100"));
        assert_eq!(records[0].value(2).as_number(), Some(199.99));
        assert!(records[1].value(2).is_missing());
        assert!(records[2].value(1).is_missing());
        assert_eq!(records[2].id, 2);
    }

    #[test]
    fn headerless_and_comma_formats() {
        let csv = "acme camera,desc here,10\nother,more desc,20";
        let format = DelimitedFormat {
            delimiter: ',',
            has_header: false,
        };
        let records = parse_records(csv, &schema(), format).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].value(2).as_number(), Some(20.0));
    }

    #[test]
    fn header_mismatches_are_rejected() {
        let wrong_count = "name\tprice\nacme\t10";
        let err = parse_records(wrong_count, &schema(), DelimitedFormat::default()).unwrap_err();
        assert!(matches!(err, ParseError::HeaderMismatch { .. }));

        let wrong_name = "name\tsummary\tprice\nacme\tx\t10";
        let err = parse_records(wrong_name, &schema(), DelimitedFormat::default()).unwrap_err();
        assert!(matches!(err, ParseError::HeaderFieldMismatch { .. }));
    }

    #[test]
    fn bad_numbers_and_extra_fields_are_rejected() {
        let bad_number = "name\tdescription\tprice\nacme\tx\tnot-a-price";
        let err = parse_records(bad_number, &schema(), DelimitedFormat::default()).unwrap_err();
        match err {
            ParseError::InvalidNumber { line, value } => {
                assert_eq!(line, 2);
                assert_eq!(value, "not-a-price");
            }
            other => panic!("unexpected error {other:?}"),
        }

        let too_many = "name\tdescription\tprice\na\tb\t1\textra";
        let err = parse_records(too_many, &schema(), DelimitedFormat::default()).unwrap_err();
        assert!(matches!(err, ParseError::TooManyFields { .. }));
    }

    #[test]
    fn short_rows_are_padded_with_missing() {
        let short = "name\tdescription\tprice\nacme only";
        let records = parse_records(short, &schema(), DelimitedFormat::default()).unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].value(1).is_missing());
        assert!(records[0].value(2).is_missing());
    }

    #[test]
    fn round_trip_preserves_content() {
        let records = parse_records(SAMPLE, &schema(), DelimitedFormat::default()).unwrap();
        let written = write_records(&records, &schema(), DelimitedFormat::default());
        let reparsed = parse_records(&written, &schema(), DelimitedFormat::default()).unwrap();
        assert_eq!(records.len(), reparsed.len());
        for (a, b) in records.iter().zip(reparsed.iter()) {
            assert_eq!(a.value(0), b.value(0));
            // Numbers survive the round trip (Display → parse).
            assert_eq!(a.value(2).as_number(), b.value(2).as_number());
        }
    }

    #[test]
    fn parse_errors_display_useful_messages() {
        let err = ParseError::InvalidNumber {
            line: 7,
            value: "abc".to_string(),
        };
        assert!(err.to_string().contains("line 7"));
        let err = ParseError::TooManyFields {
            line: 2,
            expected: 3,
            found: 5,
        };
        assert!(err.to_string().contains("5"));
    }
}
