//! Bench: regenerate Figure 1 (CSF stratum sizes and mean scores).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figure1(c: &mut Criterion) {
    let figure = experiments::figure1::run(0.5, 30, 2017);
    println!("\n{}", figure.render());

    let mut group = c.benchmark_group("figure1");
    group.sample_size(10);
    group.bench_function("csf_stratification_abt_buy_scale_0.5", |b| {
        b.iter(|| experiments::figure1::run(0.5, 30, 2017))
    });
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
