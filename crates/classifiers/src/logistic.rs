//! Logistic regression trained by stochastic gradient descent.
//!
//! One of the five classifiers of the paper's Figure 5 ("LR").  Its scores are
//! probabilities and, being the maximum-likelihood fit of a Bernoulli model,
//! tend to be reasonably calibrated out of the box.

use crate::dataset::TrainingSet;
use crate::linalg::{dot, sigmoid, Standardizer};
use crate::Classifier;
use rand::Rng;

/// Hyperparameters for logistic regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticRegressionConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Number of epochs.
    pub epochs: usize,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        LogisticRegressionConfig {
            learning_rate: 0.1,
            l2: 1e-4,
            epochs: 80,
        }
    }
}

/// A trained logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    standardizer: Standardizer,
}

impl LogisticRegression {
    /// Train with default hyperparameters.
    pub fn train<R: Rng + ?Sized>(data: &TrainingSet, rng: &mut R) -> Self {
        Self::train_with(data, LogisticRegressionConfig::default(), rng)
    }

    /// Train with explicit hyperparameters.
    ///
    /// # Panics
    /// Panics if the training set is empty.
    pub fn train_with<R: Rng + ?Sized>(
        data: &TrainingSet,
        config: LogisticRegressionConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty training set");
        let standardizer = Standardizer::fit(&data.features);
        let rows: Vec<Vec<f64>> = data
            .features
            .iter()
            .map(|r| standardizer.transform(r))
            .collect();
        let n = rows.len();
        let d = data.feature_count();
        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        for epoch in 0..config.epochs {
            // Simple 1/√(1+epoch) learning-rate decay.
            let eta = config.learning_rate / (1.0 + epoch as f64).sqrt();
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                let target = f64::from(u8::from(data.labels[i]));
                let prediction = sigmoid(dot(&weights, &rows[i]) + bias);
                let error = prediction - target;
                for (w, &x) in weights.iter_mut().zip(rows[i].iter()) {
                    *w -= eta * (error * x + config.l2 * *w);
                }
                bias -= eta * error;
            }
        }
        LogisticRegression {
            weights,
            bias,
            standardizer,
        }
    }

    /// The probability of the positive class for a feature vector.
    pub fn probability(&self, features: &[f64]) -> f64 {
        let x = self.standardizer.transform(features);
        sigmoid(dot(&self.weights, &x) + self.bias)
    }
}

impl Classifier for LogisticRegression {
    fn score(&self, features: &[f64]) -> f64 {
        self.probability(features)
    }

    fn decision_threshold(&self) -> f64 {
        0.5
    }

    fn name(&self) -> &'static str {
        "LR"
    }

    fn scores_are_probabilities(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_svm::test_support::synthetic_pair_data;
    use crate::metrics::{accuracy, roc_auc};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_a_separable_problem() {
        let train = synthetic_pair_data(600, 0.4, 21);
        let test = synthetic_pair_data(400, 0.4, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let lr = LogisticRegression::train(&train, &mut rng);
        let predictions: Vec<bool> = test.features.iter().map(|f| lr.predict(f)).collect();
        assert!(accuracy(&predictions, &test.labels) > 0.9);
        let scores: Vec<f64> = test.features.iter().map(|f| lr.score(f)).collect();
        assert!(roc_auc(&scores, &test.labels) > 0.95);
    }

    #[test]
    fn scores_are_probabilities_in_unit_interval() {
        let train = synthetic_pair_data(400, 0.3, 24);
        let mut rng = StdRng::seed_from_u64(25);
        let lr = LogisticRegression::train(&train, &mut rng);
        assert!(lr.scores_are_probabilities());
        assert_eq!(lr.decision_threshold(), 0.5);
        assert_eq!(lr.name(), "LR");
        for f in &train.features {
            let p = lr.score(f);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn probabilities_are_roughly_calibrated() {
        // On a large sample, bucket predictions and compare bucket mean
        // probability with the empirical positive rate.
        let train = synthetic_pair_data(3000, 0.4, 26);
        let test = synthetic_pair_data(3000, 0.4, 27);
        let mut rng = StdRng::seed_from_u64(28);
        let lr = LogisticRegression::train(&train, &mut rng);
        let mut bucket_p = [0.0; 5];
        let mut bucket_pos = [0.0; 5];
        let mut bucket_n = [0usize; 5];
        for (f, &label) in test.features.iter().zip(test.labels.iter()) {
            let p = lr.probability(f);
            let b = ((p * 5.0) as usize).min(4);
            bucket_p[b] += p;
            bucket_pos[b] += f64::from(u8::from(label));
            bucket_n[b] += 1;
        }
        for b in 0..5 {
            if bucket_n[b] > 100 {
                let mean_p = bucket_p[b] / bucket_n[b] as f64;
                let rate = bucket_pos[b] / bucket_n[b] as f64;
                assert!(
                    (mean_p - rate).abs() < 0.15,
                    "bucket {b}: mean prob {mean_p:.3} vs rate {rate:.3}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn training_on_empty_set_panics() {
        let mut rng = StdRng::seed_from_u64(29);
        LogisticRegression::train(&TrainingSet::new(vec![], vec![]), &mut rng);
    }
}
