//! Regenerate Table 1 (dataset inventory).
//!
//! Usage: `cargo run --release -p experiments --bin table1 -- --scale=0.01 --seed=1`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = experiments::parse_arg(&args, "scale", 0.01f64);
    let seed = experiments::parse_arg(&args, "seed", 2017u64);
    let table = experiments::table1::run(scale, seed);
    println!("{}", table.render());
}
