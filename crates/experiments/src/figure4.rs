//! Figure 4: convergence of the F-measure estimate, the oracle-probability
//! estimates π̂, the instrumental distribution v̂ and the KL divergence from
//! the optimal v*, over one run of OASIS on the Abt-Buy pool.

use crate::pools::{direct_pool, ExperimentPool};
use crate::report::{fmt_float, TextTable};
use er_core::datasets::DatasetProfile;
use oasis::diagnostics::OracleReference;
use oasis::oracle::{GroundTruthOracle, Oracle};
use oasis::samplers::{InteractiveSampler, OasisConfig, OasisSampler, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One checkpoint of the convergence trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Labels consumed so far.
    pub labels_consumed: usize,
    /// Absolute error of the F½ estimate.
    pub f_error: f64,
    /// Mean absolute error of π̂ against the true per-stratum match rates.
    pub pi_error: f64,
    /// Mean absolute error of the instrumental distribution against v*.
    pub v_error: f64,
    /// KL divergence from v* to the current ε-greedy proposal.
    pub kl_divergence: f64,
}

/// The reproduced Figure 4 data: one OASIS run's convergence trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4 {
    /// The trace, ordered by consumed labels.
    pub trace: Vec<TracePoint>,
    /// Number of strata used.
    pub strata_count: usize,
    /// Pool scale used.
    pub scale: f64,
}

/// Configuration of the Figure 4 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4Config {
    /// Pool scale.
    pub scale: f64,
    /// Number of strata (the paper uses K = 30).
    pub strata: usize,
    /// Label budget for the run, as a fraction of the pool size.
    pub budget_fraction: f64,
    /// Number of trace checkpoints.
    pub checkpoints: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Figure4Config {
    fn default() -> Self {
        Figure4Config {
            scale: 0.2,
            strata: 30,
            budget_fraction: 0.2,
            checkpoints: 20,
            seed: 2017,
        }
    }
}

/// Run the convergence trace on the Abt-Buy pool (calibrated scores).
pub fn run(config: &Figure4Config) -> Figure4 {
    let pool = direct_pool(&DatasetProfile::abt_buy(), config.scale, true, config.seed);
    run_on_pool(&pool, config)
}

/// Run the convergence trace on a caller-supplied pool.
pub fn run_on_pool(pool: &ExperimentPool, config: &Figure4Config) -> Figure4 {
    let oasis_config = OasisConfig::default()
        .with_strata_count(config.strata)
        .with_score_threshold(pool.score_threshold);
    let mut sampler =
        OasisSampler::new(&pool.pool, oasis_config).expect("valid OASIS configuration");
    let reference = OracleReference::compute(&pool.pool, sampler.strata(), &pool.truth, 0.5);
    let mut oracle = GroundTruthOracle::new(pool.truth.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);

    let max_budget = ((pool.len() as f64 * config.budget_fraction) as usize).max(20);
    let step = (max_budget / config.checkpoints).max(1);
    let checkpoints: Vec<usize> = (1..=config.checkpoints).map(|i| i * step).collect();
    let max_iterations = max_budget.saturating_mul(50).max(1000);

    let mut trace = Vec::with_capacity(checkpoints.len());
    let mut next = 0usize;
    let mut iterations = 0usize;
    let record_point = |sampler: &OasisSampler, labels_consumed: usize| {
        let estimate = sampler.estimate();
        let f_error = if estimate.f_measure.is_finite() {
            reference.f_error(estimate.f_measure)
        } else {
            f64::NAN
        };
        let pi = sampler.pi_estimates();
        let proposal = sampler.compute_proposal();
        TracePoint {
            labels_consumed,
            f_error,
            pi_error: reference.pi_error(&pi),
            v_error: reference.v_error(&proposal),
            kl_divergence: reference.v_kl_divergence(&proposal),
        }
    };
    while next < checkpoints.len() && iterations < max_iterations {
        sampler
            .step(&pool.pool, &mut oracle, &mut rng)
            .expect("sampling step cannot fail");
        iterations += 1;
        while next < checkpoints.len() && oracle.labels_consumed() >= checkpoints[next] {
            trace.push(record_point(&sampler, checkpoints[next]));
            next += 1;
        }
    }
    // If the iteration cap was hit before every checkpoint was reached (the
    // concentrated proposal revisits labelled items, so label consumption can
    // stall), record the remaining checkpoints from the final state — the
    // diagnostics can no longer change meaningfully.
    while next < checkpoints.len() {
        trace.push(record_point(&sampler, checkpoints[next]));
        next += 1;
    }
    Figure4 {
        trace,
        strata_count: config.strata,
        scale: config.scale,
    }
}

impl Figure4 {
    /// Render the trace as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Labels",
            "|F̂ − F|",
            "MAE(π̂)",
            "MAE(v̂, v*)",
            "KL(v* ‖ v̂)",
        ]);
        for point in &self.trace {
            table.add_row(vec![
                point.labels_consumed.to_string(),
                fmt_float(point.f_error, 4),
                fmt_float(point.pi_error, 4),
                fmt_float(point.v_error, 4),
                fmt_float(point.kl_divergence, 4),
            ]);
        }
        format!(
            "Figure 4: convergence of OASIS internals on Abt-Buy (K = {}, scale {:.3})\n{}",
            self.strata_count,
            self.scale,
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Figure4Config {
        Figure4Config {
            scale: 0.05,
            strata: 15,
            budget_fraction: 0.5,
            checkpoints: 6,
            seed: 9,
        }
    }

    #[test]
    fn trace_has_expected_checkpoints_and_finite_diagnostics() {
        let figure = run(&tiny_config());
        assert_eq!(figure.trace.len(), 6);
        for point in &figure.trace {
            assert!(point.pi_error.is_finite());
            assert!(point.v_error.is_finite());
            assert!(point.kl_divergence.is_finite());
            assert!(point.kl_divergence >= -1e-12);
        }
        // Budgets strictly increase.
        for window in figure.trace.windows(2) {
            assert!(window[0].labels_consumed < window[1].labels_consumed);
        }
    }

    #[test]
    fn model_error_decreases_as_labels_accumulate() {
        let figure = run(&Figure4Config {
            scale: 0.1,
            strata: 15,
            budget_fraction: 0.6,
            checkpoints: 8,
            seed: 10,
        });
        let first = &figure.trace[0];
        let last = figure.trace.last().unwrap();
        assert!(
            last.pi_error <= first.pi_error + 0.02,
            "π error should shrink: first {} last {}",
            first.pi_error,
            last.pi_error
        );
        assert!(
            last.kl_divergence <= first.kl_divergence + 0.05,
            "KL should shrink: first {} last {}",
            first.kl_divergence,
            last.kl_divergence
        );
    }

    #[test]
    fn render_lists_every_checkpoint() {
        let figure = run(&tiny_config());
        let text = figure.render();
        assert!(text.contains("Figure 4"));
        assert!(text.lines().count() >= figure.trace.len() + 3);
    }
}
