//! # OASIS — Optimal Asymptotic Sequential Importance Sampling
//!
//! A Rust implementation of the OASIS algorithm of Marchant & Rubinstein
//! (*"In Search of an Entity Resolution OASIS: Optimal Asymptotic Sequential
//! Importance Sampling"*, PVLDB 10(11), 2017) for label-efficient evaluation of
//! entity-resolution (ER) systems.
//!
//! ## The problem
//!
//! Evaluating an ER system means estimating its pairwise F-measure, precision
//! and recall against ground truth.  Ground truth labels come from an *oracle*
//! (typically human annotators) and are expensive, while the space of record
//! pairs is both enormous and extremely imbalanced (non-matches can outnumber
//! matches by more than 1000:1).  Uniform ("passive") sampling therefore wastes
//! almost every label on uninformative non-matches.
//!
//! ## The OASIS approach
//!
//! OASIS is an *adaptive importance sampler*:
//!
//! 1. The pool of record pairs is partitioned into `K` strata by similarity
//!    score using the cumulative-√F (CSF) rule ([`strata::CsfStratifier`]).
//! 2. A Beta–Bernoulli model per stratum ([`bayes::BetaBernoulliModel`]) tracks
//!    the posterior over each stratum's match probability, initialised from the
//!    similarity scores ([`samplers::OasisSampler::new`], paper Algorithm 2).
//! 3. Each iteration samples a stratum from the ε-greedy asymptotically optimal
//!    instrumental distribution ([`instrumental`]), queries the oracle for one
//!    pair, and updates both the posterior and the bias-corrected AIS
//!    F-measure estimate ([`estimator::AisEstimator`], paper Algorithm 3).
//!
//! The resulting estimates of F-measure, precision and recall are statistically
//! consistent (paper Theorem 3) and in practice need up to 83% fewer labels
//! than passive sampling.
//!
//! ## Quick example
//!
//! ```
//! use oasis::pool::ScoredPool;
//! use oasis::oracle::{GroundTruthOracle, Oracle};
//! use oasis::samplers::{InteractiveSampler, OasisConfig, OasisSampler, Sampler};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A tiny pool: similarity scores in [0, 1], predictions from some ER system,
//! // and (hidden) ground-truth labels that only the oracle may see.
//! let scores = vec![0.95, 0.9, 0.8, 0.2, 0.15, 0.1, 0.05, 0.02];
//! let predictions = vec![true, true, true, false, false, false, false, false];
//! let truth = vec![true, true, false, false, false, false, false, false];
//!
//! let pool = ScoredPool::new(scores, predictions).unwrap();
//! let mut oracle = GroundTruthOracle::new(truth);
//! let mut rng = StdRng::seed_from_u64(42);
//!
//! let config = OasisConfig::default().with_strata_count(4);
//! let mut sampler = OasisSampler::new(&pool, config).unwrap();
//! for _ in 0..50 {
//!     sampler.step(&pool, &mut oracle, &mut rng).unwrap();
//! }
//! let estimate = sampler.estimate();
//! assert!(estimate.f_measure.is_finite());
//! println!("F-measure ≈ {:.3} after {} labels", estimate.f_measure, oracle.labels_consumed());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod bayes;
pub mod confidence;
pub mod diagnostics;
pub mod error;
pub mod estimator;
pub mod instrumental;
pub mod measures;
pub mod oracle;
pub mod pool;
pub mod samplers;
pub mod serial;
pub mod strata;

pub use confidence::{ConfidenceInterval, VarianceTracker};
pub use error::{Error, Result};
pub use estimator::{AisEstimator, Estimate};
pub use measures::{ConfusionCounts, Measures};
pub use oracle::{GroundTruthOracle, NoisyOracle, Oracle};
pub use pool::ScoredPool;
pub use samplers::{
    AnySampler, CategoricalCdf, EstimatorState, FenwickTree, ImportanceSampler, ImportanceState,
    InteractiveSampler, OasisConfig, OasisSampler, OasisState, PassiveSampler, PassiveState,
    Proposal, Sampler, SamplerDiagnostics, SamplerMethod, SamplerState, ShardedPool,
    ShardedSampler, ShardedState, StratifiedSampler, StratifiedState, TrackedSampler, TrackerState,
};
pub use strata::{CsfStratifier, EqualSizeStratifier, Strata, Stratifier};

#[cfg(any(test, feature = "test-util"))]
#[doc(hidden)]
pub mod test_fixtures {
    //! Shared fixtures for this crate's unit tests, also exported (behind
    //! the `test-util` feature, hidden from docs) so downstream crates'
    //! test suites — notably `oasis-engine` — can reuse the same synthetic
    //! pools instead of carrying copies.  Not a stable API.

    use crate::pool::ScoredPool;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};

    /// A deterministic imbalanced pool plus its hidden truth: calibrated
    /// scores that correlate with (but don't perfectly predict) the labels —
    /// the regime OASIS targets.
    pub fn pool_and_truth(n: usize, seed: u64, match_rate: f64) -> (ScoredPool, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scores = Vec::with_capacity(n);
        let mut predictions = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let is_match = rng.gen_bool(match_rate);
            let p: f64 = if is_match {
                0.5 + 0.5 * rng.gen::<f64>()
            } else {
                0.5 * rng.gen::<f64>()
            };
            scores.push(p);
            predictions.push(p > 0.5);
            truth.push(is_match);
        }
        (ScoredPool::new(scores, predictions).unwrap(), truth)
    }
}
