//! Platt scaling: mapping raw classifier margins to calibrated probabilities.
//!
//! The paper obtains calibrated scores from LIBSVM's built-in probability
//! estimates, which are Platt-scaled decision values fit by five-fold
//! cross-validation (Section 6.3.2).  [`PlattScaler`] reproduces that recipe:
//! fit `P(match | s) = σ(A·s + B)` on held-out (score, label) pairs by
//! regularised maximum likelihood, optionally via k-fold cross-validation over
//! a training set.

use crate::dataset::TrainingSet;
use crate::linalg::sigmoid;
use crate::Classifier;
use rand::seq::SliceRandom;
use rand::Rng;

/// A fitted Platt scaler `s ↦ σ(A·s + B)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlattScaler {
    /// Slope `A`.
    pub a: f64,
    /// Intercept `B`.
    pub b: f64,
}

impl PlattScaler {
    /// Fit the scaler on raw scores and their true labels by gradient descent
    /// on the (lightly regularised) logistic loss, with the standard Platt
    /// target smoothing.
    ///
    /// # Panics
    /// Panics if the inputs are empty or of different lengths.
    pub fn fit(scores: &[f64], labels: &[bool]) -> Self {
        assert_eq!(scores.len(), labels.len(), "scores and labels must align");
        assert!(!scores.is_empty(), "cannot fit on empty data");
        let n_positive = labels.iter().filter(|&&l| l).count() as f64;
        let n_negative = labels.len() as f64 - n_positive;
        // Platt's smoothed targets avoid infinite weights on separable data.
        let positive_target = (n_positive + 1.0) / (n_positive + 2.0);
        let negative_target = 1.0 / (n_negative + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l { positive_target } else { negative_target })
            .collect();

        // Standardise scores for a well-conditioned fit, then fold the
        // standardisation back into (A, B).
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        let std = (scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / scores.len() as f64)
            .sqrt()
            .max(1e-9);

        let mut a = 1.0;
        let mut b = 0.0;
        let learning_rate = 0.5;
        for epoch in 0..500 {
            let eta = learning_rate / (1.0 + 0.01 * epoch as f64);
            let mut grad_a = 0.0;
            let mut grad_b = 0.0;
            for (&score, &target) in scores.iter().zip(targets.iter()) {
                let z = (score - mean) / std;
                let p = sigmoid(a * z + b);
                let error = p - target;
                grad_a += error * z;
                grad_b += error;
            }
            grad_a /= scores.len() as f64;
            grad_b /= scores.len() as f64;
            a -= eta * grad_a;
            b -= eta * grad_b;
        }
        // Unfold the standardisation: σ(a·(s − mean)/std + b) = σ((a/std)·s + (b − a·mean/std)).
        PlattScaler {
            a: a / std,
            b: b - a * mean / std,
        }
    }

    /// Fit by k-fold cross-validation over a training set: the classifier is
    /// re-trained on each fold's complement (via `train_fn`) and scored on the
    /// held-out fold, and the scaler is fit on the pooled out-of-fold scores —
    /// the LIBSVM `-b 1` recipe.
    pub fn fit_cross_validated<C, F, R>(
        data: &TrainingSet,
        folds: usize,
        mut train_fn: F,
        rng: &mut R,
    ) -> Self
    where
        C: Classifier,
        F: FnMut(&TrainingSet, &mut R) -> C,
        R: Rng + ?Sized,
    {
        assert!(folds >= 2, "need at least two folds");
        assert!(data.len() >= folds, "need at least one example per fold");
        let mut indices: Vec<usize> = (0..data.len()).collect();
        indices.shuffle(rng);
        let mut out_of_fold_scores = Vec::with_capacity(data.len());
        let mut out_of_fold_labels = Vec::with_capacity(data.len());
        for fold in 0..folds {
            let held_out: Vec<usize> = indices
                .iter()
                .enumerate()
                .filter(|(pos, _)| pos % folds == fold)
                .map(|(_, &i)| i)
                .collect();
            let training: Vec<usize> = indices
                .iter()
                .enumerate()
                .filter(|(pos, _)| pos % folds != fold)
                .map(|(_, &i)| i)
                .collect();
            let fold_set = TrainingSet::new(
                training.iter().map(|&i| data.features[i].clone()).collect(),
                training.iter().map(|&i| data.labels[i]).collect(),
            );
            let model = train_fn(&fold_set, rng);
            for &i in &held_out {
                out_of_fold_scores.push(model.score(&data.features[i]));
                out_of_fold_labels.push(data.labels[i]);
            }
        }
        Self::fit(&out_of_fold_scores, &out_of_fold_labels)
    }

    /// Map a raw score to a calibrated probability.
    pub fn calibrate(&self, score: f64) -> f64 {
        sigmoid(self.a * score + self.b)
    }
}

/// A classifier wrapped with a Platt scaler so its scores become calibrated
/// probabilities.
#[derive(Debug, Clone)]
pub struct CalibratedClassifier<C: Classifier> {
    inner: C,
    scaler: PlattScaler,
}

impl<C: Classifier> CalibratedClassifier<C> {
    /// Wrap a trained classifier with a fitted scaler.
    pub fn new(inner: C, scaler: PlattScaler) -> Self {
        CalibratedClassifier { inner, scaler }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The fitted scaler.
    pub fn scaler(&self) -> &PlattScaler {
        &self.scaler
    }
}

impl<C: Classifier> Classifier for CalibratedClassifier<C> {
    fn score(&self, features: &[f64]) -> f64 {
        self.scaler.calibrate(self.inner.score(features))
    }

    fn decision_threshold(&self) -> f64 {
        // Calibration is monotone, so the decision boundary maps to the
        // calibrated value of the inner threshold.
        self.scaler.calibrate(self.inner.decision_threshold())
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn scores_are_probabilities(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_svm::test_support::synthetic_pair_data;
    use crate::linear_svm::LinearSvm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_a_known_sigmoid_relationship() {
        // Scores drawn so that P(positive | s) = σ(2s − 1).
        let mut rng = StdRng::seed_from_u64(61);
        use rand::Rng as _;
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..5000 {
            let s: f64 = rng.gen::<f64>() * 4.0 - 2.0;
            let p = sigmoid(2.0 * s - 1.0);
            scores.push(s);
            labels.push(rng.gen_bool(p));
        }
        let scaler = PlattScaler::fit(&scores, &labels);
        assert!((scaler.a - 2.0).abs() < 0.3, "A = {}", scaler.a);
        assert!((scaler.b - (-1.0)).abs() < 0.3, "B = {}", scaler.b);
        // Calibrated probabilities must lie in (0, 1) and be monotone in s.
        assert!(scaler.calibrate(-2.0) < scaler.calibrate(2.0));
    }

    #[test]
    fn calibrated_svm_scores_become_probabilities() {
        let train = synthetic_pair_data(800, 0.4, 62);
        let holdout = synthetic_pair_data(800, 0.4, 63);
        let mut rng = StdRng::seed_from_u64(64);
        let svm = LinearSvm::train(&train, &mut rng);
        let raw_scores: Vec<f64> = holdout.features.iter().map(|f| svm.score(f)).collect();
        let scaler = PlattScaler::fit(&raw_scores, &holdout.labels);
        let calibrated = CalibratedClassifier::new(svm, scaler);
        assert!(calibrated.scores_are_probabilities());
        assert_eq!(calibrated.name(), "L-SVM");
        for f in holdout.features.iter().take(100) {
            let p = calibrated.score(f);
            assert!((0.0..=1.0).contains(&p));
        }
        // Check rough calibration: bucket by predicted probability.
        let test = synthetic_pair_data(3000, 0.4, 65);
        let mut bucket_p = [0.0; 5];
        let mut bucket_pos = [0.0; 5];
        let mut bucket_n = [0usize; 5];
        for (f, &label) in test.features.iter().zip(test.labels.iter()) {
            let p = calibrated.score(f);
            let bucket = ((p * 5.0) as usize).min(4);
            bucket_p[bucket] += p;
            bucket_pos[bucket] += f64::from(u8::from(label));
            bucket_n[bucket] += 1;
        }
        for bucket in 0..5 {
            if bucket_n[bucket] > 150 {
                let mean_p = bucket_p[bucket] / bucket_n[bucket] as f64;
                let rate = bucket_pos[bucket] / bucket_n[bucket] as f64;
                assert!(
                    (mean_p - rate).abs() < 0.2,
                    "bucket {bucket}: mean prob {mean_p:.3} vs rate {rate:.3}"
                );
            }
        }
    }

    #[test]
    fn cross_validated_fit_runs_and_calibrates() {
        let data = synthetic_pair_data(600, 0.4, 66);
        let mut rng = StdRng::seed_from_u64(67);
        let scaler = PlattScaler::fit_cross_validated(&data, 5, LinearSvm::train, &mut rng);
        // Higher margins must map to higher probabilities.
        assert!(scaler.a > 0.0);
        assert!(scaler.calibrate(3.0) > scaler.calibrate(-3.0));
    }

    #[test]
    fn decision_threshold_maps_through_the_scaler() {
        let train = synthetic_pair_data(300, 0.4, 68);
        let mut rng = StdRng::seed_from_u64(69);
        let svm = LinearSvm::train(&train, &mut rng);
        let scores: Vec<f64> = train.features.iter().map(|f| svm.score(f)).collect();
        let scaler = PlattScaler::fit(&scores, &train.labels);
        let calibrated = CalibratedClassifier::new(svm, scaler);
        let threshold = calibrated.decision_threshold();
        assert!((0.0..=1.0).contains(&threshold));
        assert_eq!(threshold, scaler.calibrate(0.0));
        assert!(calibrated.inner().decision_threshold() == 0.0);
        assert_eq!(calibrated.scaler().a, scaler.a);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        PlattScaler::fit(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn one_fold_cross_validation_panics() {
        let data = synthetic_pair_data(50, 0.4, 70);
        let mut rng = StdRng::seed_from_u64(71);
        PlattScaler::fit_cross_validated(&data, 1, LinearSvm::train, &mut rng);
    }
}
