//! Append-only write-ahead log of session mutations.
//!
//! Durability in the engine is `latest checkpoint + WAL suffix`: every
//! mutating request against a durable session — propose, label, step,
//! run-budget — is appended to the session's log *before* the session is
//! mutated, and a restart replays the records whose sequence numbers lie at
//! or beyond the checkpoint's high-water mark.  Because every [`Session`]
//! mutator is deterministic given the session state (the RNG lives inside
//! the checkpoint) and validates its whole batch before touching anything,
//! replaying the suffix reproduces the pre-crash state bit for bit:
//!
//! * a record that *succeeded* live succeeds again and applies the same
//!   mutation (same RNG draws, same ticket ids, same estimator sums);
//! * a record that *failed* live (say, a label for an unknown ticket —
//!   logged before the session rejected it) fails again and leaves the
//!   session untouched, exactly as it did the first time.
//!
//! Records serialise one JSON object per line (`{"seq":…,"op":…,…}`), with
//! sequence numbers assigned under the session's lock so concurrent client
//! batches land in the log in the order they were applied.

use crate::error::{EngineError, EngineResult};
use crate::session::Session;
use serde::json::{FromJson, Json, JsonError, JsonResult, ToJson};

/// One loggable session mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// [`Session::propose`] — advances the session RNG, mints tickets.
    Propose {
        /// Number of items proposed in the batch.
        count: usize,
        /// The logical lease timestamp the engine observed when the batch
        /// was proposed.  Recorded so replay expires exactly the leases the
        /// live run expired; `None` on records written before lease support
        /// (legacy logs replay with no expiry, as they ran).
        now_us: Option<u64>,
    },
    /// [`Session::expire_leases`] — drop pending tickets whose lease passed
    /// the logged logical timestamp.
    Expire {
        /// The logical timestamp expiry was evaluated at.
        now_us: u64,
    },
    /// [`Session::apply_labels`] — a batch of `(ticket id, label)` answers.
    Label {
        /// The labels, exactly as the client sent them.
        labels: Vec<(u64, bool)>,
    },
    /// [`Session::step`] — oracle-driven propose→query→apply iterations.
    Step {
        /// Number of iterations.
        steps: usize,
    },
    /// [`Session::run_until_budget`] — oracle-driven run to a label budget.
    RunBudget {
        /// Stop once this many distinct labels are consumed.
        label_budget: usize,
        /// Hard cap on iterations.
        max_steps: usize,
    },
}

impl WalEntry {
    /// Apply this mutation to a session, discarding the result payload.
    ///
    /// # Errors
    /// Whatever the underlying session method returns.  During replay a
    /// failure means the record also failed live (see the module docs), so
    /// the caller skips it rather than aborting.
    pub fn apply(&self, session: &mut Session) -> EngineResult<()> {
        match self {
            WalEntry::Propose { count, now_us } => {
                if let Some(now) = now_us {
                    let _ = session.expire_leases(*now);
                }
                session.propose(*count).map(|_| ())
            }
            WalEntry::Expire { now_us } => {
                let _ = session.expire_leases(*now_us);
                Ok(())
            }
            WalEntry::Label { labels } => session.apply_labels(labels).map(|_| ()),
            WalEntry::Step { steps } => session.step(*steps).map(|_| ()),
            WalEntry::RunBudget {
                label_budget,
                max_steps,
            } => session
                .run_until_budget(*label_budget, *max_steps)
                .map(|_| ()),
        }
    }
}

/// A sequenced WAL record: one line of the log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Position in the session's log, starting at 0 and gap-free.
    pub seq: u64,
    /// The logged mutation.
    pub entry: WalEntry,
}

impl WalRecord {
    /// Render as a single JSON line (no trailing newline).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parse one log line.
    ///
    /// # Errors
    /// [`EngineError::Store`] on malformed JSON or an unknown `op`, naming
    /// the offending line.
    pub fn parse(line: &str) -> EngineResult<Self> {
        let value =
            Json::parse(line).map_err(|e| EngineError::Store(format!("bad WAL line: {e}")))?;
        WalRecord::from_json(&value).map_err(|e| EngineError::Store(format!("bad WAL line: {e}")))
    }
}

impl ToJson for WalRecord {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("seq", self.seq.to_json());
        match &self.entry {
            WalEntry::Propose { count, now_us } => {
                obj.set("op", Json::String("propose".to_string()));
                obj.set("count", count.to_json());
                if let Some(now) = now_us {
                    obj.set("now_us", now.to_json());
                }
            }
            WalEntry::Expire { now_us } => {
                obj.set("op", Json::String("expire".to_string()));
                obj.set("now_us", now_us.to_json());
            }
            WalEntry::Label { labels } => {
                obj.set("op", Json::String("label".to_string()));
                let items = labels
                    .iter()
                    .map(|&(ticket, label)| {
                        let mut pair = Json::object();
                        pair.set("ticket", ticket.to_json());
                        pair.set("label", label.to_json());
                        pair
                    })
                    .collect();
                obj.set("labels", Json::Array(items));
            }
            WalEntry::Step { steps } => {
                obj.set("op", Json::String("step".to_string()));
                obj.set("steps", steps.to_json());
            }
            WalEntry::RunBudget {
                label_budget,
                max_steps,
            } => {
                obj.set("op", Json::String("run_budget".to_string()));
                obj.set("label_budget", label_budget.to_json());
                obj.set("max_steps", max_steps.to_json());
            }
        }
        obj
    }
}

impl FromJson for WalRecord {
    fn from_json(value: &Json) -> JsonResult<Self> {
        let seq = value.require("seq")?.as_u64()?;
        let entry = match value.require("op")?.as_str()? {
            "propose" => WalEntry::Propose {
                count: value.require("count")?.as_usize()?,
                now_us: match value.get("now_us") {
                    Some(now) => Some(now.as_u64()?),
                    None => None,
                },
            },
            "expire" => WalEntry::Expire {
                now_us: value.require("now_us")?.as_u64()?,
            },
            "label" => {
                let items = match value.require("labels")? {
                    Json::Array(items) => items,
                    other => {
                        return Err(JsonError::new(format!(
                            "labels must be an array, got {other:?}"
                        )))
                    }
                };
                let mut labels = Vec::with_capacity(items.len());
                for item in items {
                    labels.push((
                        item.require("ticket")?.as_u64()?,
                        item.require("label")?.as_bool()?,
                    ));
                }
                WalEntry::Label { labels }
            }
            "step" => WalEntry::Step {
                steps: value.require("steps")?.as_usize()?,
            },
            "run_budget" => WalEntry::RunBudget {
                label_budget: value.require("label_budget")?.as_usize()?,
                max_steps: value.require("max_steps")?.as_usize()?,
            },
            other => return Err(JsonError::new(format!("unknown WAL op {other:?}"))),
        };
        Ok(WalRecord { seq, entry })
    }
}

/// The result of parsing a whole log with [`parse_lines`]: the records that
/// parsed cleanly, plus a note when a partial trailing record was dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct WalParseOutcome {
    /// Every record up to (but not including) a torn tail.
    pub records: Vec<WalRecord>,
    /// `Some(reason)` when the final line failed to parse and was dropped —
    /// the signature of a crash mid-append.  The caller should scrub the
    /// torn line from the store so later appends cannot bury it.
    pub truncated_tail: Option<String>,
}

/// Parse a full WAL, tolerating exactly one failure mode: a final line that
/// does not parse.  A crash between `write` and the trailing newline leaves
/// precisely that shape behind, and rejecting the whole log for it would
/// turn every mid-append crash into data loss.  A malformed *interior* line
/// can only mean real corruption (appends are strictly sequential), so it
/// stays a hard error.
///
/// # Errors
/// [`EngineError::Store`] when any line other than the last fails to parse.
pub fn parse_lines(lines: &[String]) -> EngineResult<WalParseOutcome> {
    let mut records = Vec::with_capacity(lines.len());
    for (index, line) in lines.iter().enumerate() {
        match WalRecord::parse(line) {
            Ok(record) => records.push(record),
            Err(e) if index + 1 == lines.len() => {
                return Ok(WalParseOutcome {
                    records,
                    truncated_tail: Some(format!("dropped partial trailing WAL record: {e}")),
                });
            }
            Err(e) => {
                return Err(EngineError::Store(format!(
                    "WAL corrupt at interior line {index}: {e}"
                )));
            }
        }
    }
    Ok(WalParseOutcome {
        records,
        truncated_tail: None,
    })
}

/// Replay the log suffix at or beyond `from_seq` against a freshly restored
/// session.  Returns the number of records applied (skipped records count:
/// they were processed, their live outcome — an error — was reproduced).
///
/// # Errors
/// [`EngineError::Store`] if the suffix is not gap-free and ascending from
/// `from_seq` — that means log corruption or a checkpoint/log mismatch, and
/// replaying around a hole would silently diverge from the pre-crash run.
pub fn replay(session: &mut Session, records: &[WalRecord], from_seq: u64) -> EngineResult<usize> {
    let mut applied = 0;
    for (expected, record) in (from_seq..).zip(records.iter().filter(|r| r.seq >= from_seq)) {
        if record.seq != expected {
            return Err(EngineError::Store(format!(
                "WAL gap: expected seq {expected}, found {}",
                record.seq
            )));
        }
        // A deterministic failure here reproduces a request the live engine
        // rejected after logging it; the session is untouched both times.
        let _ = record.entry.apply(session);
        applied += 1;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::LabelSource;
    use oasis::{OasisConfig, SamplerMethod};
    use std::sync::Arc;

    #[test]
    fn records_round_trip_through_json_lines() {
        let records = vec![
            WalRecord {
                seq: 0,
                entry: WalEntry::Propose {
                    count: 5,
                    now_us: None,
                },
            },
            WalRecord {
                seq: 4,
                entry: WalEntry::Propose {
                    count: 2,
                    now_us: Some(1_500_000),
                },
            },
            WalRecord {
                seq: 5,
                entry: WalEntry::Expire { now_us: 2_000_000 },
            },
            WalRecord {
                seq: 1,
                entry: WalEntry::Label {
                    labels: vec![(0, true), (3, false)],
                },
            },
            WalRecord {
                seq: 2,
                entry: WalEntry::Step { steps: 40 },
            },
            WalRecord {
                seq: 3,
                entry: WalEntry::RunBudget {
                    label_budget: 100,
                    max_steps: 10_000,
                },
            },
        ];
        for record in records {
            let line = record.render();
            assert!(!line.contains('\n'), "one record per line: {line}");
            assert_eq!(WalRecord::parse(&line).unwrap(), record);
        }
    }

    #[test]
    fn legacy_propose_lines_parse_without_a_lease_timestamp() {
        // Logs written before lease support carry no now_us; they must keep
        // replaying with legacy semantics (no expiry).
        let record = WalRecord::parse(r#"{"seq":"3","op":"propose","count":7}"#).unwrap();
        assert_eq!(
            record.entry,
            WalEntry::Propose {
                count: 7,
                now_us: None
            }
        );
        assert!(
            !record.render().contains("now_us"),
            "absent timestamps must not materialise on re-render"
        );
    }

    #[test]
    fn malformed_lines_are_structured_errors() {
        for bad in ["not json", "{}", r#"{"seq":0,"op":"bogus"}"#] {
            let err = WalRecord::parse(bad).unwrap_err();
            assert!(matches!(err, EngineError::Store(_)), "{bad}: {err}");
        }
    }

    #[test]
    fn replay_reproduces_the_logged_run_and_rejects_gaps() {
        let (pool, truth) = crate::test_support::pool_and_truth(500, 77, 0.1);
        let make = || {
            Session::new(
                "s",
                "p",
                Arc::clone(&pool),
                SamplerMethod::Oasis,
                OasisConfig::default().with_strata_count(6),
                7,
                LabelSource::external(pool.len()),
            )
            .unwrap()
        };

        // Drive a live session, logging what a durable engine would log.
        let mut live = make();
        let mut log = Vec::new();
        let tickets = live.propose(4).unwrap();
        log.push(WalRecord {
            seq: 0,
            entry: WalEntry::Propose {
                count: 4,
                now_us: None,
            },
        });
        let labels: Vec<(u64, bool)> = tickets
            .iter()
            .map(|t| (t.id, truth[t.proposal.item]))
            .collect();
        // A request that is logged, then rejected: unknown ticket 999.
        log.push(WalRecord {
            seq: 1,
            entry: WalEntry::Label {
                labels: vec![(999, true)],
            },
        });
        assert!(live.apply_labels(&[(999, true)]).is_err());
        log.push(WalRecord {
            seq: 2,
            entry: WalEntry::Label {
                labels: labels.clone(),
            },
        });
        live.apply_labels(&labels).unwrap();

        let mut replayed = make();
        assert_eq!(replay(&mut replayed, &log, 0).unwrap(), 3);
        assert_eq!(
            replayed.estimate().f_measure.to_bits(),
            live.estimate().f_measure.to_bits()
        );
        assert_eq!(replayed.pending_count(), live.pending_count());
        assert_eq!(replayed.labels_consumed(), live.labels_consumed());

        // A hole in the suffix is corruption, not something to skip over.
        let gappy = vec![log[0].clone(), log[2].clone()];
        let err = replay(&mut make(), &gappy, 0).unwrap_err();
        assert!(matches!(err, EngineError::Store(_)), "{err}");

        // Replaying from a later watermark ignores the compacted prefix.
        let mut partial = make();
        partial.propose(4).unwrap();
        assert!(partial.apply_labels(&[(999, true)]).is_err());
        assert_eq!(replay(&mut partial, &log, 2).unwrap(), 1);
        assert_eq!(
            partial.estimate().f_measure.to_bits(),
            live.estimate().f_measure.to_bits()
        );
    }

    #[test]
    fn partial_trailing_record_is_truncated_not_fatal() {
        let good = WalRecord {
            seq: 0,
            entry: WalEntry::Step { steps: 3 },
        }
        .render();
        let torn = {
            let full = WalRecord {
                seq: 1,
                entry: WalEntry::Step { steps: 9 },
            }
            .render();
            full[..full.len() / 2].to_string()
        };

        let outcome = parse_lines(&[good.clone(), torn.clone()]).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.records[0].seq, 0);
        let warning = outcome.truncated_tail.expect("tail must be flagged");
        assert!(warning.contains("partial trailing"), "{warning}");

        // A clean log reports no truncation.
        let clean = parse_lines(std::slice::from_ref(&good)).unwrap();
        assert_eq!(clean.records.len(), 1);
        assert!(clean.truncated_tail.is_none());

        // An empty log is fine too.
        let empty = parse_lines(&[]).unwrap();
        assert!(empty.records.is_empty() && empty.truncated_tail.is_none());
    }

    #[test]
    fn interior_corruption_stays_a_hard_error() {
        let good = WalRecord {
            seq: 1,
            entry: WalEntry::Step { steps: 3 },
        }
        .render();
        let err = parse_lines(&["torn{".to_string(), good]).unwrap_err();
        assert!(matches!(err, EngineError::Store(_)), "{err}");
        assert!(err.to_string().contains("interior"), "{err}");
    }
}
