//! The scripted protocol session CI pipes into the `oasis-serve` binary,
//! run here through `serve_lines` so `cargo test` enforces the same pinned
//! output locally.  If this test needs a new golden value, update the
//! matching `grep` in `.github/workflows/ci.yml` too.

use oasis_engine::server::serve_lines;
use oasis_engine::{Engine, FsCheckpointStore};
use std::io::Cursor;
use std::sync::Arc;

const SMOKE_SCRIPT: &str = include_str!("smoke/session.jsonl");
const DURABLE_BEFORE_KILL: &str = include_str!("smoke/durable-before-kill.jsonl");
const DURABLE_AFTER_RESTART: &str = include_str!("smoke/durable-after-restart.jsonl");

/// Golden estimates for the smoke sessions — one OASIS, one passive, one
/// stratified and one sharded-OASIS session over the same pool, seed and
/// step count (the pool + seed are fixed, all arithmetic is deterministic
/// IEEE-754 — no libm in the calibrated-score path — so these are stable
/// across platforms).  One golden per method pins the whole method-dispatch
/// path: sampler construction, the propose/apply state machine, and the
/// estimator; the sharded golden additionally pins shard routing and the
/// exact-merge estimator.
const GOLDEN_OASIS_FRAGMENT: &str = r#""f_measure":0.8605922932779813"#;
const GOLDEN_PASSIVE_FRAGMENT: &str = r#""f_measure":0.8524590163934426"#;
const GOLDEN_STRATIFIED_FRAGMENT: &str = r#""f_measure":0.8864468864468864"#;
const GOLDEN_SHARDED_FRAGMENT: &str = r#""f_measure":0.9313493268593968"#;

#[test]
fn scripted_smoke_session_reproduces_the_golden_estimate_lines() {
    let engine = Engine::new();
    let mut output = Vec::new();
    let shutdown = serve_lines(&engine, Cursor::new(SMOKE_SCRIPT), &mut output).unwrap();
    assert!(shutdown, "the script ends with a shutdown command");

    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 14, "one response per request:\n{text}");
    for line in &lines {
        assert!(line.contains(r#""ok":true"#), "failed response: {line}");
    }
    assert!(
        lines[10].contains(r#""shards":2"#),
        "s4's create response echoes its shard count: {}",
        lines[10]
    );
    for (estimate_line, method, golden) in [
        (lines[3], "oasis", GOLDEN_OASIS_FRAGMENT),
        (lines[6], "passive", GOLDEN_PASSIVE_FRAGMENT),
        (lines[9], "stratified", GOLDEN_STRATIFIED_FRAGMENT),
        (lines[12], "oasis", GOLDEN_SHARDED_FRAGMENT),
    ] {
        assert!(
            estimate_line.contains(golden),
            "{method} estimate drifted from golden: {estimate_line}"
        );
        assert!(
            estimate_line.contains(&format!(r#""method":"{method}""#)),
            "{method}: {estimate_line}"
        );
        assert!(estimate_line.contains(r#""labels_consumed":10"#));
    }
}

/// Goldens for the kill-and-replay script (`durable-before-kill.jsonl` then
/// `durable-after-restart.jsonl` over the same store directory).  Session
/// `d1` is the same pool/seed/step-count as the `s1` smoke session above, so
/// its estimate golden is shared; the confidence-interval golden pins that
/// the variance tracker — not just the point estimate — survives the replay.
const GOLDEN_DURABLE_ESTIMATE_FRAGMENT: &str = GOLDEN_OASIS_FRAGMENT;
const GOLDEN_DURABLE_CI_FRAGMENT: &str = r#""confidence_interval":{"estimate":0.8605922932779809,"level":0.95,"lower":0.7974245813386895"#;

#[test]
fn kill_and_replay_smoke_script_reproduces_the_golden_estimate_and_interval() {
    let dir = std::env::temp_dir().join(format!("oasis-smoke-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: a store-backed engine runs two sessions (one step-driven, one
    // labeled over the wire), durably checkpoints both mid-run, keeps
    // mutating (WAL only), and is dropped without a shutdown — the kill.
    {
        let engine = Engine::new().with_store(Arc::new(FsCheckpointStore::open(&dir).unwrap()));
        let mut output = Vec::new();
        serve_lines(&engine, Cursor::new(DURABLE_BEFORE_KILL), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert_eq!(
            text.lines().count(),
            12,
            "one response per request:\n{text}"
        );
        for line in text.lines() {
            assert!(line.contains(r#""ok":true"#), "failed response: {line}");
        }
        // The closing metrics request sees the durable work: 5 + 3 proposals,
        // one WAL append per mutating request, and four checkpoint writes —
        // each create_session registers an initial durable checkpoint, plus
        // the two explicit checkpoint_to requests (u64 counters render as
        // decimal strings on the wire).
        let metrics = text.lines().last().unwrap();
        assert!(metrics.contains(r#""propose":"8""#), "{metrics}");
        assert!(metrics.contains(r#""wal_append":"6""#), "{metrics}");
        assert!(metrics.contains(r#""checkpoint_write":"4""#), "{metrics}");
    }

    // Phase 2: a fresh engine over the same directory replays
    // checkpoint + WAL suffix for both sessions.
    let engine = Engine::new().with_store(Arc::new(FsCheckpointStore::open(&dir).unwrap()));
    let mut output = Vec::new();
    let shutdown = serve_lines(&engine, Cursor::new(DURABLE_AFTER_RESTART), &mut output).unwrap();
    assert!(shutdown, "the restart script ends with a shutdown command");
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 8, "one response per request:\n{text}");
    for line in &lines {
        assert!(line.contains(r#""ok":true"#), "failed response: {line}");
    }
    // d1 replays its one post-checkpoint step batch; d2 replays its
    // post-checkpoint propose + label batch.
    assert!(lines[1].contains(r#""replayed":1"#), "{}", lines[1]);
    assert!(lines[2].contains(r#""replayed":2"#), "{}", lines[2]);
    assert!(
        lines[3].contains(GOLDEN_DURABLE_ESTIMATE_FRAGMENT),
        "d1 estimate drifted from golden: {}",
        lines[3]
    );
    assert!(
        lines[3].contains(GOLDEN_DURABLE_CI_FRAGMENT),
        "d1 confidence interval drifted from golden: {}",
        lines[3]
    );
    assert!(
        lines[3].contains(r#""variance_tracked":true"#),
        "{}",
        lines[3]
    );
    assert!(lines[5].contains(r#""detail":["#), "{}", lines[5]);
    // Counters reset with the process — the restarted engine's metrics show
    // only the replay (WAL entries re-applied, checkpoints restored), not
    // the pre-kill request counts.
    assert!(lines[6].contains(r#""wal_append":"0""#), "{}", lines[6]);
    assert!(lines[6].contains(r#""wal_replay":"3""#), "{}", lines[6]);
    assert!(
        lines[6].contains(r#""checkpoint_restore":"2""#),
        "{}",
        lines[6]
    );
    assert!(lines[6].contains(r#""rehydration":"2""#), "{}", lines[6]);

    // Parity: a never-crashed engine over the identical command stream must
    // produce byte-identical estimate lines — replay adds nothing and loses
    // nothing.
    let reference_dir =
        std::env::temp_dir().join(format!("oasis-smoke-durable-ref-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&reference_dir);
    let reference =
        Engine::new().with_store(Arc::new(FsCheckpointStore::open(&reference_dir).unwrap()));
    let script = format!(
        "{DURABLE_BEFORE_KILL}{}",
        concat!(
            r#"{"cmd":"estimate","session":"d1"}"#,
            "\n",
            r#"{"cmd":"estimate","session":"d2"}"#,
            "\n",
        )
    );
    let mut output = Vec::new();
    serve_lines(&reference, Cursor::new(script), &mut output).unwrap();
    let text = String::from_utf8(output).unwrap();
    let reference_lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        reference_lines[12], lines[3],
        "d1 estimate differs from never-crashed run"
    );
    assert_eq!(
        reference_lines[13], lines[4],
        "d2 estimate differs from never-crashed run"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

#[test]
fn unknown_methods_are_rejected_with_a_protocol_error() {
    // The rejection path the smoke script cannot carry (it asserts all-ok):
    // an unknown method is answered with a structured error and the
    // connection keeps serving.
    let engine = Engine::new();
    let script = concat!(
        r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.1],"predictions":[true,false]}"#,
        "\n",
        r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"method":"annealing"}"#,
        "\n",
        r#"{"cmd":"sessions"}"#,
        "\n",
    );
    let mut output = Vec::new();
    serve_lines(&engine, Cursor::new(script), &mut output).unwrap();
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[1].contains(r#""ok":false"#), "{}", lines[1]);
    assert!(lines[1].contains("annealing"), "{}", lines[1]);
    assert!(lines[2].contains(r#""ok":true"#), "{}", lines[2]);
}
