//! Attribute-level similarity measures.
//!
//! All measures return a value in `[0, 1]`, with `1` meaning identical.  The
//! paper's pipeline uses trigram Jaccard for short text, tf–idf cosine for
//! long text and normalised absolute difference for numbers (Section 6.1.2);
//! edit-distance measures are included because they are standard components
//! of ER scoring stages.

mod cosine;
mod edit;
mod jaccard;
mod numeric;

pub use cosine::{CosineTfIdf, TfIdfVectorizer};
pub use edit::{
    jaro_similarity, jaro_winkler_similarity, levenshtein_distance, levenshtein_similarity,
};
pub use jaccard::{ngram_jaccard, token_jaccard};
pub use numeric::normalized_numeric_similarity;

/// Exact-match similarity for categorical values: 1 if equal, 0 otherwise.
pub fn exact_match(a: &str, b: &str) -> f64 {
    f64::from(u8::from(a == b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_binary() {
        assert_eq!(exact_match("sony", "sony"), 1.0);
        assert_eq!(exact_match("sony", "samsung"), 0.0);
        assert_eq!(exact_match("", ""), 1.0);
    }
}
