//! Edit-distance-based string similarity measures.

/// Levenshtein (edit) distance between two strings, in character operations.
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row dynamic program.
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitution_cost = usize::from(ca != cb);
            current[j + 1] = (previous[j + 1] + 1)
                .min(current[j] + 1)
                .min(previous[j] + substitution_cost);
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

/// Levenshtein similarity: `1 − distance / max_len`, in `[0, 1]`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_distance(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut a_matched = vec![false; a.len()];
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        let start = i.saturating_sub(match_window);
        let end = (i + match_window + 1).min(b.len());
        for j in start..end {
            if !b_matched[j] && b[j] == ca {
                a_matched[i] = true;
                b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions among matched characters.
    let matched_a: Vec<char> = a
        .iter()
        .zip(a_matched.iter())
        .filter_map(|(&c, &m)| m.then_some(c))
        .collect();
    let matched_b: Vec<char> = b
        .iter()
        .zip(b_matched.iter())
        .filter_map(|(&c, &m)| m.then_some(c))
        .collect();
    let transpositions = matched_a
        .iter()
        .zip(matched_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted for a shared prefix of up to 4
/// characters with scaling factor 0.1.
pub fn jaro_winkler_similarity(a: &str, b: &str) -> f64 {
    let jaro = jaro_similarity(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    jaro + prefix as f64 * 0.1 * (1.0 - jaro)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("flaw", "lawn"), 2);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", ""), 3);
        assert_eq!(levenshtein_distance("same", "same"), 0);
    }

    #[test]
    fn levenshtein_similarity_range() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        // Classic textbook example.
        let s = jaro_similarity("martha", "marhta");
        assert!((s - 0.944444).abs() < 1e-3, "got {s}");
        let s = jaro_similarity("dixon", "dicksonx");
        assert!((s - 0.766667).abs() < 1e-3, "got {s}");
        assert_eq!(jaro_similarity("", ""), 1.0);
        assert_eq!(jaro_similarity("a", ""), 0.0);
        assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_shared_prefix() {
        let jaro = jaro_similarity("martha", "marhta");
        let jw = jaro_winkler_similarity("martha", "marhta");
        assert!(jw > jaro);
        assert!((jw - 0.961111).abs() < 1e-3, "got {jw}");
        // No prefix → no boost.
        assert!(
            (jaro_winkler_similarity("abc", "xbc") - jaro_similarity("abc", "xbc")).abs() < 1e-12
        );
    }

    #[test]
    fn all_measures_symmetric_and_bounded() {
        let pairs = [
            ("canon eos 400d", "canon eos400d"),
            ("nikon d80", "nikn d80 camera"),
            ("", "x"),
            ("same", "same"),
        ];
        for (a, b) in pairs {
            for f in [
                levenshtein_similarity,
                jaro_similarity,
                jaro_winkler_similarity,
            ] {
                let ab = f(a, b);
                let ba = f(b, a);
                assert!((ab - ba).abs() < 1e-12, "asymmetry on ({a:?},{b:?})");
                assert!(
                    (0.0..=1.0).contains(&ab),
                    "out of range on ({a:?},{b:?}): {ab}"
                );
            }
        }
    }
}
