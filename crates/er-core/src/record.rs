//! Records, schemas and field values.
//!
//! A [`Record`] is a flat tuple of named fields drawn from a [`Schema`].  The
//! ER pipeline compares records field-by-field, so fields carry a
//! [`FieldType`] that determines which similarity measure applies (paper
//! Section 6.1.2: trigram Jaccard for short text, tf–idf cosine for long
//! text, normalised absolute difference for numbers).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of data a field holds, which selects the similarity measure used
/// to compare it across records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldType {
    /// Short free text (names, titles): compared with trigram Jaccard.
    ShortText,
    /// Long free text (descriptions): compared with tf–idf cosine similarity.
    LongText,
    /// Numeric value (price, year): compared with normalised absolute difference.
    Numeric,
    /// Categorical code (brand, venue): compared with exact match.
    Categorical,
}

/// A single field value. Missing values are explicit so imputation can be
/// exercised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// A textual value.
    Text(String),
    /// A numeric value.
    Number(f64),
    /// The value is missing.
    Missing,
}

impl FieldValue {
    /// The text content, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            FieldValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if any.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            FieldValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Whether the value is missing.
    pub fn is_missing(&self) -> bool {
        matches!(self, FieldValue::Missing)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Text(s) => write!(f, "{s}"),
            FieldValue::Number(x) => write!(f, "{x}"),
            FieldValue::Missing => write!(f, ""),
        }
    }
}

/// A named, typed field in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Field name, e.g. `"name"` or `"price"`.
    pub name: String,
    /// The field's type.
    pub field_type: FieldType,
}

/// The schema shared by all records of a data source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<FieldSpec>,
}

impl Schema {
    /// Create a schema from `(name, type)` pairs.
    pub fn new(fields: Vec<(&str, FieldType)>) -> Self {
        Schema {
            fields: fields
                .into_iter()
                .map(|(name, field_type)| FieldSpec {
                    name: name.to_string(),
                    field_type,
                })
                .collect(),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field specifications, in declaration order.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// Index of the field called `name`, if it exists.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// A record: an entity description from one of the data sources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Unique identifier within the source.
    pub id: u64,
    /// Field values, aligned with the schema's field order.
    pub values: Vec<FieldValue>,
}

impl Record {
    /// Create a record with the given id and values.
    pub fn new(id: u64, values: Vec<FieldValue>) -> Self {
        Record { id, values }
    }

    /// The value of field `index`, or [`FieldValue::Missing`] if out of range.
    pub fn value(&self, index: usize) -> &FieldValue {
        static MISSING: FieldValue = FieldValue::Missing;
        self.values.get(index).unwrap_or(&MISSING)
    }

    /// Number of populated (non-missing) fields.
    pub fn populated_fields(&self) -> usize {
        self.values.iter().filter(|v| !v.is_missing()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("name", FieldType::ShortText),
            ("description", FieldType::LongText),
            ("price", FieldType::Numeric),
        ])
    }

    #[test]
    fn schema_field_lookup() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.field_index("price"), Some(2));
        assert_eq!(s.field_index("brand"), None);
        assert_eq!(s.fields()[0].field_type, FieldType::ShortText);
    }

    #[test]
    fn field_value_accessors() {
        let t = FieldValue::Text("abc".into());
        let n = FieldValue::Number(3.5);
        let m = FieldValue::Missing;
        assert_eq!(t.as_text(), Some("abc"));
        assert_eq!(t.as_number(), None);
        assert_eq!(n.as_number(), Some(3.5));
        assert!(m.is_missing());
        assert!(!t.is_missing());
        assert_eq!(format!("{t}"), "abc");
        assert_eq!(format!("{n}"), "3.5");
        assert_eq!(format!("{m}"), "");
    }

    #[test]
    fn record_value_out_of_range_is_missing() {
        let r = Record::new(7, vec![FieldValue::Text("x".into())]);
        assert_eq!(r.value(0).as_text(), Some("x"));
        assert!(r.value(5).is_missing());
        assert_eq!(r.populated_fields(), 1);
    }

    #[test]
    fn populated_fields_ignores_missing() {
        let r = Record::new(
            1,
            vec![
                FieldValue::Text("a".into()),
                FieldValue::Missing,
                FieldValue::Number(1.0),
            ],
        );
        assert_eq!(r.populated_fields(), 2);
    }
}
