//! Equal-size stratification.
//!
//! The alternative stratifier mentioned in the paper (from Druck & McCallum,
//! CIKM 2011): sort the pool by similarity score and cut it into `K` strata of
//! (as near as possible) equal cardinality.

use super::{Strata, Stratifier};
use crate::error::{Error, Result};
use crate::pool::ScoredPool;

/// Equal-count stratifier: `K` strata of (almost) equal size in score order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EqualSizeStratifier {
    /// Number of strata `K`.
    pub strata_count: usize,
}

impl EqualSizeStratifier {
    /// Create an equal-size stratifier producing `strata_count` strata.
    pub fn new(strata_count: usize) -> Self {
        EqualSizeStratifier { strata_count }
    }
}

impl Stratifier for EqualSizeStratifier {
    fn stratify(&self, pool: &ScoredPool) -> Result<Strata> {
        if self.strata_count == 0 {
            return Err(Error::InvalidParameter {
                name: "strata_count",
                message: "must be at least 1".to_string(),
            });
        }
        let n = pool.len();
        let k = self.strata_count.min(n);

        // Order items by score (ties broken by index for determinism).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            pool.score(a)
                .partial_cmp(&pool.score(b))
                .expect("scores are finite by construction")
                .then(a.cmp(&b))
        });

        // Split into k contiguous chunks of near-equal size. The first
        // `n % k` strata receive one extra item.
        let base = n / k;
        let extra = n % k;
        let mut allocations = Vec::with_capacity(k);
        let mut cursor = 0usize;
        for stratum_index in 0..k {
            let size = base + usize::from(stratum_index < extra);
            let chunk = order[cursor..cursor + size].to_vec();
            cursor += size;
            allocations.push(chunk);
        }
        Strata::from_allocations(pool, allocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pool(n: usize) -> ScoredPool {
        let mut rng = StdRng::seed_from_u64(17);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let predictions: Vec<bool> = scores.iter().map(|&s| s > 0.8).collect();
        ScoredPool::new(scores, predictions).unwrap()
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let pool = random_pool(1003);
        let strata = EqualSizeStratifier::new(10).stratify(&pool).unwrap();
        assert_eq!(strata.len(), 10);
        let sizes: Vec<usize> = (0..10).map(|k| strata.size(k)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 1003);
    }

    #[test]
    fn strata_ordered_by_score() {
        let pool = random_pool(500);
        let strata = EqualSizeStratifier::new(7).stratify(&pool).unwrap();
        let means = strata.mean_scores();
        for w in means.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn every_item_allocated_once() {
        let pool = random_pool(321);
        let strata = EqualSizeStratifier::new(13).stratify(&pool).unwrap();
        let mut seen = vec![false; pool.len()];
        for k in 0..strata.len() {
            for &i in strata.members(k) {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn more_strata_than_items_caps_at_pool_size() {
        let pool = random_pool(5);
        let strata = EqualSizeStratifier::new(20).stratify(&pool).unwrap();
        assert_eq!(strata.len(), 5);
        for k in 0..5 {
            assert_eq!(strata.size(k), 1);
        }
    }

    #[test]
    fn zero_strata_rejected() {
        let pool = random_pool(5);
        assert!(EqualSizeStratifier::new(0).stratify(&pool).is_err());
    }

    #[test]
    fn deterministic_for_tied_scores() {
        let pool = ScoredPool::new(vec![0.5; 9], vec![false; 9]).unwrap();
        let a = EqualSizeStratifier::new(3).stratify(&pool).unwrap();
        let b = EqualSizeStratifier::new(3).stratify(&pool).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }
}
