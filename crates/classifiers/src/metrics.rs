//! Classification metrics used when fitting and comparing classifiers.
//!
//! These are *training-side* conveniences; the evaluation-side measures used
//! by the samplers live in [`oasis::measures`] — duplicated here only to keep
//! the classifiers crate free of a dependency on the sampler crate.

/// Accuracy of predictions against labels.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(predictions: &[bool], labels: &[bool]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty inputs");
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Balanced F-measure (F1) of predictions against labels; 0 when undefined.
pub fn f1_score(predictions: &[bool], labels: &[bool]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fn_ = 0.0;
    for (&p, &l) in predictions.iter().zip(labels.iter()) {
        match (p, l) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fn_ += 1.0,
            (false, false) => {}
        }
    }
    let denom = 2.0 * tp + fp + fn_;
    if denom > 0.0 {
        2.0 * tp / denom
    } else {
        0.0
    }
}

/// Area under the ROC curve of scores against labels, by the rank-sum
/// (Mann–Whitney) formulation.  Returns 0.5 when one class is absent.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    // Sum of ranks of the positive class, with average ranks for ties.
    let mut rank_sum = 0.0;
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let average_rank = (i + j) as f64 / 2.0 + 1.0;
        for &index in &order[i..=j] {
            if labels[index] {
                rank_sum += average_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum - positives as f64 * (positives as f64 + 1.0) / 2.0)
        / (positives as f64 * negatives as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(
            accuracy(&[true, false, true], &[true, true, true]),
            2.0 / 3.0
        );
        assert_eq!(accuracy(&[true], &[true]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[true], &[true, false]);
    }

    #[test]
    fn f1_basic() {
        // TP=1, FP=1, FN=1 → F1 = 2/(2+1+1) = 0.5
        assert_eq!(f1_score(&[true, true, false], &[true, false, true]), 0.5);
        assert_eq!(f1_score(&[false, false], &[false, false]), 0.0);
        assert_eq!(f1_score(&[true, true], &[true, true]), 1.0);
    }

    #[test]
    fn auc_perfect_and_random() {
        let labels = [true, true, false, false];
        assert_eq!(roc_auc(&[0.9, 0.8, 0.2, 0.1], &labels), 1.0);
        assert_eq!(roc_auc(&[0.1, 0.2, 0.8, 0.9], &labels), 0.0);
        // All-tied scores → 0.5 by the average-rank convention.
        assert_eq!(roc_auc(&[0.5, 0.5, 0.5, 0.5], &labels), 0.5);
        // Single class → 0.5 by convention.
        assert_eq!(roc_auc(&[0.3, 0.7], &[true, true]), 0.5);
    }

    #[test]
    fn auc_handles_partial_ordering() {
        let labels = [true, false, true, false, false];
        let scores = [0.9, 0.7, 0.6, 0.4, 0.2];
        // Positives ranked 1st and 3rd of 5: AUC = (number of correctly ordered
        // pos/neg pairs) / (2·3) = 5/6.
        assert!((roc_auc(&scores, &labels) - 5.0 / 6.0).abs() < 1e-12);
    }
}
