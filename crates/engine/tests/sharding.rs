//! Engine-level guarantees for sharded sessions: the `shards` protocol field
//! is validated and echoed, a `shards: 1` session is bit-identical to an
//! unsharded one over the wire (the K=1 parity the CI pins), sharded
//! sessions survive kill-and-replay bit-for-bit, and the shard-routing
//! metrics count what actually happened.

use oasis_engine::server::serve_lines;
use oasis_engine::{Engine, FsCheckpointStore};
use std::io::Cursor;
use std::sync::Arc;

const POOL_LINE: &str = r#"{"cmd":"load_pool","pool":"demo","scores":[0.95,0.9,0.8,0.6,0.4,0.2,0.15,0.1,0.05,0.02],"predictions":[true,true,true,true,false,false,false,false,false,false]}"#;
const TRUTH: &str = r#"[true,true,false,true,false,false,false,false,false,false]"#;

fn run_script(engine: &Engine, script: &str) -> Vec<String> {
    let mut output = Vec::new();
    serve_lines(engine, Cursor::new(script.to_string()), &mut output).unwrap();
    String::from_utf8(output)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn one_shard_session_is_bit_identical_to_an_unsharded_one_over_the_wire() {
    // The same pool, seed, method and step count, once flat and once with
    // `shards: 1`.  A single shard covers the whole pool with weight 1.0 and
    // shard 0's RNG is seeded with the session seed, so every proposal,
    // weight, estimate and confidence bound must agree to the last bit —
    // the response lines are byte-identical.
    let flat_script = format!(
        "{POOL_LINE}\n{}\n{}\n{}\n",
        format_args!(
            r#"{{"cmd":"create_session","session":"s","pool":"demo","seed":42,"config":{{"strata_count":4}},"truth":{TRUTH}}}"#
        ),
        r#"{"cmd":"step","session":"s","steps":100}"#,
        r#"{"cmd":"estimate","session":"s"}"#,
    );
    let sharded_script = flat_script.replace(r#""seed":42,"#, r#""seed":42,"shards":1,"#);
    assert_ne!(
        flat_script, sharded_script,
        "the shards field was spliced in"
    );

    let flat = run_script(&Engine::new(), &flat_script);
    let sharded = run_script(&Engine::new(), &sharded_script);
    assert_eq!(flat.len(), 4);
    assert_eq!(sharded.len(), 4);
    for line in flat.iter().chain(sharded.iter()) {
        assert!(line.contains(r#""ok":true"#), "failed response: {line}");
    }
    assert!(
        sharded[1].contains(r#""shards":1"#),
        "create response echoes the shard count: {}",
        sharded[1]
    );
    // Step and estimate responses must match byte-for-byte (the create
    // responses differ only by the echoed shard count).
    assert_eq!(flat[2], sharded[2], "step responses diverged");
    assert_eq!(flat[3], sharded[3], "estimate responses diverged");
    assert!(
        flat[3].contains(r#""confidence_interval""#),
        "parity covers the interval, not just the point estimate: {}",
        flat[3]
    );
}

#[test]
fn sharded_session_survives_kill_and_replay_bit_for_bit() {
    let dir = std::env::temp_dir().join(format!("oasis-sharded-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let create = format!(
        r#"{{"cmd":"create_session","session":"sh/1","pool":"demo","seed":42,"shards":3,"config":{{"strata_count":4}},"truth":{TRUTH}}}"#
    );
    // Phase 1: run a sharded session, checkpoint mid-way, keep stepping (WAL
    // only), read the estimate, then drop the engine without a shutdown.
    let reference_estimate;
    {
        let engine = Engine::new().with_store(Arc::new(FsCheckpointStore::open(&dir).unwrap()));
        let script = format!(
            "{POOL_LINE}\n{create}\n{}\n{}\n{}\n{}\n",
            r#"{"cmd":"step","session":"sh/1","steps":60}"#,
            r#"{"cmd":"checkpoint_to","session":"sh/1"}"#,
            r#"{"cmd":"step","session":"sh/1","steps":40}"#,
            r#"{"cmd":"estimate","session":"sh/1"}"#,
        );
        let lines = run_script(&engine, &script);
        assert_eq!(lines.len(), 6);
        for line in &lines {
            assert!(line.contains(r#""ok":true"#), "failed response: {line}");
        }
        reference_estimate = lines[5].clone();
    }

    // Phase 2: a fresh engine over the same store replays checkpoint + WAL.
    // The session id contains a shard-qualified separator, so this also
    // exercises the percent-encoded store path end to end.
    let engine = Engine::new().with_store(Arc::new(FsCheckpointStore::open(&dir).unwrap()));
    let script = format!(
        "{POOL_LINE}\n{}\n{}\n{}\n",
        r#"{"cmd":"restore_from","session":"sh/1"}"#,
        r#"{"cmd":"estimate","session":"sh/1"}"#,
        r#"{"cmd":"metrics"}"#,
    );
    let lines = run_script(&engine, &script);
    assert_eq!(lines.len(), 4);
    for line in &lines {
        assert!(line.contains(r#""ok":true"#), "failed response: {line}");
    }
    assert!(
        lines[1].contains(r#""replayed":1"#),
        "one post-checkpoint step batch to replay: {}",
        lines[1]
    );
    assert_eq!(
        lines[2], reference_estimate,
        "restored sharded estimate differs from the never-crashed run"
    );
    assert!(
        lines[3].contains(r#""sharded_session":"1""#),
        "rehydrating a sharded session counts as one: {}",
        lines[3]
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shards_field_is_validated_echoed_and_counted() {
    let engine = Engine::new();
    let script = format!(
        "{POOL_LINE}\n{}\n{}\n{}\n{}\n{}\n",
        r#"{"cmd":"create_session","session":"bad","pool":"demo","seed":1,"shards":0}"#,
        format_args!(
            r#"{{"cmd":"create_session","session":"s3","pool":"demo","seed":7,"shards":3,"config":{{"strata_count":4}},"truth":{TRUTH}}}"#
        ),
        r#"{"cmd":"step","session":"s3","steps":20}"#,
        r#"{"cmd":"sessions"}"#,
        r#"{"cmd":"metrics"}"#,
    );
    let lines = run_script(&engine, &script);
    assert_eq!(lines.len(), 6);
    assert!(
        lines[1].contains(r#""ok":false"#) && lines[1].contains("shards"),
        "shards: 0 is a protocol error: {}",
        lines[1]
    );
    assert!(
        lines[2].contains(r#""ok":true"#) && lines[2].contains(r#""shards":3"#),
        "{}",
        lines[2]
    );
    assert!(lines[3].contains(r#""ok":true"#), "{}", lines[3]);
    assert!(
        lines[4].contains(r#""shards":3"#),
        "sessions detail reports the shard count: {}",
        lines[4]
    );
    assert!(
        lines[5].contains(r#""sharded_session":"1""#),
        "{}",
        lines[5]
    );
    assert!(
        lines[5].contains(r#""shard_route":"20""#),
        "each routed step counts: {}",
        lines[5]
    );
}
