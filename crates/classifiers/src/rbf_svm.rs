//! RBF-kernel SVM approximated with random Fourier features.
//!
//! The "R-SVM" classifier of the paper's Figure 5.  Instead of a full kernel
//! solver we use the Rahimi–Recht random-feature approximation of the Gaussian
//! kernel: project the (standardised) inputs through `D` random cosine
//! features and train a linear SVM in that feature space with Pegasos.  For
//! the low-dimensional similarity vectors of the ER pipeline a few hundred
//! random features reproduce the kernel machine's behaviour closely.

use crate::dataset::TrainingSet;
use crate::linalg::{dot, Standardizer};
use crate::linear_svm::{LinearSvm, LinearSvmConfig};
use crate::Classifier;
use rand::Rng;

/// Hyperparameters of the random-Fourier-feature RBF SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfSvmConfig {
    /// Kernel bandwidth γ of `k(x, y) = exp(−γ‖x − y‖²)`.
    pub gamma: f64,
    /// Number of random Fourier features `D`.
    pub fourier_features: usize,
    /// Configuration of the linear SVM trained on the random features.
    pub svm: LinearSvmConfig,
}

impl Default for RbfSvmConfig {
    fn default() -> Self {
        RbfSvmConfig {
            gamma: 1.0,
            fourier_features: 200,
            svm: LinearSvmConfig::default(),
        }
    }
}

/// A trained RBF SVM (random-feature approximation).
#[derive(Debug, Clone)]
pub struct RbfSvm {
    /// Random projection directions, `fourier_features × input_dim`.
    projections: Vec<Vec<f64>>,
    /// Random phase offsets, one per feature.
    phases: Vec<f64>,
    /// The linear SVM trained in random-feature space.
    svm: LinearSvm,
    standardizer: Standardizer,
    scale: f64,
}

/// Standard normal via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl RbfSvm {
    /// Train with default hyperparameters.
    pub fn train<R: Rng + ?Sized>(data: &TrainingSet, rng: &mut R) -> Self {
        Self::train_with(data, RbfSvmConfig::default(), rng)
    }

    /// Train with explicit hyperparameters.
    ///
    /// # Panics
    /// Panics if the training set is empty or `fourier_features` is zero.
    pub fn train_with<R: Rng + ?Sized>(
        data: &TrainingSet,
        config: RbfSvmConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty training set");
        assert!(
            config.fourier_features > 0,
            "need at least one random Fourier feature"
        );
        let standardizer = Standardizer::fit(&data.features);
        let d = data.feature_count();
        // ω ~ N(0, 2γ I), b ~ U[0, 2π); feature_j(x) = √(2/D) cos(ωᵀx + b).
        let omega_std = (2.0 * config.gamma).sqrt();
        let projections: Vec<Vec<f64>> = (0..config.fourier_features)
            .map(|_| (0..d).map(|_| omega_std * standard_normal(rng)).collect())
            .collect();
        let phases: Vec<f64> = (0..config.fourier_features)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        let scale = (2.0 / config.fourier_features as f64).sqrt();

        let mapped: Vec<Vec<f64>> = data
            .features
            .iter()
            .map(|row| {
                let x = standardizer.transform(row);
                Self::map_features(&x, &projections, &phases, scale)
            })
            .collect();
        let mapped_set = TrainingSet::new(mapped, data.labels.clone());
        let svm = LinearSvm::train_with(&mapped_set, config.svm, rng);
        RbfSvm {
            projections,
            phases,
            svm,
            standardizer,
            scale,
        }
    }

    fn map_features(x: &[f64], projections: &[Vec<f64>], phases: &[f64], scale: f64) -> Vec<f64> {
        projections
            .iter()
            .zip(phases.iter())
            .map(|(omega, &phase)| scale * (dot(omega, x) + phase).cos())
            .collect()
    }

    /// Number of random Fourier features used.
    pub fn fourier_features(&self) -> usize {
        self.projections.len()
    }
}

impl Classifier for RbfSvm {
    fn score(&self, features: &[f64]) -> f64 {
        let x = self.standardizer.transform(features);
        let mapped = Self::map_features(&x, &self.projections, &self.phases, self.scale);
        self.svm.score(&mapped)
    }

    fn decision_threshold(&self) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "R-SVM"
    }

    fn scores_are_probabilities(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_svm::test_support::synthetic_pair_data;
    use crate::metrics::{accuracy, roc_auc};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_a_separable_problem() {
        let train = synthetic_pair_data(600, 0.4, 51);
        let test = synthetic_pair_data(400, 0.4, 52);
        let mut rng = StdRng::seed_from_u64(53);
        let svm = RbfSvm::train(&train, &mut rng);
        let predictions: Vec<bool> = test.features.iter().map(|f| svm.predict(f)).collect();
        assert!(accuracy(&predictions, &test.labels) > 0.88);
        let scores: Vec<f64> = test.features.iter().map(|f| svm.score(f)).collect();
        assert!(roc_auc(&scores, &test.labels) > 0.94);
    }

    #[test]
    fn learns_a_radial_problem_a_linear_svm_cannot() {
        // Ring data: positives inside a disc, negatives in an annulus.
        let mut rng = StdRng::seed_from_u64(54);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..900 {
            let inside = rng.gen_bool(0.5);
            let radius: f64 = if inside {
                rng.gen::<f64>() * 0.5
            } else {
                1.0 + rng.gen::<f64>() * 0.5
            };
            let angle = rng.gen::<f64>() * std::f64::consts::TAU;
            features.push(vec![radius * angle.cos(), radius * angle.sin()]);
            labels.push(inside);
        }
        let data = TrainingSet::new(features, labels);
        let mut rng2 = StdRng::seed_from_u64(55);
        let rbf = RbfSvm::train_with(
            &data,
            RbfSvmConfig {
                gamma: 2.0,
                fourier_features: 300,
                svm: LinearSvmConfig::default(),
            },
            &mut rng2,
        );
        let linear = LinearSvm::train(&data, &mut rng2);
        let rbf_acc = accuracy(
            &data
                .features
                .iter()
                .map(|f| rbf.predict(f))
                .collect::<Vec<_>>(),
            &data.labels,
        );
        let linear_acc = accuracy(
            &data
                .features
                .iter()
                .map(|f| linear.predict(f))
                .collect::<Vec<_>>(),
            &data.labels,
        );
        assert!(rbf_acc > 0.9, "RBF accuracy {rbf_acc}");
        assert!(
            rbf_acc > linear_acc + 0.2,
            "RBF ({rbf_acc}) should trounce linear ({linear_acc}) on ring data"
        );
    }

    #[test]
    fn metadata() {
        let train = synthetic_pair_data(100, 0.4, 56);
        let mut rng = StdRng::seed_from_u64(57);
        let svm = RbfSvm::train(&train, &mut rng);
        assert_eq!(svm.name(), "R-SVM");
        assert!(!svm.scores_are_probabilities());
        assert_eq!(svm.decision_threshold(), 0.0);
        assert_eq!(
            svm.fourier_features(),
            RbfSvmConfig::default().fourier_features
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_set_panics() {
        let mut rng = StdRng::seed_from_u64(58);
        RbfSvm::train(&TrainingSet::new(vec![], vec![]), &mut rng);
    }
}
