//! The [`Strategy`] trait and its implementations for ranges, tuples and
//! mapped strategies.

use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::Rng;

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// simply produces a value from the runner's seeded RNG, and failures are
/// reported (and persisted) by seed rather than by shrunken input.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
